"""Tests for the distributed solvers (one per complexity class)."""

import pytest

from repro.core import ComplexityClass, classify
from repro.distributed import (
    ColoringSolver,
    GlobalSolver,
    LogSolver,
    MISSolver,
    PolynomialSolver,
    SolverError,
)
from repro.distributed.solvers.mis_solver import MIS_MAGIC_STRING, independent_set_from_labeling
from repro.labeling import verify_labeling
from repro.problems import (
    branch_two_coloring,
    coloring,
    figure2_combined_problem,
    maximal_independent_set,
    pi_k,
    three_coloring,
    two_coloring,
    unsolvable_problem,
)
from repro.trees import complete_tree, hairy_path, random_full_tree

TREES = {
    "complete": complete_tree(2, 7),
    "random": random_full_tree(2, 250, seed=13),
    "hairy": hairy_path(2, 180),
}


def _assert_solves(solver, problem, tree, seed=3):
    result = solver.solve(tree, seed=seed)
    report = verify_labeling(problem, tree, result.labeling)
    assert report.valid, report.violations[:3]
    assert result.rounds >= 0
    assert len(result.labeling) == tree.num_nodes
    return result


class TestMISSolver:
    @pytest.mark.parametrize("kind", sorted(TREES))
    def test_valid_on_all_instances(self, kind):
        problem = maximal_independent_set()
        _assert_solves(MISSolver(problem), problem, TREES[kind])

    def test_constant_rounds(self):
        problem = maximal_independent_set()
        rounds = {
            MISSolver(problem).solve(complete_tree(2, depth)).rounds for depth in (4, 7, 10)
        }
        assert rounds == {4}

    def test_magic_string_has_sixteen_symbols(self):
        assert len(MIS_MAGIC_STRING) == 16
        assert set(MIS_MAGIC_STRING) == {"1", "a", "b"}

    def test_all_sixteen_cases_are_valid_configurations(self):
        """The core correctness argument of Section 1.3, checked exhaustively."""
        problem = maximal_independent_set()
        for value in range(16):
            bits = format(value, "04b")
            parent_label = MIS_MAGIC_STRING[value]
            left = MIS_MAGIC_STRING[int(bits[1:] + "0", 2)]
            right = MIS_MAGIC_STRING[int(bits[1:] + "1", 2)]
            assert problem.has_configuration(parent_label, (left, right))

    def test_independent_set_extraction(self):
        problem = maximal_independent_set()
        tree = complete_tree(2, 6)
        result = MISSolver(problem).solve(tree)
        membership = independent_set_from_labeling(result.labeling)
        # Independence: no node in the set has a child in the set.
        for node in tree.nodes():
            if membership[node]:
                assert not any(membership[child] for child in tree.children[node])

    def test_rejects_wrong_delta(self):
        with pytest.raises(SolverError):
            MISSolver(maximal_independent_set(delta=3))


class TestColoringSolver:
    @pytest.mark.parametrize("kind", sorted(TREES))
    def test_three_coloring(self, kind):
        problem = three_coloring()
        _assert_solves(ColoringSolver(problem), problem, TREES[kind])

    def test_more_colors_still_valid(self):
        problem = coloring(5)
        _assert_solves(ColoringSolver(problem), problem, TREES["random"])

    def test_logstar_like_round_growth(self):
        problem = three_coloring()
        small = ColoringSolver(problem).solve(complete_tree(2, 5)).rounds
        large = ColoringSolver(problem).solve(complete_tree(2, 11)).rounds
        assert large - small <= 3

    def test_two_colors_rejected(self):
        with pytest.raises(SolverError):
            ColoringSolver(two_coloring())


class TestLogSolver:
    @pytest.mark.parametrize("kind", sorted(TREES))
    def test_branch_two_coloring(self, kind):
        problem = branch_two_coloring()
        _assert_solves(LogSolver(problem), problem, TREES[kind])

    @pytest.mark.parametrize("kind", sorted(TREES))
    def test_figure2_problem(self, kind):
        problem = figure2_combined_problem()
        _assert_solves(LogSolver(problem), problem, TREES[kind])

    def test_also_solves_easier_problems(self):
        # Any problem with a log-certificate can be fed to the solver, including
        # Θ(log* n) and O(1) problems.
        for problem in (three_coloring(), maximal_independent_set()):
            _assert_solves(LogSolver(problem), problem, TREES["random"])

    def test_round_growth_is_logarithmic(self):
        problem = branch_two_coloring()
        solver = LogSolver(problem)
        small = solver.solve(complete_tree(2, 6)).rounds
        large = solver.solve(complete_tree(2, 12)).rounds
        # Doubling the depth should roughly double the rounds, far from the 64x
        # growth of the instance size.
        assert large <= 3 * small

    def test_rejects_problem_without_certificate(self):
        with pytest.raises(SolverError):
            LogSolver(two_coloring())

    def test_breakdown_mentions_decomposition(self):
        result = LogSolver(branch_two_coloring()).solve(complete_tree(2, 6))
        assert "rake-and-compress decomposition (RCP(k))" in result.breakdown.as_dict()


class TestGlobalSolver:
    @pytest.mark.parametrize("kind", sorted(TREES))
    def test_two_coloring(self, kind):
        problem = two_coloring()
        _assert_solves(GlobalSolver(problem), problem, TREES[kind])

    def test_rounds_equal_twice_height(self):
        tree = hairy_path(2, 120)
        result = GlobalSolver(two_coloring()).solve(tree)
        assert result.rounds == 2 * tree.height()

    def test_rejects_unsolvable(self):
        with pytest.raises(SolverError):
            GlobalSolver(unsolvable_problem())


class TestPolynomialSolver:
    @pytest.mark.parametrize("k", [1, 2, 3])
    def test_pi_k_on_random_trees(self, k):
        problem = pi_k(k)
        _assert_solves(PolynomialSolver(k), problem, TREES["random"])

    @pytest.mark.parametrize("k", [1, 2, 3])
    def test_pi_k_on_complete_trees(self, k):
        problem = pi_k(k)
        _assert_solves(PolynomialSolver(k), problem, complete_tree(2, 9))

    def test_rounds_shrink_with_k(self):
        tree = complete_tree(2, 11)
        rounds = [PolynomialSolver(k).solve(tree).rounds for k in (1, 2, 3)]
        assert rounds[0] > rounds[1] > rounds[2]

    def test_rounds_scale_like_n_to_one_over_k(self):
        small, large = complete_tree(2, 8), complete_tree(2, 12)
        ratio_n = large.num_nodes / small.num_nodes
        for k in (2, 3):
            solver = PolynomialSolver(k)
            ratio_rounds = solver.solve(large).rounds / solver.solve(small).rounds
            assert ratio_rounds < ratio_n ** (1.0 / k) * 2.5

    def test_invalid_k_rejected(self):
        with pytest.raises(SolverError):
            PolynomialSolver(0)


class TestSolverMetadata:
    def test_results_carry_solver_names(self):
        problem = maximal_independent_set()
        result = MISSolver(problem).solve(complete_tree(2, 5))
        assert result.solver_name == "mis-4-rounds"

    def test_solver_requires_full_tree(self):
        from repro.trees import lower_bound_tree

        bipolar = lower_bound_tree(4, 2)  # not a full binary tree
        with pytest.raises(SolverError):
            MISSolver(maximal_independent_set()).solve(bipolar.tree)

    def test_solver_classes_match_classifier(self):
        """Each solver targets the class the classifier reports for its problem."""
        assert classify(maximal_independent_set()).complexity == ComplexityClass.CONSTANT
        assert classify(three_coloring()).complexity == ComplexityClass.LOGSTAR
        assert classify(branch_two_coloring()).complexity == ComplexityClass.LOG
        assert classify(pi_k(2)).complexity == ComplexityClass.POLYNOMIAL
