"""Tests for the solution verifier (Definition 4.2) and the reference solvers."""

import pytest

from repro.labeling import (
    assert_valid_labeling,
    brute_force_solve,
    count_solutions,
    greedy_top_down_solve,
    is_valid_labeling,
    labeling_uses_labels,
    solvable_on_tree,
    verify_labeling,
)
from repro.problems import (
    maximal_independent_set,
    three_coloring,
    trivial_problem,
    two_coloring,
    unsolvable_problem,
)
from repro.trees import complete_tree, hairy_path, random_full_tree


class TestVerifier:
    def test_valid_two_coloring_of_complete_tree(self):
        tree = complete_tree(2, 3)
        depths = tree.depths()
        labeling = {v: "1" if depths[v] % 2 == 0 else "2" for v in tree.nodes()}
        report = verify_labeling(two_coloring(), tree, labeling)
        assert report.valid
        assert report.checked_nodes == len(tree.internal_nodes())

    def test_invalid_labeling_detected(self):
        tree = complete_tree(2, 2)
        labeling = {v: "1" for v in tree.nodes()}
        report = verify_labeling(two_coloring(), tree, labeling)
        assert not report.valid
        assert report.violations

    def test_unlabeled_node_detected(self):
        tree = complete_tree(2, 2)
        labeling = {v: "1" for v in tree.nodes() if v != tree.root}
        assert not verify_labeling(two_coloring(), tree, labeling).valid

    def test_unknown_label_detected(self):
        tree = complete_tree(2, 1)
        labeling = {v: "9" for v in tree.nodes()}
        assert not verify_labeling(two_coloring(), tree, labeling).valid

    def test_leaves_are_unconstrained(self):
        tree = complete_tree(2, 1)
        labeling = {tree.root: "1"}
        for child in tree.children[tree.root]:
            labeling[child] = "2"
        # Change one leaf to an arbitrary alphabet label: still fine as long as the
        # root's configuration is allowed.
        labeling[tree.children[tree.root][0]] = "2"
        assert is_valid_labeling(two_coloring(), tree, labeling)

    def test_max_violations_cap(self):
        tree = complete_tree(2, 4)
        labeling = {v: "1" for v in tree.nodes()}
        report = verify_labeling(two_coloring(), tree, labeling, max_violations=3)
        assert not report.valid
        assert len(report.violations) <= 3

    def test_assert_valid_labeling_raises(self):
        tree = complete_tree(2, 2)
        labeling = {v: "1" for v in tree.nodes()}
        with pytest.raises(AssertionError):
            assert_valid_labeling(two_coloring(), tree, labeling)

    def test_labeling_uses_labels(self):
        assert labeling_uses_labels({0: "a", 1: "b"}, ["a", "b"])
        assert not labeling_uses_labels({0: "a", 1: "z"}, ["a", "b"])


class TestBruteForce:
    def test_brute_force_finds_three_coloring(self):
        tree = complete_tree(2, 3)
        labeling = brute_force_solve(three_coloring(), tree)
        assert labeling is not None
        assert is_valid_labeling(three_coloring(), tree, labeling)

    def test_brute_force_finds_mis(self):
        tree = random_full_tree(2, 6, seed=0)
        labeling = brute_force_solve(maximal_independent_set(), tree)
        assert labeling is not None
        assert is_valid_labeling(maximal_independent_set(), tree, labeling)

    def test_brute_force_detects_unsolvable(self):
        tree = complete_tree(2, 3)
        assert brute_force_solve(unsolvable_problem(), tree) is None
        assert not solvable_on_tree(unsolvable_problem(), tree)

    def test_unsolvable_problem_is_solvable_on_shallow_trees(self):
        # Depth-1 complete trees only constrain the root, so 1 : 2 2 suffices.
        tree = complete_tree(2, 1)
        assert solvable_on_tree(unsolvable_problem(), tree)

    def test_count_solutions_trivial(self):
        tree = complete_tree(2, 1)
        assert count_solutions(trivial_problem(), tree) == 1

    def test_count_solutions_two_coloring_depth_one(self):
        tree = complete_tree(2, 1)
        # Root has 2 choices, the configuration then fixes both leaves.
        assert count_solutions(two_coloring(), tree) == 2


class TestGreedySolver:
    def test_greedy_solves_catalog_problems(self):
        tree = random_full_tree(2, 40, seed=2)
        for problem in (three_coloring(), two_coloring(), maximal_independent_set()):
            labeling = greedy_top_down_solve(problem, tree)
            assert labeling is not None
            assert is_valid_labeling(problem, tree, labeling)

    def test_greedy_fails_on_unsolvable(self):
        assert greedy_top_down_solve(unsolvable_problem(), complete_tree(2, 3)) is None

    def test_greedy_matches_brute_force_solvability(self):
        tree = complete_tree(2, 2)
        for problem in (three_coloring(), two_coloring(), trivial_problem()):
            assert (greedy_top_down_solve(problem, tree) is not None) == (
                brute_force_solve(problem, tree) is not None
            )

    def test_greedy_on_hairy_path(self):
        tree = hairy_path(2, 30)
        labeling = greedy_top_down_solve(two_coloring(), tree)
        assert labeling is not None
        assert is_valid_labeling(two_coloring(), tree, labeling)
