"""Golden landscape pin: the census digest is committed and asserted.

The classifier's *answers* are the product this repo ships; a kernel change
that flips a single classification must fail loudly, not surface months
later as a wrong table.  This suite recomputes the ``bench_table1_landscape``
census — every catalog row plus the exhaustive two-label δ=2 landscape plus
the seeded three-label pool — and compares it entry by entry against the
committed fixture ``tests/data/landscape_golden.json``, finishing with the
overall digest.

The fixture is regenerated on purpose only::

    REPRO_UPDATE_GOLDEN=1 PYTHONPATH=src python -m pytest -q tests/test_landscape_golden.py

A regeneration must come with an explanation of *why* the landscape moved;
the classes are theorems, so legitimate moves are essentially limited to
census membership changes (new catalog rows, pool changes).
"""

from __future__ import annotations

import hashlib
import itertools
import json
import os
from pathlib import Path

from repro.core import classify
from repro.core.problem import LCLProblem
from repro.engine.canonical import canonical_form
from repro.problems.catalog import catalog
from repro.problems.pools import distinct_forms

GOLDEN_PATH = Path(__file__).parent / "data" / "landscape_golden.json"


def _two_label_landscape() -> list:
    """Every δ=2 problem over {1, 2}: 64 configuration subsets, in order."""
    labels = ("1", "2")
    universe = [
        (parent, children)
        for parent in labels
        for children in itertools.combinations_with_replacement(labels, 2)
    ]
    rows = []
    for bits in range(1 << len(universe)):
        chosen = [universe[i] for i in range(len(universe)) if (bits >> i) & 1]
        problem = LCLProblem.create(delta=2, configurations=chosen, labels=labels)
        rows.append({"bits": bits, "complexity": classify(problem).complexity.value})
    return rows


def compute_census() -> dict:
    """The full golden census (deterministic: no seeds drawn at run time)."""
    catalog_rows = {}
    for name, (problem, _expected) in sorted(catalog().items()):
        catalog_rows[name] = {
            "canonical_digest": canonical_form(problem).digest,
            "complexity": classify(problem).complexity.value,
        }
    pool_rows = []
    for form in distinct_forms(20, labels=3, density=0.3):
        pool_rows.append(
            {
                "canonical_digest": form.digest,
                "complexity": classify(form.problem).complexity.value,
            }
        )
    census = {
        "schema": "repro.landscape_golden/1",
        "catalog": catalog_rows,
        "two_label_delta2": _two_label_landscape(),
        "pool_labels3_density0.3_count20": pool_rows,
    }
    census["digest"] = hashlib.sha256(
        json.dumps(census, sort_keys=True).encode("utf-8")
    ).hexdigest()
    return census


def test_landscape_census_matches_committed_golden():
    census = compute_census()
    if os.environ.get("REPRO_UPDATE_GOLDEN") == "1":  # pragma: no cover
        GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
        GOLDEN_PATH.write_text(json.dumps(census, indent=2, sort_keys=True) + "\n")
    golden = json.loads(GOLDEN_PATH.read_text())

    # Entry-by-entry first: a digest mismatch alone is undebuggable.
    assert census["catalog"] == golden["catalog"]
    assert census["two_label_delta2"] == golden["two_label_delta2"]
    assert (
        census["pool_labels3_density0.3_count20"]
        == golden["pool_labels3_density0.3_count20"]
    )
    assert census["digest"] == golden["digest"]


def test_catalog_expectations_still_hold():
    """The catalog's own expected classes agree with the pinned census."""
    golden = json.loads(GOLDEN_PATH.read_text())
    for name, (_problem, expected) in catalog().items():
        assert golden["catalog"][name]["complexity"] == expected.value, name
