"""Differential oracle: the bitmask kernel is pinned to the reference path.

Every test classifies the same problems twice — once with
``REPRO_KERNEL=bitmask`` (the default) and once with the frozenset
reference — and asserts *equality of everything observable*: the complexity
class, the pruning sets and notes, the materialized certificates, and the
byte-level ``entries`` of the certificate builders.  The sweep covers

* **all** small problems exhaustively (every configuration subset over one-
  and two-label alphabets for δ ∈ {1, 2, 3} — including unsolvable, empty,
  and degenerate problems),
* the seeded pools of :mod:`repro.problems.pools` (the same pools the fuzz
  and parity suites use),
* the paper's catalog and the adversarial family, and
* error behavior (timeouts) and every worker backend.

Any divergence is a kernel bug by definition: the reference implementation
is the specification.
"""

from __future__ import annotations

import itertools

import pytest

from repro.core import classify_with_certificates, kernel_override
from repro.core.constant_certificate import find_constant_certificate_builder
from repro.core.kernel import BITMASK, KERNELS, REFERENCE, active_kernel
from repro.core.log_certificate import find_log_certificate
from repro.core.logstar_certificate import (
    find_certificate_builder,
    find_unrestricted_certificate,
)
from repro.core.problem import LCLProblem
from repro.problems.adversarial import hard_problem
from repro.problems.catalog import catalog
from repro.problems.pools import distinct_forms, seeded_problems


def _assert_same_classification(problem: LCLProblem) -> None:
    """Classify under both kernels; everything observable must match."""
    with kernel_override(REFERENCE):
        ref = classify_with_certificates(problem)
    with kernel_override(BITMASK):
        ker = classify_with_certificates(problem)
    context = f"problem={problem!r}"
    assert ker.result == ref.result, context
    assert ker.log_certificate == ref.log_certificate, context
    # Materialized log*/constant certificates compare by their label sets and
    # special configuration (already covered by the result equality above);
    # presence must agree exactly.
    assert (ker.logstar_certificate is None) == (
        ref.logstar_certificate is None
    ), context
    assert (ker.constant_certificate is None) == (
        ref.constant_certificate is None
    ), context


def _assert_same_builders(problem: LCLProblem) -> None:
    """The search functions themselves must return equal objects.

    ``CertificateBuilder`` equality includes the ``entries`` dict (which
    derivation produced each root-set pair), so this pins the kernel's
    enumeration *order*, not only its answers.
    """
    with kernel_override(REFERENCE):
        ref = (
            find_log_certificate(problem),
            find_unrestricted_certificate(problem),
            find_certificate_builder(problem),
            find_constant_certificate_builder(problem),
            [
                find_unrestricted_certificate(problem, special_label=label)
                for label in sorted(problem.labels)
            ],
        )
    with kernel_override(BITMASK):
        ker = (
            find_log_certificate(problem),
            find_unrestricted_certificate(problem),
            find_certificate_builder(problem),
            find_constant_certificate_builder(problem),
            [
                find_unrestricted_certificate(problem, special_label=label)
                for label in sorted(problem.labels)
            ],
        )
    for tag, ref_value, ker_value in zip(
        ("alg2", "alg3", "alg4", "alg5", "alg3-special"), ref, ker
    ):
        assert ker_value == ref_value, f"{tag} diverged for problem={problem!r}"


def _all_small_problems(delta: int, labels: tuple) -> list:
    """Every problem over ``labels`` with the given δ: all config subsets."""
    universe = [
        (parent, children)
        for parent in labels
        for children in itertools.combinations_with_replacement(labels, delta)
    ]
    problems = []
    for bits in range(1 << len(universe)):
        chosen = [universe[i] for i in range(len(universe)) if (bits >> i) & 1]
        problems.append(
            LCLProblem.create(delta=delta, configurations=chosen, labels=labels)
        )
    return problems


class TestExhaustiveSmallProblems:
    """The tractable bound: every problem on ≤2 labels, δ ≤ 3, exhaustively."""

    @pytest.mark.parametrize("delta", [1, 2, 3])
    def test_every_single_label_problem_agrees(self, delta):
        for problem in _all_small_problems(delta, ("1",)):
            _assert_same_classification(problem)

    @pytest.mark.parametrize("delta", [1, 2])
    def test_every_two_label_problem_agrees(self, delta):
        for problem in _all_small_problems(delta, ("1", "2")):
            _assert_same_classification(problem)

    def test_two_label_delta3_problems_agree_builder_level(self):
        # δ=3 over two labels is 256 problems; check the builders themselves
        # (entries included) on every fourth one and the classification on all.
        problems = _all_small_problems(3, ("1", "2"))
        for index, problem in enumerate(problems):
            _assert_same_classification(problem)
            if index % 4 == 0:
                _assert_same_builders(problem)


class TestSeededPools:
    """The shared pools every harness draws from, at builder-level equality."""

    def test_distinct_form_pool_agrees(self):
        for form in distinct_forms(20, labels=3, density=0.3):
            _assert_same_builders(form.problem)
            _assert_same_classification(form.problem)

    def test_two_label_census_draws_agree(self):
        for problem in seeded_problems(40, labels=2, density=0.5, seed=0):
            _assert_same_builders(problem)

    def test_three_label_sparse_draws_agree(self):
        for problem in seeded_problems(25, labels=3, density=0.2, seed=500):
            _assert_same_classification(problem)

    def test_four_label_draws_agree(self):
        for problem in seeded_problems(10, labels=4, density=0.25, seed=900):
            _assert_same_classification(problem)


class TestNamedFamilies:
    def test_catalog_agrees_and_matches_expected(self):
        for name, (problem, expected) in catalog().items():
            _assert_same_builders(problem)
            with kernel_override(BITMASK):
                assert classify_with_certificates(problem).complexity == expected, name

    @pytest.mark.parametrize("pairs", [0, 1, 2, 3])
    def test_adversarial_family_agrees(self, pairs):
        _assert_same_builders(hard_problem(pairs))


class TestErrorParity:
    """Timeouts and cancellation surface identically from both kernels."""

    @pytest.mark.parametrize("kernel", KERNELS)
    def test_expired_budget_raises_search_timeout(self, kernel):
        from repro.core import CancelToken, SearchTimeout, cancel_scope, classify

        problem = hard_problem(12)
        with kernel_override(kernel):
            with cancel_scope(CancelToken.with_budget(0.0)):
                with pytest.raises(SearchTimeout):
                    classify(problem)

    @pytest.mark.parametrize("kernel", KERNELS)
    def test_invalid_kernel_name_rejected(self, kernel, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL", "vectorized")
        with pytest.raises(ValueError):
            active_kernel()
        monkeypatch.setenv("REPRO_KERNEL", kernel)
        assert active_kernel() == kernel


class TestEveryBackend:
    """The kernels agree end to end through every worker backend.

    The kernel is selected via the environment here (not
    :func:`kernel_override`, which is thread-local) because threads and
    process pools run searches off the submitting thread; the process pool
    inherits the environment at creation time, so the session is opened
    *after* the env var is set.
    """

    POOL = 6

    def _outcomes(self, endpoint: str):
        from repro.api import connect

        problems = [form.problem for form in distinct_forms(self.POOL, labels=3)]
        with connect(endpoint) as session:
            items = list(session.classify_many(problems))
        return [
            (item.outcome, item.result.complexity if item.result else None)
            for item in items
        ]

    @pytest.mark.parametrize(
        "endpoint",
        ["local://inline", "local://threads?workers=2", "local://processes?workers=2"],
    )
    def test_backend_outcomes_match_between_kernels(self, endpoint, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL", REFERENCE)
        ref = self._outcomes(endpoint)
        monkeypatch.setenv("REPRO_KERNEL", BITMASK)
        ker = self._outcomes(endpoint)
        assert ker == ref
        assert all(outcome == "ok" for outcome, _ in ker)
