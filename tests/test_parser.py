"""Unit tests for parsing and formatting of problem descriptions."""

import pytest

from repro.core import Configuration, LCLError, parse_configuration, parse_problem, format_problem
from repro.core.parser import parse_problem_lines, round_trip
from repro.problems import maximal_independent_set, three_coloring


class TestConfigurationParsing:
    def test_colon_form(self):
        assert parse_configuration("1 : 2 3") == Configuration("1", ("2", "3"))

    def test_compact_form(self):
        assert parse_configuration("1:23") == Configuration("1", ("2", "3"))

    def test_whitespace_form(self):
        assert parse_configuration("a b b") == Configuration("a", ("b", "b"))

    def test_multicharacter_labels_with_known_alphabet(self):
        config = parse_configuration("x1 : a1 b1", known_labels=["x1", "a1", "b1"])
        assert config == Configuration("x1", ("a1", "b1"))

    def test_empty_line_rejected(self):
        with pytest.raises(LCLError):
            parse_configuration("   ")

    def test_missing_children_rejected(self):
        with pytest.raises(LCLError):
            parse_configuration("1 :")


class TestProblemParsing:
    def test_three_coloring_from_paper_notation(self):
        text = """
        1 : 22   ; 1 : 23 ; 1 : 33
        2 : 11   ; 2 : 13 ; 2 : 33
        3 : 11   ; 3 : 12 ; 3 : 22
        """
        problem = parse_problem(text, name="3-coloring")
        assert problem.configurations == three_coloring().configurations

    def test_mis_from_lines(self):
        problem = parse_problem_lines(
            ["1 : a a", "1 : a b", "1 : b b", "a : b b", "b : b 1", "b : 1 1"]
        )
        assert problem.configurations == maximal_independent_set().configurations

    def test_comments_and_blank_lines_ignored(self):
        problem = parse_problem("# proper 2-coloring\n\n1 : 2 2\n2 : 1 1\n")
        assert problem.num_configurations == 2

    def test_inconsistent_arity_rejected(self):
        with pytest.raises(LCLError):
            parse_problem("1 : 2 2\n2 : 1")

    def test_empty_description_rejected(self):
        with pytest.raises(LCLError):
            parse_problem("   \n  # nothing here\n")

    def test_explicit_delta_checked(self):
        with pytest.raises(LCLError):
            parse_problem("1 : 2 2", delta=3)


class TestFormatting:
    def test_round_trip_three_coloring(self):
        problem = three_coloring()
        assert round_trip(problem).configurations == problem.configurations

    def test_round_trip_mis(self):
        problem = maximal_independent_set()
        assert round_trip(problem).configurations == problem.configurations

    def test_compact_formatting(self):
        text = format_problem(three_coloring(), compact=True)
        assert "1 : 22" in text

    def test_format_is_sorted_and_stable(self):
        assert format_problem(three_coloring()) == format_problem(three_coloring())
