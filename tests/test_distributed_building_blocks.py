"""Tests for the simulator, the distributed coloring and the rake-and-compress decomposition."""

import pytest

from repro.distributed import (
    RoundBreakdown,
    Simulator,
    cole_vishkin_iterations,
    cole_vishkin_step,
    log_star,
    message_size_bits,
    rake_compress_decomposition,
    three_color_tree,
    verify_proper_coloring,
)
from repro.distributed.network import NodeInfo, StateExchangeAlgorithm
from repro.trees import complete_tree, hairy_path, random_full_tree


class TestRounds:
    def test_log_star_values(self):
        assert log_star(1) == 0
        assert log_star(2) == 1
        assert log_star(4) == 2
        assert log_star(16) == 3
        assert log_star(65536) == 4
        assert log_star(2 ** 65536 if False else 10 ** 9) == 5

    def test_breakdown_totals(self):
        breakdown = RoundBreakdown()
        breakdown.add("a", 3)
        breakdown.add("b", 4)
        breakdown.add("a", 1)
        assert breakdown.total == 8
        assert breakdown.as_dict() == {"a": 4, "b": 4}
        assert "total: 8" in breakdown.describe()

    def test_negative_rounds_rejected(self):
        with pytest.raises(ValueError):
            RoundBreakdown().add("a", -1)

    def test_message_size_bits(self):
        assert message_size_bits(None) == 0
        assert message_size_bits(True) == 1
        assert message_size_bits(7) == 3
        assert message_size_bits("ab") == 16
        assert message_size_bits((1, 2)) > 0


class _CountDownAlgorithm(StateExchangeAlgorithm):
    """A toy algorithm: every node outputs after a fixed number of rounds."""

    def __init__(self, rounds):
        self.rounds = rounds

    def initial_state(self, info):
        return 0

    def update(self, info, state, parent_state, children_states):
        return state + 1

    def output(self, info, state):
        return "done" if state >= self.rounds else None


class TestSimulator:
    def test_round_counting(self):
        tree = complete_tree(2, 3)
        result = Simulator(tree).run(_CountDownAlgorithm(5))
        assert result.rounds == 5
        assert result.converged
        assert all(value == "done" for value in result.outputs.values())

    def test_zero_round_algorithm(self):
        tree = complete_tree(2, 2)
        result = Simulator(tree).run(_CountDownAlgorithm(0))
        assert result.rounds == 0

    def test_non_convergence_reported(self):
        tree = complete_tree(2, 2)
        result = Simulator(tree).run(_CountDownAlgorithm(10 ** 9), max_rounds=5)
        assert not result.converged

    def test_duplicate_identifiers_rejected(self):
        tree = complete_tree(2, 2)
        with pytest.raises(ValueError):
            Simulator(tree, identifiers=[1] * tree.num_nodes)

    def test_node_info_exposed(self):
        tree = complete_tree(2, 2)
        simulator = Simulator(tree)
        info = simulator.infos[tree.root]
        assert info.is_root
        assert info.num_children == 2
        assert info.n == tree.num_nodes


class TestColeVishkin:
    def test_step_reduces_and_preserves_difference(self):
        color, parent = 0b101101, 0b100101
        new = cole_vishkin_step(color, parent)
        assert new != cole_vishkin_step(parent, 0b111111)
        assert new < 2 * 6

    def test_step_requires_difference(self):
        with pytest.raises(ValueError):
            cole_vishkin_step(5, 5)

    def test_iteration_bound_is_small(self):
        assert cole_vishkin_iterations(10 ** 6) <= 8

    @pytest.mark.parametrize(
        "tree",
        [complete_tree(2, 6), random_full_tree(2, 200, seed=1), hairy_path(2, 150), complete_tree(3, 4)],
        ids=["complete", "random", "hairy", "ternary"],
    )
    def test_three_coloring_is_proper(self, tree):
        colors, rounds = three_color_tree(tree, tree.default_identifiers(seed=11))
        assert verify_proper_coloring(tree, colors)
        assert set(colors.values()) <= {0, 1, 2}
        assert rounds <= 20

    def test_round_count_grows_slowly(self):
        small = three_color_tree(complete_tree(2, 4))[1]
        large = three_color_tree(complete_tree(2, 10))[1]
        assert large <= small + 3


class TestRakeCompress:
    def test_layers_cover_all_nodes(self):
        tree = random_full_tree(2, 300, seed=3)
        decomposition = rake_compress_decomposition(tree, 4)
        assert set(decomposition.layer.keys()) == set(tree.nodes())

    def test_number_of_layers_is_logarithmic(self):
        tree = complete_tree(2, 10)  # 2047 nodes
        decomposition = rake_compress_decomposition(tree, 4)
        assert decomposition.num_layers <= 24

    def test_number_of_layers_grows_with_n(self):
        small = rake_compress_decomposition(complete_tree(2, 5), 4).num_layers
        large = rake_compress_decomposition(complete_tree(2, 11), 4).num_layers
        assert large > small

    def test_hairy_path_has_few_layers(self):
        tree = hairy_path(2, 500)
        decomposition = rake_compress_decomposition(tree, 4)
        assert decomposition.num_layers <= 4

    def test_path_components_have_minimum_length(self):
        tree = hairy_path(2, 100)
        decomposition = rake_compress_decomposition(tree, 7)
        for paths in decomposition.path_components.values():
            for path in paths:
                assert len(path) >= 7

    def test_path_components_are_vertical_paths(self):
        tree = random_full_tree(2, 400, seed=9)
        decomposition = rake_compress_decomposition(tree, 5)
        for paths in decomposition.path_components.values():
            for path in paths:
                for upper, lower in zip(path, path[1:]):
                    assert tree.parent[lower] == upper

    def test_kinds_are_consistent(self):
        tree = random_full_tree(2, 200, seed=4)
        decomposition = rake_compress_decomposition(tree, 4)
        assert set(decomposition.kind.values()) <= {"leaf", "path"}

    def test_invalid_p_rejected(self):
        with pytest.raises(ValueError):
            rake_compress_decomposition(complete_tree(2, 3), 0)

    def test_rounds_accounted(self):
        decomposition = rake_compress_decomposition(complete_tree(2, 8), 3)
        assert decomposition.rounds == decomposition.num_layers * 4
