"""Tests for the unified session facade (`repro.api`).

The heart of this suite is *endpoint parity*: the same problem set, pushed
through `local://inline`, `local://threads`, and `tcp://` sessions, must
yield identical Outcome fields, identical error types/codes/messages, and
consistent stats invariants.  The problem pools are shared with the
scheduler fuzz harness (tests/problem_pools.py).
"""

import json

import pytest

from problem_pools import distinct_forms, seeded_problems
from repro.api import (
    ClassificationCancelled,
    ClassificationSession,
    ClassificationTimeout,
    EndpointError,
    Outcome,
    ProblemFormatError,
    RequestError,
    SessionConfig,
    UnsupportedOperationError,
    connect,
    parse_endpoint,
)
from repro.engine import BatchClassifier
from repro.problems import hard_problem
from repro.service.server import ThreadedService, item_payload
from repro.workers import ClassificationScheduler, SearchTimeStats, create_backend
from repro.workers.metrics import BUCKET_BOUNDS_MS


TWO_COLORING = "1 : 2 2\n2 : 1 1"


# ----------------------------------------------------------------------
# Endpoint / config parsing
# ----------------------------------------------------------------------
class TestEndpointParsing:
    def test_local_endpoint_with_query(self):
        config = parse_endpoint(
            "local://threads?workers=4&cache=/tmp/c.json"
            "&cache_max_entries=100&priority=batch&deadline=2.5"
        )
        assert config.mode == "local"
        assert config.backend == "threads"
        assert config.workers == 4
        assert config.cache_path == "/tmp/c.json"
        assert config.cache_max_entries == 100
        assert config.default_priority == "batch"
        assert config.default_deadline == 2.5

    def test_tcp_endpoint(self):
        config = parse_endpoint("tcp://example.com:9000?retries=3")
        assert (config.mode, config.host, config.port) == ("tcp", "example.com", 9000)
        assert config.retries == 3

    def test_tcp_default_port(self):
        assert parse_endpoint("tcp://localhost").port == 8765

    def test_stdio_endpoint_spellings(self):
        for spelling in ("stdio:", "stdio://", "stdio:?cache_max_entries=5"):
            config = parse_endpoint(spelling)
            assert config.mode == "stdio"

    def test_endpoint_round_trips_through_url(self):
        config = parse_endpoint("local://processes?workers=2&priority=warm")
        assert parse_endpoint(config.endpoint()) == config

    @pytest.mark.parametrize(
        "endpoint",
        [
            "gpu://fast",  # unknown scheme
            "local://quantum",  # unknown backend
            "local://threads?wrokers=4",  # typo'd parameter
            "local://threads?workers=lots",  # non-integer
            "tcp://",  # no host
            "local://",  # no backend
            "",  # empty
            "local://inline?priority=urgent",  # unknown priority
            "local://inline?deadline=-1",  # non-positive deadline
        ],
    )
    def test_bad_endpoints_raise(self, endpoint):
        with pytest.raises(EndpointError):
            parse_endpoint(endpoint)

    def test_overrides_win_over_url(self):
        config = SessionConfig.from_endpoint("local://inline", backend="threads")
        assert config.backend == "threads"

    def test_config_validates_directly(self):
        with pytest.raises(EndpointError):
            SessionConfig(mode="tcp")  # host required
        with pytest.raises(EndpointError):
            SessionConfig(mode="local", backend="gpu")


# ----------------------------------------------------------------------
# Outcome shape: the facade and the wire must never drift apart
# ----------------------------------------------------------------------
class TestOutcomeShape:
    def test_as_dict_matches_service_item_payload(self):
        with BatchClassifier() as classifier:
            items = classifier.classify_many(seeded_problems(6, labels=2))
        for item in items:
            assert Outcome.from_batch_item(item).as_dict() == item_payload(item)

    def test_payload_round_trip(self):
        with BatchClassifier() as classifier:
            item = classifier.classify_item(seeded_problems(1, labels=2)[0])
        outcome = Outcome.from_batch_item(item)
        rebuilt = Outcome.from_payload(outcome.as_dict())
        assert rebuilt.as_dict() == outcome.as_dict()

    def test_require_returns_ok_outcome(self):
        with connect() as session:
            outcome = session.classify(TWO_COLORING)
        assert outcome.require() is outcome


# ----------------------------------------------------------------------
# Local sessions
# ----------------------------------------------------------------------
class TestLocalSession:
    def test_classify_accepts_text_problem_and_dict(self):
        from repro.core.parser import parse_problem
        from repro.engine.serialization import problem_to_dict

        problem = parse_problem(TWO_COLORING, name="2col")
        with connect("local://inline") as session:
            by_text = session.classify(TWO_COLORING)
            by_problem = session.classify(problem)
            by_dict = session.classify(problem_to_dict(problem))
        assert (
            by_text.complexity
            == by_problem.complexity
            == by_dict.complexity
            == "n^Theta(1)"
        )
        assert by_text.canonical_key == by_problem.canonical_key

    def test_submit_resolves_to_outcome(self):
        with connect("local://threads?workers=2") as session:
            pending = session.submit(TWO_COLORING)
            outcome = pending.result()
        assert pending.done
        assert outcome.ok and outcome.complexity == "n^Theta(1)"

    def test_classify_many_preserves_order_and_amortizes(self):
        problems = seeded_problems(12, labels=2)
        with connect("local://inline") as session:
            outcomes = list(session.classify_many(problems))
            stats = session.stats()
        assert [o.name for o in outcomes] == [p.name for p in problems]
        assert all(o.ok for o in outcomes)
        assert stats["batch"]["submitted"] == 12
        assert stats["batch"]["full_searches"] < 12  # canonical dedup works

    def test_census_matches_classify_many_of_same_seeds(self):
        with connect("local://inline") as session:
            census = [o.complexity for o in session.census(labels=2, count=10, seed=3)]
        with connect("local://inline") as session:
            manual = [
                o.complexity
                for o in session.classify_many(
                    seeded_problems(10, labels=2, seed=3)
                )
            ]
        assert census == manual

    def test_cache_persists_on_close(self, tmp_path):
        cache_file = tmp_path / "cache.json"
        with connect(f"local://inline?cache={cache_file}") as session:
            session.classify(TWO_COLORING)
        assert cache_file.exists()
        with connect(f"local://inline?cache={cache_file}") as session:
            session.classify(TWO_COLORING)
            stats = session.stats()
        assert stats["cache"]["hits"] == 1
        assert stats["batch"]["full_searches"] == 0

    def test_session_default_scheduling_from_endpoint(self):
        with connect("local://inline?priority=warm") as session:
            # An invalid per-call priority still fails fast...
            with pytest.raises(RequestError):
                session.classify(TWO_COLORING, priority="urgent")
            # ...and the endpoint's default is applied otherwise.
            outcome = session.classify(TWO_COLORING)
            assert outcome.ok

    def test_bad_deadline_rejected_before_dispatch(self):
        with connect("local://inline") as session:
            with pytest.raises(RequestError):
                session.classify(TWO_COLORING, deadline=-2)

    def test_local_cancel_and_shutdown_are_unsupported(self):
        with connect("local://inline") as session:
            with pytest.raises(UnsupportedOperationError):
                session.cancel(7)
            with pytest.raises(UnsupportedOperationError):
                session.shutdown()

    def test_warm_requires_a_workload(self):
        with connect("local://inline") as session:
            with pytest.raises(RequestError):
                session.warm()

    def test_stats_shape_is_uniform(self):
        with connect("local://inline") as session:
            session.classify(TWO_COLORING)
            stats = session.stats()
        assert set(stats) >= {"cache", "batch", "workers", "endpoint"}
        assert stats["endpoint"] == "local://inline"
        assert "search_times" in stats["workers"]


# ----------------------------------------------------------------------
# Endpoint parity — the acceptance criterion of the facade
# ----------------------------------------------------------------------
def _parity_fields(outcome):
    """The Outcome fields that must be identical on every endpoint.

    ``from_cache`` and ``elapsed_ms`` legitimately differ (separate caches,
    separate clocks); everything else must match exactly.
    """
    payload = outcome.as_dict()
    return {
        key: payload[key]
        for key in ("name", "outcome", "complexity", "details", "canonical_key", "result")
    }


class TestEndpointParity:
    @pytest.fixture(scope="class")
    def problem_set(self):
        # Duplicate-heavy two-label draws plus a few three-label orbits from
        # the fuzz harness's pool: broad class coverage, bounded runtime.
        problems = seeded_problems(14, labels=2)
        problems += [form.problem for form in distinct_forms(4)]
        return problems

    def test_same_outcomes_on_every_endpoint(self, problem_set):
        results = {}
        stats = {}
        with connect("local://inline") as session:
            results["inline"] = [
                _parity_fields(o) for o in session.classify_many(problem_set)
            ]
            stats["inline"] = session.stats()
        with connect("local://threads?workers=2") as session:
            results["threads"] = [
                _parity_fields(o) for o in session.classify_many(problem_set)
            ]
            stats["threads"] = session.stats()
        with ThreadedService(backend="threads", workers=2) as (host, port):
            with connect(f"tcp://{host}:{port}") as session:
                results["tcp"] = [
                    _parity_fields(o) for o in session.classify_many(problem_set)
                ]
                stats["tcp"] = session.stats()
        assert results["inline"] == results["threads"] == results["tcp"]
        # Stats invariants hold on every endpoint: every submission is
        # accounted for, and every search reached exactly one terminal state.
        for endpoint, payload in stats.items():
            batch = payload["batch"]
            workers = payload["workers"]
            assert batch["submitted"] == len(problem_set), endpoint
            assert workers["flights"] == (
                workers["completed"]
                + workers["failed"]
                + workers["cancelled"]
                + workers["timeouts"]
            ), endpoint
            assert workers["failed"] == 0, endpoint
            assert workers["search_times"]["count"] == workers["completed"], endpoint

    def test_single_classify_parity(self, problem_set):
        problem = problem_set[0]
        with connect("local://inline") as session:
            local = _parity_fields(session.classify(problem))
        with ThreadedService(backend="threads", workers=2) as (host, port):
            with connect(f"tcp://{host}:{port}") as session:
                remote = _parity_fields(session.classify(problem))
        assert local == remote

    def test_census_parity_local_vs_remote(self):
        params = dict(labels=2, count=10, seed=5)
        with connect("local://inline") as session:
            local = [_parity_fields(o) for o in session.census(**params)]
        with ThreadedService(backend="threads", workers=2) as (host, port):
            with connect(f"tcp://{host}:{port}") as session:
                remote = [_parity_fields(o) for o in session.census(**params)]
        assert local == remote

    def test_warm_summary_parity(self):
        census = {"labels": 2, "count": 8, "seed": 2}
        keys = ("count", "unique_keys", "already_cached", "scheduled", "waited")
        with connect("local://inline") as session:
            local = session.warm(census=census, wait=True)
        with ThreadedService(backend="threads", workers=2) as (host, port):
            with connect(f"tcp://{host}:{port}") as session:
                remote = session.warm(census=census, wait=True)
        assert {k: local[k] for k in keys} == {k: remote[k] for k in keys}


# ----------------------------------------------------------------------
# Error-surface parity
# ----------------------------------------------------------------------
class TestErrorParity:
    def _collect(self, fn, exc_type):
        with pytest.raises(exc_type) as info:
            fn()
        return (type(info.value), info.value.code, str(info.value))

    def test_bad_problem_parity(self):
        bad = "1 : 2 2 ; 2 : 1"  # mismatched arity: rejected by the grammar
        with connect("local://inline") as session:
            local = self._collect(lambda: session.classify(bad), ProblemFormatError)
        with ThreadedService(backend="threads", workers=2) as (host, port):
            with connect(f"tcp://{host}:{port}") as session:
                remote = self._collect(
                    lambda: session.classify(bad), ProblemFormatError
                )
        assert local == remote
        assert local[1] == "bad-problem"

    def test_bad_priority_parity(self):
        with connect("local://inline") as session:
            local = self._collect(
                lambda: session.classify(TWO_COLORING, priority="urgent"),
                RequestError,
            )
        with ThreadedService(backend="threads", workers=2) as (host, port):
            with connect(f"tcp://{host}:{port}") as session:
                remote = self._collect(
                    lambda: session.classify(TWO_COLORING, priority="urgent"),
                    RequestError,
                )
        assert local == remote

    def test_timeout_outcome_and_error_parity(self):
        problem = hard_problem(12)  # minutes of search; deadline far below
        with connect("local://inline") as session:
            local = session.classify(problem, deadline=0.2)
        with ThreadedService(backend="threads", workers=2) as (host, port):
            with connect(f"tcp://{host}:{port}") as session:
                remote = session.classify(problem, deadline=0.2)
        assert local.outcome == remote.outcome == "timeout"
        assert local.canonical_key == remote.canonical_key
        local_err = self._collect(local.require, ClassificationTimeout)
        remote_err = self._collect(remote.require, ClassificationTimeout)
        assert local_err == remote_err
        assert local_err[1] == "timeout"

    def test_cancelled_outcome_raises_cancelled(self):
        outcome = Outcome(name="x", outcome="cancelled", canonical_key="k")
        with pytest.raises(ClassificationCancelled) as info:
            outcome.require()
        assert info.value.code == "cancelled"


# ----------------------------------------------------------------------
# Search-time histograms (deadlines from data)
# ----------------------------------------------------------------------
class TestSearchTimeStats:
    def test_histogram_counts_and_quantiles(self):
        stats = SearchTimeStats()
        for ms in (0.5, 3.0, 3.5, 40.0, 400.0):
            stats.record(f"key-{ms}", ms / 1000.0)
        payload = stats.as_dict()
        assert payload["count"] == 5
        assert payload["min_ms"] == 0.5
        assert payload["max_ms"] == 400.0
        assert sum(bucket["count"] for bucket in payload["buckets"]) == 5
        # Conservative bucket-bound quantiles: p50 covers the 3.5 ms sample.
        assert payload["p50_ms"] == 5.0
        assert payload["p99_ms"] == 500.0
        assert stats.quantile_ms(0.2) == 1.0

    def test_slowest_leaderboard_is_bounded_and_sorted(self):
        stats = SearchTimeStats(slowest_kept=3)
        for index in range(10):
            stats.record(f"key-{index}", index / 1000.0)
        slowest = stats.as_dict()["slowest"]
        assert [entry["key"] for entry in slowest] == ["key-9", "key-8", "key-7"]

    def test_quantile_of_empty_histogram_is_none(self):
        stats = SearchTimeStats()
        assert stats.quantile_ms(0.99) is None
        assert stats.as_dict()["p99_ms"] is None

    def test_open_ended_bucket_reports_observed_max(self):
        stats = SearchTimeStats()
        stats.record("huge", 120.0)  # 120 s > the largest finite bound
        assert stats.quantile_ms(0.99) == 120_000.0

    def test_bucket_bounds_are_increasing(self):
        finite = [b for b in BUCKET_BOUNDS_MS if b != float("inf")]
        assert finite == sorted(finite)

    def test_scheduler_records_only_completed_searches(self):
        scheduler = ClassificationScheduler(backend=create_backend("inline", None))
        with scheduler:
            for form in distinct_forms(3):
                scheduler.submit(form).result()
            payload = scheduler.stats_payload()
        assert payload["search_times"]["count"] == 3
        assert payload["search_times"]["count"] == payload["completed"]
        assert len(payload["search_times"]["slowest"]) == 3

    def test_service_stats_frame_carries_search_times(self):
        with ThreadedService(backend="threads", workers=2) as (host, port):
            with connect(f"tcp://{host}:{port}") as session:
                session.classify(TWO_COLORING)
                stats = session.stats()
        search_times = stats["workers"]["search_times"]
        assert search_times["count"] == 1
        assert search_times["slowest"][0]["ms"] >= 0
        assert json.dumps(search_times)  # JSON-serializable end to end


# ----------------------------------------------------------------------
# Deadline-aware warm (wall-clock budgets)
# ----------------------------------------------------------------------
class TestWarmBudget:
    def test_budget_cancels_unfinished_sweep(self):
        easy = seeded_problems(4, labels=2)
        with connect("local://threads?workers=2") as session:
            summary = session.warm(
                problems=easy + [hard_problem(12)], budget=0.8
            )
        assert summary["waited"] is True
        assert summary["budget_seconds"] == 0.8
        assert summary["budget_exhausted"] is True
        assert summary["interrupted"] >= 1
        assert summary["within_budget"] >= 1  # the easy keys made it
        assert (
            summary["within_budget"] + summary["interrupted"] + summary["failed"]
            == summary["unique_keys"]
        )

    def test_sufficient_budget_completes_everything(self):
        with connect("local://threads?workers=2") as session:
            summary = session.warm(census={"labels": 2, "count": 10}, budget=60)
            stats = session.stats()
        assert summary["budget_exhausted"] is False
        assert summary["interrupted"] == 0
        assert summary["within_budget"] == summary["unique_keys"]
        assert stats["workers"]["cancelled"] == 0

    def test_budget_over_the_wire(self):
        with ThreadedService(backend="threads", workers=2) as (host, port):
            with connect(f"tcp://{host}:{port}") as session:
                summary = session.warm(
                    problems=[hard_problem(12)], budget=0.5
                )
                follow_up = session.warm(
                    census={"labels": 2, "count": 6}, budget=30
                )
        assert summary["budget_exhausted"] is True
        assert summary["interrupted"] == 1
        assert follow_up["within_budget"] == follow_up["unique_keys"]

    def test_interrupted_warm_does_not_poison_the_cache(self):
        with connect("local://threads?workers=2") as session:
            session.warm(problems=[hard_problem(12)], budget=0.3)
            stats = session.stats()
        assert stats["cache"]["entries"] == 0
        assert stats["workers"]["cancelled"] + stats["workers"]["timeouts"] >= 1


# ----------------------------------------------------------------------
# stdio endpoint (spawned subprocess service)
# ----------------------------------------------------------------------
class TestStdioEndpoint:
    @pytest.mark.slow
    def test_stdio_session_round_trip(self, tmp_path):
        cache_file = tmp_path / "stdio-cache.json"
        with connect(f"stdio:?cache={cache_file}") as session:
            outcome = session.classify(TWO_COLORING)
            assert outcome.ok and outcome.complexity == "n^Theta(1)"
            session.shutdown()
        assert cache_file.exists()


# ----------------------------------------------------------------------
# Remote submit + odds and ends
# ----------------------------------------------------------------------
class TestRemoteSubmit:
    def test_remote_submit_resolves_in_background(self):
        with ThreadedService(backend="threads", workers=2) as (host, port):
            with connect(f"tcp://{host}:{port}") as session:
                pendings = [session.submit(TWO_COLORING) for _ in range(3)]
                outcomes = [pending.result(timeout=60) for pending in pendings]
        assert all(o.ok for o in outcomes)
        assert len({o.canonical_key for o in outcomes}) == 1
        # Remote submissions cannot be detached through the session handle.
        assert pendings[0].cancel() is False

    def test_local_pending_cancel_detaches(self):
        with connect("local://threads?workers=1") as session:
            # Occupy the single worker so the second submission queues...
            blocker = session.submit(hard_problem(12), deadline=30)
            victim = session.submit(hard_problem(12))
            # ...then detach both; queued flights never dispatch.
            assert victim.cancel() is True
            assert blocker.cancel() in (True, False)

    def test_session_repr_shows_endpoint_and_state(self):
        session = connect("local://inline")
        assert "local://inline" in repr(session) and "open" in repr(session)
        session.close()
        assert "closed" in repr(session)
        session.close()  # idempotent

    def test_connection_refused_maps_to_transport_error(self):
        from repro.api import TransportError

        with pytest.raises(TransportError) as info:
            connect("tcp://127.0.0.1:1")  # nothing listens on port 1
        assert info.value.code == "connection-closed"

    def test_error_mapping_helpers(self):
        from repro.api.errors import from_interruption, from_service_error
        from repro.core.cancellation import SearchCancelled, SearchTimeout
        from repro.service.client import ServiceError

        timeout = from_interruption(SearchTimeout(key="k"))
        assert isinstance(timeout, ClassificationTimeout)
        assert str(timeout) == "timeout: search for k exceeded its deadline"
        cancelled = from_interruption(SearchCancelled(key=None))
        assert isinstance(cancelled, ClassificationCancelled)

        mapped = from_service_error(ServiceError("bad-request", "nope"))
        assert isinstance(mapped, RequestError)
        assert str(mapped) == "bad-request: nope"
        unknown = from_service_error(ServiceError("weird-code", "huh"))
        assert unknown.code == "weird-code"

    def test_bad_census_parameters_fail_identically(self):
        with connect("local://inline") as session:
            with pytest.raises(RequestError) as info:
                session.warm(census={"count": 0})
        assert "count >= 1" in str(info.value)
        with connect("local://inline") as session:
            with pytest.raises(RequestError):
                list(session.census(count=-1))


# ----------------------------------------------------------------------
# Review regressions: stream re-entrancy and wait-timeout semantics
# ----------------------------------------------------------------------
class TestStreamGuards:
    def test_nested_call_during_remote_stream_raises_not_hangs(self):
        with ThreadedService(backend="threads", workers=2) as (host, port):
            with connect(f"tcp://{host}:{port}") as session:
                stream = session.classify_many(seeded_problems(4, labels=2))
                first = next(stream)
                assert first.ok
                with pytest.raises(RequestError) as info:
                    session.stats()
                assert "streaming request" in str(info.value)
                # Exhausting the stream releases the connection again.
                rest = list(stream)
                assert len(rest) == 3
                assert session.stats()["batch"]["submitted"] == 4

    def test_wait_timeout_is_plain_timeouterror_on_both_endpoints(self):
        raised = {}
        with connect("local://threads?workers=2") as session:
            pending = session.submit(hard_problem(12), deadline=30)
            try:
                pending.result(timeout=0.05)
            except TimeoutError:
                raised["local"] = True
            finally:
                pending.cancel()
        with ThreadedService(backend="threads", workers=2) as (host, port):
            with connect(f"tcp://{host}:{port}") as session:
                pending = session.submit(hard_problem(12), deadline=2)
                try:
                    pending.result(timeout=0.05)
                except TimeoutError:
                    raised["remote"] = True
                pending.result(timeout=60)  # drains before shutdown
        assert raised == {"local": True, "remote": True}
