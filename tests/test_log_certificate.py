"""Tests for Algorithms 1 and 2 (Section 5): certificates for O(log n) solvability."""

import pytest

from repro.core import (
    LogCertificate,
    LogCertificateAbsence,
    find_log_certificate,
    has_log_certificate,
    remove_path_inflexible_configurations,
)
from repro.core.log_certificate import pruning_sequence
from repro.problems import (
    branch_two_coloring,
    figure2_combined_problem,
    maximal_independent_set,
    pi_k,
    three_coloring,
    two_coloring,
    unsolvable_problem,
)


class TestAlgorithm1:
    def test_three_coloring_unchanged(self):
        problem = three_coloring()
        assert remove_path_inflexible_configurations(problem).labels == problem.labels

    def test_two_coloring_emptied(self):
        pruned = remove_path_inflexible_configurations(two_coloring())
        assert pruned.is_empty()

    def test_figure2_removes_a_and_b(self):
        pruned = remove_path_inflexible_configurations(figure2_combined_problem())
        assert pruned.labels == frozenset({"1", "2"})


class TestAlgorithm2:
    def test_branch_two_coloring_has_certificate(self):
        outcome = find_log_certificate(branch_two_coloring())
        assert isinstance(outcome, LogCertificate)
        assert outcome.labels == frozenset({"1", "2"})
        assert outcome.validate() == []

    def test_figure2_certificate_matches_paper(self):
        # Figure 2: the certificate problem Π_pf uses only the labels {1, 2}.
        outcome = find_log_certificate(figure2_combined_problem())
        assert isinstance(outcome, LogCertificate)
        assert outcome.labels == frozenset({"1", "2"})
        assert outcome.pruning_sets == (frozenset({"a", "b"}),)
        assert outcome.iterations == 1

    def test_two_coloring_has_no_certificate(self):
        outcome = find_log_certificate(two_coloring())
        assert isinstance(outcome, LogCertificateAbsence)
        assert outcome.iterations == 1
        assert outcome.lower_bound_exponent == 1

    def test_pi_k_prunes_in_exactly_k_iterations(self):
        # Lemma 8.2: Algorithm 2 takes exactly k iterations on Π_k.
        for k in (1, 2, 3):
            outcome = find_log_certificate(pi_k(k))
            assert isinstance(outcome, LogCertificateAbsence)
            assert outcome.iterations == k
            assert outcome.lower_bound_exponent == k

    def test_pi_k_pruning_sets_structure(self):
        outcome = find_log_certificate(pi_k(2))
        assert outcome.pruning_sets[0] == frozenset({"a1", "b1"})
        assert outcome.pruning_sets[1] == frozenset({"x1", "a2", "b2"})

    def test_mis_and_coloring_have_certificates(self):
        assert has_log_certificate(maximal_independent_set())
        assert has_log_certificate(three_coloring())
        assert not has_log_certificate(two_coloring())

    def test_certificate_configurations_subset_of_problem(self):
        outcome = find_log_certificate(maximal_independent_set())
        assert isinstance(outcome, LogCertificate)
        assert outcome.certificate_problem.configurations <= maximal_independent_set().configurations

    def test_rake_compress_parameter_positive(self):
        outcome = find_log_certificate(branch_two_coloring())
        assert outcome.rake_compress_parameter() >= 2

    def test_unsolvable_problem_has_no_certificate(self):
        outcome = find_log_certificate(unsolvable_problem())
        assert isinstance(outcome, LogCertificateAbsence)


class TestPruningSequence:
    def test_sequence_is_decreasing(self):
        problems, removed = pruning_sequence(pi_k(3))
        sizes = [p.num_labels for p in problems]
        assert sizes == sorted(sizes, reverse=True)
        assert sum(len(s) for s in removed) == pi_k(3).num_labels

    def test_removed_sets_partition_alphabet_when_emptied(self):
        problems, removed = pruning_sequence(two_coloring())
        assert problems[-1].is_empty()
        union = frozenset().union(*removed)
        assert union == two_coloring().labels

    def test_fixed_point_reached(self):
        problems, _ = pruning_sequence(maximal_independent_set())
        fixed = problems[-1]
        assert remove_path_inflexible_configurations(fixed).labels == fixed.labels
