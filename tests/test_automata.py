"""Unit tests for the automaton substrate (Definitions 4.7–4.9, 4.12)."""

import pytest

from repro.automata import (
    PathAutomaton,
    automaton_of,
    component_period,
    is_path_flexible_problem,
    label_flexibilities,
    minimal_absorbing_subgraph,
    path_flexible_labels,
    path_inflexible_labels,
    sink_components,
    strongly_connected_components,
)
from repro.automata.scc import component_has_edge, condensation, is_strongly_connected, reachable_from
from repro.problems import (
    branch_two_coloring,
    figure2_combined_problem,
    maximal_independent_set,
    three_coloring,
    two_coloring,
)


class TestSCC:
    def test_single_cycle(self):
        graph = {"a": ["b"], "b": ["c"], "c": ["a"]}
        components = strongly_connected_components(graph)
        assert len(components) == 1
        assert components[0] == frozenset({"a", "b", "c"})

    def test_dag(self):
        graph = {"a": ["b"], "b": ["c"], "c": []}
        components = strongly_connected_components(graph)
        assert len(components) == 3

    def test_two_components(self):
        graph = {"a": ["b"], "b": ["a", "c"], "c": ["d"], "d": ["c"]}
        components = {frozenset(c) for c in strongly_connected_components(graph)}
        assert frozenset({"a", "b"}) in components
        assert frozenset({"c", "d"}) in components

    def test_condensation_edges(self):
        graph = {"a": ["b"], "b": ["a", "c"], "c": ["d"], "d": ["c"]}
        components, dag = condensation(graph)
        index_of = {component: i for i, component in enumerate(components)}
        source = index_of[frozenset({"a", "b"})]
        target = index_of[frozenset({"c", "d"})]
        assert target in dag[source]

    def test_sink_components(self):
        graph = {"a": ["b"], "b": ["a", "c"], "c": ["d"], "d": ["c"]}
        sinks = sink_components(graph)
        assert sinks == [frozenset({"c", "d"})]

    def test_minimal_absorbing_subgraph_deterministic(self):
        graph = {"a": [], "b": []}
        assert minimal_absorbing_subgraph(graph) == frozenset({"a"})

    def test_component_period_of_two_cycle(self):
        graph = {"a": ["b"], "b": ["a"]}
        assert component_period(graph, frozenset({"a", "b"})) == 2

    def test_component_period_with_self_loop(self):
        graph = {"a": ["b", "a"], "b": ["a"]}
        assert component_period(graph, frozenset({"a", "b"})) == 1

    def test_component_period_trivial(self):
        graph = {"a": ["b"], "b": []}
        assert component_period(graph, frozenset({"a"})) == 0
        assert not component_has_edge(graph, frozenset({"a"}))

    def test_is_strongly_connected(self):
        assert is_strongly_connected({"a": ["b"], "b": ["a"]})
        assert not is_strongly_connected({"a": ["b"], "b": []})

    def test_reachable_from(self):
        graph = {"a": ["b"], "b": ["c"], "c": [], "d": []}
        assert reachable_from(graph, ["a"]) == frozenset({"a", "b", "c"})


class TestPathAutomaton:
    def test_three_coloring_automaton_structure(self):
        automaton = automaton_of(three_coloring())
        assert automaton.states == frozenset({"1", "2", "3"})
        assert automaton.successors("1") == frozenset({"2", "3"})
        assert automaton.num_edges() == 6
        assert automaton.is_strongly_connected()

    def test_flexibility_of_three_coloring(self):
        automaton = automaton_of(three_coloring())
        for state in "123":
            assert automaton.is_flexible(state)
            assert automaton.flexibility(state) == 2

    def test_two_coloring_is_inflexible(self):
        automaton = automaton_of(two_coloring())
        assert not automaton.is_flexible("1")
        assert not automaton.is_flexible("2")
        assert path_flexible_labels(two_coloring()) == frozenset()

    def test_branch_two_coloring_is_flexible(self):
        flexibilities = label_flexibilities(branch_two_coloring())
        assert flexibilities["1"] is not None
        assert flexibilities["2"] is not None

    def test_figure2_inflexible_labels(self):
        # In the combined problem of Figure 2, labels a and b are path-inflexible
        # while 1 and 2 are path-flexible.
        assert path_inflexible_labels(figure2_combined_problem()) == frozenset({"a", "b"})

    def test_mis_automaton_flexible(self):
        problem = maximal_independent_set()
        assert path_flexible_labels(problem) == frozenset({"1", "a", "b"})

    def test_returning_walk_lengths(self):
        automaton = automaton_of(branch_two_coloring())
        lengths = automaton.returning_walk_lengths("1", 6)
        assert 1 in lengths  # 1 -> 1 self-loop via configuration 1 : 1 2
        assert 2 in lengths  # 1 -> 2 -> 1

    def test_find_walk_exact_length(self):
        automaton = automaton_of(three_coloring())
        for length in range(2, 8):
            walk = automaton.find_walk("1", "2", length)
            assert walk is not None
            assert len(walk) == length + 1
            assert walk[0] == "1" and walk[-1] == "2"
            for a, b in zip(walk, walk[1:]):
                assert b in automaton.successors(a)

    def test_find_walk_impossible(self):
        automaton = automaton_of(two_coloring())
        assert automaton.find_walk("1", "1", 3) is None

    def test_has_walk_consistent_with_find_walk(self):
        automaton = automaton_of(maximal_independent_set())
        for length in range(1, 6):
            for source in automaton.states:
                for target in automaton.states:
                    assert automaton.has_walk(source, target, length) == (
                        automaton.find_walk(source, target, length) is not None
                    )

    def test_shortest_walk_length(self):
        automaton = automaton_of(maximal_independent_set())
        assert automaton.shortest_walk_length("1", "1") == 0
        assert automaton.shortest_walk_length("a", "1") == 2  # a -> b -> 1

    def test_restricted_automaton(self):
        automaton = automaton_of(three_coloring()).restricted_to({"1", "2"})
        assert automaton.states == frozenset({"1", "2"})
        assert automaton.successors("1") == frozenset({"2"})

    def test_minimal_absorbing_states(self):
        automaton = automaton_of(three_coloring())
        assert automaton.minimal_absorbing_states() == frozenset({"1", "2", "3"})

    def test_unknown_transition_rejected(self):
        with pytest.raises(ValueError):
            PathAutomaton({"a"}, [("a", "z")])

    def test_is_path_flexible_problem(self):
        assert is_path_flexible_problem(three_coloring())
        assert not is_path_flexible_problem(two_coloring())
        assert not is_path_flexible_problem(figure2_combined_problem())

    def test_universal_walk_threshold(self):
        automaton = automaton_of(three_coloring())
        threshold = automaton.universal_walk_threshold()
        for length in range(threshold, threshold + 4):
            for source in automaton.states:
                for target in automaton.states:
                    assert automaton.has_walk(source, target, length)
