"""Differential endpoint-parity fuzz tests driven by loadgen workloads.

The API contract says a ``ClassificationSession`` behaves identically no
matter what sits behind the URL.  :mod:`tests.test_api` spot-checks that on
small fixed batches; this suite turns it into a *differential fuzz pass*:
the same seeded loadgen request stream is replayed through
``local://inline``, ``local://threads``, and ``tcp://`` (a real socket
against a :class:`~repro.service.server.ThreadedService`), and every
resulting :class:`~repro.api.Outcome` must match field by field.  A second
pass fuzzes the *error* surface the same way — seeded corruptions of valid
problem notation and invalid request parameters must raise the same
exception type, machine code, and message on every endpoint.

These run in the default lane (seconds, not minutes): streams are short,
pools are small, and every problem classifies in milliseconds.
"""

import random

import pytest

from repro.api import SessionError, connect
from repro.core import format_problem
from repro.loadgen import WorkloadSpec
from repro.service.server import ThreadedService

PARITY_SEEDS = (11, 23, 37)
"""The seeded streams every endpoint must agree on (>= 3 per the issue)."""


def _spec(seed):
    """A short duplicate-heavy zipf stream: ~30 requests over 10 orbits.

    No deadlines and no adversarial injection — every outcome must then be
    deterministic (``ok`` with a decided class), so endpoints can be compared
    exactly instead of modulo timing.
    """
    return WorkloadSpec(
        name="zipf", seed=seed, duration=1.5, rate=20, pool_size=10, zipf_s=1.2
    )


def _parity_fields(outcome):
    """The Outcome fields that must be identical on every endpoint.

    Same convention as tests/test_api.py: ``from_cache`` and ``elapsed_ms``
    legitimately differ (separate caches, separate clocks); everything else
    must match exactly.
    """
    payload = outcome.as_dict()
    return {
        key: payload[key]
        for key in ("name", "outcome", "complexity", "details", "canonical_key", "result")
    }


def _drive(session, plan):
    """Replay a plan the way the load driver does: submit all, then collect."""
    pendings = [
        session.submit(request.problem, priority=request.priority)
        for request in plan
    ]
    return [_parity_fields(pending.result(timeout=60)) for pending in pendings]


# ----------------------------------------------------------------------
# Outcome parity
# ----------------------------------------------------------------------
class TestOutcomeParity:
    @pytest.mark.parametrize("seed", PARITY_SEEDS)
    def test_same_stream_same_outcomes_on_every_endpoint(self, seed):
        plan = _spec(seed).plan()
        assert len(plan) > len({request.key for request in plan})  # duplicates

        with connect("local://inline") as session:
            inline = _drive(session, plan)
        with connect("local://threads?workers=2") as session:
            threads = _drive(session, plan)
        with ThreadedService(backend="threads", workers=2) as (host, port):
            with connect(f"tcp://{host}:{port}") as session:
                remote = _drive(session, plan)

        assert len(inline) == len(threads) == len(remote) == len(plan)
        for index, (a, b, c) in enumerate(zip(inline, threads, remote)):
            assert a == b, f"inline vs threads diverged at request {index}"
            assert a == c, f"inline vs tcp diverged at request {index}"
        # Sanity: the stream really was decided everywhere, not all-timeout.
        assert all(fields["outcome"] == "ok" for fields in inline)

    def test_duplicates_resolve_to_identical_outcomes_within_a_stream(self):
        """Within one endpoint's run, same key => same classification."""
        plan = _spec(PARITY_SEEDS[0]).plan()
        with connect("local://threads?workers=2") as session:
            outcomes = _drive(session, plan)
        by_key = {}
        for request, fields in zip(plan, outcomes):
            comparable = {k: v for k, v in fields.items() if k != "name"}
            if request.key in by_key:
                assert by_key[request.key] == comparable, request.key
            else:
                by_key[request.key] = comparable


# ----------------------------------------------------------------------
# Error parity
# ----------------------------------------------------------------------
def _corrupt(notation, rng):
    """One seeded corruption of valid problem notation (never a valid form)."""
    mutation = rng.randrange(5)
    if mutation == 0:
        # Drop the last child of the first configuration: arity mismatch
        # (the parser accepts ":"-less lines, so token count is the lever).
        lines = notation.splitlines()
        lines[0] = lines[0].rsplit(" ", 1)[0]
        return "\n".join(lines)
    if mutation == 1:
        return notation + " ; 9 :"  # configuration with no children
    if mutation == 2:
        return notation + " ; 9 : 9"  # arity mismatch (delta=2 grammar)
    if mutation == 3:
        return ""  # empty spec
    return "? " + notation  # leading junk token


def _error_signature(fn):
    """What happened: error (type, code, message) or success fields."""
    try:
        outcome = fn()
    except SessionError as error:
        return (type(error).__name__, error.code, str(error))
    return ("ok", outcome.complexity, outcome.canonical_key)


class TestErrorCodeParity:
    @pytest.mark.parametrize("seed", PARITY_SEEDS)
    def test_corrupted_problems_fail_identically_everywhere(self, seed):
        rng = random.Random(seed)
        pool = _spec(seed).pool()
        bad_specs = [
            _corrupt(format_problem(problem), rng) for _, problem in pool[:5]
        ]
        bad_specs.append("1 : 2 2 ; 2 : 1")  # the classic arity mismatch

        signatures = {}
        with connect("local://inline") as session:
            signatures["inline"] = [
                _error_signature(lambda s=s: session.classify(s)) for s in bad_specs
            ]
        with connect("local://threads?workers=2") as session:
            signatures["threads"] = [
                _error_signature(lambda s=s: session.classify(s)) for s in bad_specs
            ]
        with ThreadedService(backend="threads", workers=2) as (host, port):
            with connect(f"tcp://{host}:{port}") as session:
                signatures["tcp"] = [
                    _error_signature(lambda s=s: session.classify(s))
                    for s in bad_specs
                ]

        assert signatures["inline"] == signatures["threads"] == signatures["tcp"]
        # Every corruption really was rejected, with a machine-readable code.
        for signature in signatures["inline"]:
            assert signature[0] != "ok"
            assert signature[1] == "bad-problem"

    def test_bad_request_parameters_fail_identically_everywhere(self):
        plan = _spec(PARITY_SEEDS[0]).plan()
        problem = plan[0].problem
        calls = [
            lambda s: s.classify(problem, priority="urgent"),
            lambda s: s.classify(problem, deadline=-1),
        ]

        collected = []
        for call in calls:
            row = []
            with connect("local://inline") as session:
                row.append(_error_signature(lambda: call(session)))
            with connect("local://threads?workers=2") as session:
                row.append(_error_signature(lambda: call(session)))
            with ThreadedService(backend="threads", workers=2) as (host, port):
                with connect(f"tcp://{host}:{port}") as session:
                    row.append(_error_signature(lambda: call(session)))
            collected.append(row)

        for row in collected:
            assert row[0] == row[1] == row[2]
            assert row[0][0] != "ok"
