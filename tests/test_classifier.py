"""Golden tests for the full classifier on the paper's sample problems (Table 1 / Sections 1.2-1.4, 8)."""

import pytest

from repro.core import ComplexityClass, classify, classify_with_certificates, complexity_of
from repro.problems import (
    branch_two_coloring,
    catalog,
    coloring,
    figure2_combined_problem,
    maximal_independent_set,
    pi_k,
    three_coloring,
    trivial_problem,
    two_coloring,
    unconstrained_problem,
    unsolvable_problem,
)


class TestCatalogGoldenValues:
    @pytest.mark.parametrize("name", sorted(catalog().keys()))
    def test_catalog_problem_classified_correctly(self, name):
        problem, expected = catalog()[name]
        assert classify(problem).complexity == expected

    def test_three_coloring_is_logstar(self):
        assert complexity_of(three_coloring()) == ComplexityClass.LOGSTAR

    def test_mis_is_constant_but_not_zero_rounds(self):
        result = classify(maximal_independent_set())
        assert result.complexity == ComplexityClass.CONSTANT
        assert not result.zero_round_solvable

    def test_trivial_problem_is_zero_round(self):
        result = classify(trivial_problem())
        assert result.complexity == ComplexityClass.CONSTANT
        assert result.zero_round_solvable

    def test_two_coloring_is_global(self):
        result = classify(two_coloring())
        assert result.complexity == ComplexityClass.POLYNOMIAL
        assert result.polynomial_exponent_bound == 1

    def test_branch_two_coloring_is_log(self):
        assert complexity_of(branch_two_coloring()) == ComplexityClass.LOG

    def test_figure2_is_log(self):
        assert complexity_of(figure2_combined_problem()) == ComplexityClass.LOG

    def test_pi_k_lower_bound_exponent(self):
        for k in (1, 2, 3):
            result = classify(pi_k(k))
            assert result.complexity == ComplexityClass.POLYNOMIAL
            assert result.polynomial_exponent_bound == k

    def test_unsolvable(self):
        assert complexity_of(unsolvable_problem()) == ComplexityClass.UNSOLVABLE


class TestClassificationArtifacts:
    def test_mis_artifacts_contain_all_certificates(self):
        artifacts = classify_with_certificates(maximal_independent_set())
        assert artifacts.complexity == ComplexityClass.CONSTANT
        assert artifacts.log_certificate is not None
        assert artifacts.logstar_certificate is not None
        assert artifacts.constant_certificate is not None
        assert artifacts.constant_certificate.validate() == []
        assert artifacts.elapsed_seconds >= 0.0

    def test_coloring_artifacts(self):
        artifacts = classify_with_certificates(three_coloring())
        assert artifacts.logstar_certificate is not None
        assert artifacts.logstar_certificate.validate() == []
        assert artifacts.constant_certificate is None

    def test_log_problem_artifacts(self):
        artifacts = classify_with_certificates(branch_two_coloring())
        assert artifacts.log_certificate is not None
        assert artifacts.logstar_certificate is None

    def test_result_describe_mentions_class(self):
        result = classify(three_coloring())
        assert "log*" in result.describe()

    def test_model_robustness_accessors(self):
        result = classify(three_coloring())
        assert result.randomized_complexity() == result.complexity
        assert result.congest_complexity() == result.complexity


class TestComplexityOrdering:
    def test_order_is_total(self):
        assert ComplexityClass.CONSTANT < ComplexityClass.LOGSTAR < ComplexityClass.LOG
        assert ComplexityClass.LOG < ComplexityClass.POLYNOMIAL < ComplexityClass.UNSOLVABLE

    def test_class_hierarchy_consistency_on_catalog(self):
        """If a problem is O(1) it must also have log* and log certificates, etc."""
        for name, (problem, expected) in catalog().items():
            artifacts = classify_with_certificates(problem)
            if artifacts.complexity == ComplexityClass.CONSTANT:
                assert artifacts.log_certificate is not None
                assert artifacts.logstar_certificate is not None
            if artifacts.complexity == ComplexityClass.LOGSTAR:
                assert artifacts.log_certificate is not None
                assert artifacts.constant_certificate is None
            if artifacts.complexity == ComplexityClass.LOG:
                assert artifacts.logstar_certificate is None

    def test_larger_palette_colorings_are_logstar(self):
        for colors in (3, 4, 5):
            assert complexity_of(coloring(colors)) == ComplexityClass.LOGSTAR

    def test_coloring_with_delta_three(self):
        assert complexity_of(coloring(3, delta=3)) == ComplexityClass.LOGSTAR
        assert complexity_of(coloring(2, delta=3)) == ComplexityClass.POLYNOMIAL
