"""Seeded problem pools shared by the fuzz, parity, and loadgen suites.

The generation itself lives in :mod:`repro.problems.pools` so the
load-generation harness (``src/repro/loadgen``) can draw from the very same
pools the test suites exercise; this module re-exports it under the name
the tests have always imported.  One generator, many consumers: the
scheduler fuzz harness (``test_scheduler_fuzz.py``) interleaves operations
over these pools, the session parity tests (``test_api.py``) classify the
same pools through every endpoint kind, and the loadgen differential tests
(``test_loadgen_parity.py``) replay seeded workload streams built on them.
"""

from repro.problems.pools import distinct_forms, seeded_problems

__all__ = ["distinct_forms", "seeded_problems"]
