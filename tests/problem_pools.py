"""Seeded problem pools shared by the fuzz harness and the facade tests.

One generator, two consumers: the scheduler fuzz harness
(``test_scheduler_fuzz.py``) interleaves operations over these pools, and
the session parity tests (``test_api.py``) classify the same pools through
every endpoint kind.  Keeping the generation here guarantees both suites
exercise the same distribution of canonical keys.
"""

from repro.engine import canonical_form
from repro.problems.random_problems import random_problem


def distinct_forms(count, labels=3, density=0.3):
    """``count`` canonical forms with pairwise-distinct keys (deterministic).

    Seeds are consumed in order starting at 0, skipping draws whose orbit
    was already produced, so the pool is stable across runs and machines.
    """
    forms, seen, seed = [], set(), 0
    while len(forms) < count:
        form = canonical_form(random_problem(labels, density=density, seed=seed))
        if form.key not in seen:
            seen.add(form.key)
            forms.append(form)
        seed += 1
    return forms


def seeded_problems(count, labels=2, density=0.5, seed=0):
    """A plain seeded problem list (duplicates allowed), census-style draws.

    Matches the ``seed + index`` scheme of the census generators, so a pool
    built here equals the problems a census with the same parameters
    classifies.
    """
    return [
        random_problem(labels, density=density, seed=seed + index)
        for index in range(count)
    ]
