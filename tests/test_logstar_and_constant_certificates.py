"""Tests for Algorithms 3–5 (Sections 6 and 7): uniform and constant certificates."""

import pytest

from repro.core import (
    build_constant_certificate,
    build_uniform_certificate,
    find_certificate_builder,
    find_constant_certificate_builder,
    find_unrestricted_certificate,
    has_constant_certificate,
    has_logstar_certificate,
)
from repro.core.certificates import CertificateError
from repro.core.logstar_certificate import assign_children_to_sets, candidate_label_subsets
from repro.core.configuration import Configuration
from repro.problems import (
    branch_two_coloring,
    figure2_combined_problem,
    maximal_independent_set,
    three_coloring,
    trivial_problem,
    two_coloring,
    unconstrained_problem,
)


class TestChildAssignment:
    def test_assignment_found(self):
        config = Configuration("1", ("2", "3"))
        sets = [frozenset({"3"}), frozenset({"2", "9"})]
        assert assign_children_to_sets(config, sets) == ("3", "2")

    def test_assignment_respects_multiplicity(self):
        config = Configuration("1", ("2", "2"))
        sets = [frozenset({"2"}), frozenset({"3"})]
        assert assign_children_to_sets(config, sets) is None

    def test_assignment_impossible(self):
        config = Configuration("1", ("2", "3"))
        sets = [frozenset({"2"}), frozenset({"2"})]
        assert assign_children_to_sets(config, sets) is None


class TestAlgorithm3:
    def test_three_coloring_full_alphabet_builder(self):
        builder = find_unrestricted_certificate(three_coloring())
        assert builder is not None
        assert builder.label_set == frozenset({"1", "2", "3"})

    def test_branch_two_coloring_has_no_builder(self):
        assert find_unrestricted_certificate(branch_two_coloring()) is None

    def test_two_coloring_has_no_builder(self):
        assert find_unrestricted_certificate(two_coloring()) is None

    def test_mis_builder_with_special_leaf(self):
        builder = find_unrestricted_certificate(maximal_independent_set(), special_label="b")
        assert builder is not None
        assert builder.special_label == "b"


class TestAlgorithm4And5:
    def test_logstar_certificates_exist(self):
        assert has_logstar_certificate(three_coloring())
        assert has_logstar_certificate(maximal_independent_set())
        assert has_logstar_certificate(unconstrained_problem())

    def test_logstar_certificates_absent(self):
        assert not has_logstar_certificate(branch_two_coloring())
        assert not has_logstar_certificate(two_coloring())
        assert not has_logstar_certificate(figure2_combined_problem())

    def test_constant_certificates(self):
        assert has_constant_certificate(maximal_independent_set())
        assert has_constant_certificate(trivial_problem())
        assert not has_constant_certificate(three_coloring())
        assert not has_constant_certificate(branch_two_coloring())

    def test_candidate_subsets_are_within_fixed_point(self):
        problem = maximal_independent_set()
        fixed_point = problem.infinite_continuation_labels()
        for subset in candidate_label_subsets(problem):
            assert subset <= fixed_point


class TestUniformCertificateConstruction:
    def test_three_coloring_certificate_valid(self):
        builder = find_certificate_builder(three_coloring())
        certificate = build_uniform_certificate(builder)
        assert certificate.validate() == []
        assert certificate.depth >= 1
        # One tree per certificate label, each rooted at that label (Definition 6.1).
        assert set(certificate.trees.keys()) == set(certificate.labels)
        for label, tree in certificate.trees.items():
            assert tree.label == label

    def test_three_coloring_certificate_leaf_layers_identical(self):
        builder = find_certificate_builder(three_coloring())
        certificate = build_uniform_certificate(builder)
        leaves = {tree.leaf_labels() for tree in certificate.trees.values()}
        assert len(leaves) == 1

    def test_coprime_certificate_derived_from_uniform(self):
        builder = find_certificate_builder(three_coloring())
        certificate = build_uniform_certificate(builder)
        coprime = certificate.to_coprime()
        assert coprime.validate() == []
        assert coprime.depth_pair == (certificate.depth, certificate.depth + 1)

    def test_trivial_problem_certificate(self):
        builder = find_certificate_builder(trivial_problem())
        certificate = build_uniform_certificate(builder)
        assert certificate.validate() == []
        assert certificate.depth == 1

    def test_unconstrained_problem_certificate(self):
        builder = find_certificate_builder(unconstrained_problem(3))
        certificate = build_uniform_certificate(builder)
        assert certificate.validate() == []


class TestConstantCertificateConstruction:
    def test_mis_constant_certificate_matches_figure_8(self):
        outcome = find_constant_certificate_builder(maximal_independent_set())
        assert outcome is not None
        builder, special = outcome
        certificate = build_constant_certificate(builder, special)
        assert certificate.validate() == []
        # The special configuration is (b : b 1) and b occurs at a certificate leaf.
        assert certificate.special_configuration == Configuration("b", ("1", "b"))
        assert certificate.special_label == "b"
        assert "b" in certificate.uniform.leaf_labels()

    def test_certificate_trees_use_allowed_configurations_only(self):
        outcome = find_constant_certificate_builder(maximal_independent_set())
        builder, special = outcome
        certificate = build_constant_certificate(builder, special)
        problem = maximal_independent_set()
        for tree in certificate.uniform.trees.values():
            for config in tree.iter_internal_configurations():
                assert config in problem.configurations
