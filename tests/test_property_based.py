"""Property-based tests (hypothesis) for the core data structures and invariants."""

import random

from hypothesis import given, settings, strategies as st

from repro.core import Configuration, LCLProblem, classify, ComplexityClass
from repro.core.log_certificate import find_log_certificate, LogCertificate
from repro.core.parser import format_problem, parse_problem
from repro.automata import automaton_of
from repro.labeling import brute_force_solve, greedy_top_down_solve, is_valid_labeling
from repro.problems.random_problems import random_problem
from repro.trees import complete_tree, random_full_tree
from repro.distributed import three_color_tree, verify_proper_coloring, rake_compress_decomposition

# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------
labels_strategy = st.lists(
    st.sampled_from(["1", "2", "3", "a", "b"]), min_size=1, max_size=3, unique=True
)


@st.composite
def problems(draw, delta: int = 2):
    """Random small LCL problems (δ = 2, at most 3 labels)."""
    labels = draw(labels_strategy)
    universe = [
        (parent, tuple(sorted((first, second))))
        for parent in labels
        for first in labels
        for second in labels
        if first <= second
    ]
    subset = draw(st.lists(st.sampled_from(universe), min_size=0, max_size=len(universe), unique=True))
    return LCLProblem.create(delta=delta, configurations=subset, labels=labels)


@st.composite
def small_trees(draw):
    seed = draw(st.integers(min_value=0, max_value=10_000))
    internal = draw(st.integers(min_value=1, max_value=12))
    return random_full_tree(2, internal, seed=seed)


# ----------------------------------------------------------------------
# Configuration / problem invariants
# ----------------------------------------------------------------------
@given(st.text(alphabet="abc123", min_size=1, max_size=1), st.lists(st.sampled_from("abc123"), min_size=2, max_size=2))
def test_configuration_canonical_form_is_permutation_invariant(parent, children):
    assert Configuration(parent, tuple(children)) == Configuration(parent, tuple(reversed(children)))


@given(problems())
@settings(max_examples=60, deadline=None)
def test_restriction_never_adds_configurations(problem):
    for size in range(len(problem.labels) + 1):
        subset = sorted(problem.labels)[:size]
        restricted = problem.restrict(subset)
        assert restricted.configurations <= problem.configurations
        assert restricted.labels <= problem.labels


@given(problems())
@settings(max_examples=60, deadline=None)
def test_path_form_edges_match_configurations(problem):
    path = problem.path_form()
    assert path.delta == 1
    for config in path.configurations:
        parent, child = config.parent, config.children[0]
        assert any(
            c.parent == parent and child in c.children for c in problem.configurations
        )


@given(problems())
@settings(max_examples=40, deadline=None)
def test_parser_round_trip(problem):
    if problem.num_configurations == 0:
        return
    parsed = parse_problem(format_problem(problem), labels=problem.labels, delta=2)
    assert parsed.configurations == problem.configurations


# ----------------------------------------------------------------------
# Classifier invariants cross-checked with brute force
# ----------------------------------------------------------------------
@given(problems())
@settings(max_examples=40, deadline=None)
def test_solvable_problems_admit_labelings_of_deep_trees(problem):
    tree = complete_tree(2, 3)
    result = classify(problem)
    brute = brute_force_solve(problem, tree)
    if result.complexity is not ComplexityClass.UNSOLVABLE:
        assert brute is not None
        assert is_valid_labeling(problem, tree, brute)
    else:
        deep = complete_tree(2, len(problem.labels) + 1)
        assert brute_force_solve(problem, deep) is None


@given(problems())
@settings(max_examples=40, deadline=None)
def test_greedy_solver_agrees_with_solvability(problem):
    tree = complete_tree(2, 3)
    labeling = greedy_top_down_solve(problem, tree)
    if problem.is_solvable():
        assert labeling is not None and is_valid_labeling(problem, tree, labeling)
    else:
        assert labeling is None


@given(problems())
@settings(max_examples=30, deadline=None)
def test_log_certificate_is_always_a_valid_restriction(problem):
    outcome = find_log_certificate(problem)
    if isinstance(outcome, LogCertificate):
        assert outcome.validate() == []
        automaton = automaton_of(outcome.certificate_problem)
        assert automaton.is_strongly_connected()


@given(st.integers(min_value=2, max_value=4), st.floats(min_value=0.2, max_value=0.9), st.integers(0, 500))
@settings(max_examples=25, deadline=None)
def test_random_problem_classification_is_deterministic(num_labels, density, seed):
    problem = random_problem(num_labels, density=density, seed=seed)
    assert classify(problem).complexity == classify(problem).complexity


# ----------------------------------------------------------------------
# Tree and distributed-substrate invariants
# ----------------------------------------------------------------------
@given(small_trees())
@settings(max_examples=40, deadline=None)
def test_random_trees_are_full_binary(tree):
    assert tree.is_full_delta_ary(2)
    assert len(tree.leaves()) == len(tree.internal_nodes()) + 1


@given(small_trees(), st.integers(min_value=0, max_value=10_000))
@settings(max_examples=30, deadline=None)
def test_distributed_coloring_is_always_proper(tree, seed):
    colors, _rounds = three_color_tree(tree, tree.default_identifiers(seed=seed))
    assert verify_proper_coloring(tree, colors)


@given(small_trees(), st.integers(min_value=2, max_value=6))
@settings(max_examples=30, deadline=None)
def test_rake_compress_covers_tree(tree, p):
    decomposition = rake_compress_decomposition(tree, p)
    assert set(decomposition.layer.keys()) == set(tree.nodes())
    assert decomposition.num_layers >= 1
