"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


def test_classify_file(tmp_path, capsys):
    problem_file = tmp_path / "two_coloring.txt"
    problem_file.write_text("# proper 2-coloring\n1 : 2 2\n2 : 1 1\n")
    assert main(["classify", str(problem_file)]) == 0
    output = capsys.readouterr().out
    assert "n^Theta(1)" in output
    assert "Theta(n)" in output


def test_classify_catalog(capsys):
    assert main(["classify", "--catalog"]) == 0
    output = capsys.readouterr().out
    assert "UNEXPECTED" not in output
    assert "mis" in output


def test_classify_without_argument_fails(capsys):
    assert main(["classify"]) == 2
    assert "error" in capsys.readouterr().err


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])
