"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


def test_classify_file(tmp_path, capsys):
    problem_file = tmp_path / "two_coloring.txt"
    problem_file.write_text("# proper 2-coloring\n1 : 2 2\n2 : 1 1\n")
    assert main(["classify", str(problem_file)]) == 0
    output = capsys.readouterr().out
    assert "n^Theta(1)" in output
    assert "Theta(n)" in output


def test_classify_catalog(capsys):
    assert main(["classify", "--catalog"]) == 0
    output = capsys.readouterr().out
    assert "UNEXPECTED" not in output
    assert "mis" in output


def test_classify_without_argument_fails(capsys):
    assert main(["classify"]) == 2
    assert "error" in capsys.readouterr().err


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_classify_json_matches_plain_report(tmp_path, capsys):
    problem_file = tmp_path / "two_coloring.txt"
    problem_file.write_text("1 : 2 2\n2 : 1 1\n")

    assert main(["classify", str(problem_file)]) == 0
    plain = capsys.readouterr().out
    assert main(["classify", "--json", str(problem_file)]) == 0
    payload = json.loads(capsys.readouterr().out)

    assert payload["complexity"] == "n^Theta(1)"
    assert f"complexity: {payload['complexity']}" in plain
    assert payload["result"]["complexity"] == "POLYNOMIAL"
    assert payload["problem"]["labels"] == ["1", "2"]


def test_classify_catalog_json(capsys):
    assert main(["classify", "--catalog", "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert all(entry["ok"] for entry in payload)
    assert {entry["name"] for entry in payload} >= {"mis", "3-coloring"}


def test_classify_batch_file(tmp_path, capsys):
    batch_file = tmp_path / "many.txt"
    batch_file.write_text(
        "# name: two-coloring\n1 : 2 2\n2 : 1 1\n"
        "---\n"
        "# name: trivial\n1 : 1 1\n"
        "---\n"
        "1 : 2 2\n2 : 1 1\n"
    )
    assert main(["classify-batch", str(batch_file), "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)

    names = [item["name"] for item in payload["items"]]
    assert names == ["two-coloring", "trivial", "many.txt#3"]
    assert payload["items"][0]["complexity"] == "n^Theta(1)"
    assert payload["items"][1]["complexity"] == "O(1)"
    # The third problem is identical to the first: answered from the cache.
    assert payload["items"][2]["from_cache"] is True
    assert payload["stats"]["batch"]["submitted"] == 3
    assert payload["stats"]["batch"]["full_searches"] == 2


def test_classify_batch_directory(tmp_path, capsys):
    (tmp_path / "a.txt").write_text("1 : 2 2\n2 : 1 1\n")
    (tmp_path / "b.txt").write_text("1 : 1 1\n")
    assert main(["classify-batch", str(tmp_path), "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert len(payload["items"]) == 2
    assert payload["items"][0]["name"].startswith("a.txt")


def test_classify_batch_persistent_cache(tmp_path, capsys):
    batch_file = tmp_path / "many.txt"
    batch_file.write_text("1 : 2 2\n2 : 1 1\n---\n1 : 1 1\n")
    cache_file = tmp_path / "cache.json"

    assert main(["classify-batch", str(batch_file), "--json", "--cache", str(cache_file)]) == 0
    first = json.loads(capsys.readouterr().out)
    assert first["stats"]["batch"]["full_searches"] == 2
    assert cache_file.exists()

    assert main(["classify-batch", str(batch_file), "--json", "--cache", str(cache_file)]) == 0
    second = json.loads(capsys.readouterr().out)
    assert second["stats"]["batch"]["full_searches"] == 0
    assert [item["complexity"] for item in first["items"]] == [
        item["complexity"] for item in second["items"]
    ]


def test_census_json_round_trips(capsys):
    assert main(["census", "--labels", "2", "--count", "40", "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert sum(payload["counts"].values()) == 40
    assert payload["params"]["labels"] == 2
    assert payload["stats"]["batch"]["submitted"] == 40
    # Duplicate-heavy two-label space: canonical dedup must amortize work.
    assert payload["stats"]["batch"]["full_searches"] < 40


def test_census_plain_output(capsys):
    assert main(["census", "--labels", "2", "--count", "20"]) == 0
    output = capsys.readouterr().out
    assert "Random census" in output
    assert "full search(es)" in output


def test_cache_max_entries_bounds_the_cache_file(tmp_path, capsys):
    cache_file = tmp_path / "cache.json"
    assert (
        main(
            [
                "census",
                "--labels",
                "3",
                "--density",
                "0.25",
                "--count",
                "30",
                "--json",
                "--cache",
                "json:" + str(cache_file),
                "--cache-max-entries",
                "3",
            ]
        )
        == 0
    )
    payload = json.loads(capsys.readouterr().out)
    assert payload["stats"]["cache"]["evictions"] > 0
    on_disk = json.loads(cache_file.read_text())
    assert on_disk["schema"] == 2
    assert len(on_disk["entries"]) <= 3


def test_cache_stats_and_compact_subcommands(tmp_path, capsys):
    """`cache stats` / `cache compact` maintain a file without classifying."""
    batch_file = tmp_path / "many.txt"
    batch_file.write_text("1 : 2 2\n2 : 1 1\n---\n1 : 1 1\n---\n2 : 2 2\n")
    cache_file = tmp_path / "cache.json"
    # Pinned to json: the shrink assertion below is whole-file specific
    # (sqlite stores are page-granular and do not shrink monotonically).
    cache_url = "json:" + str(cache_file)
    assert main(["classify-batch", str(batch_file), "--cache", cache_url]) == 0
    capsys.readouterr()

    assert main(["cache", "stats", "--cache", cache_url, "--json"]) == 0
    stats = json.loads(capsys.readouterr().out)
    # "2 : 2 2" is a renaming of "1 : 1 1": two canonical orbits, not three.
    assert stats["entries"] == 2
    assert stats["file_bytes"] > 0
    bytes_before = stats["file_bytes"]

    assert (
        main(
            [
                "cache",
                "compact",
                "--cache",
                cache_url,
                "--cache-max-entries",
                "1",
                "--json",
            ]
        )
        == 0
    )
    report = json.loads(capsys.readouterr().out)
    assert report["entries"] == 1
    assert report["bytes_before"] == bytes_before
    assert report["bytes_after"] < bytes_before

    assert main(["cache", "stats", "--cache", cache_url]) == 0
    plain = capsys.readouterr().out
    assert "entries:  1" in plain


def test_cache_stats_missing_file_is_a_clean_error(tmp_path, capsys):
    assert main(["cache", "stats", "--cache", str(tmp_path / "nope.json")]) == 1
    assert "does not exist" in capsys.readouterr().err


def test_worker_backend_flags_agree_with_serial(capsys):
    """A threads-backend census tallies identically to the serial one."""
    base = ["census", "--labels", "2", "--count", "25", "--json"]
    assert main(base) == 0
    serial = json.loads(capsys.readouterr().out)
    assert main(base + ["--worker-backend", "threads", "--workers", "2"]) == 0
    threaded = json.loads(capsys.readouterr().out)
    assert threaded["counts"] == serial["counts"]
    assert threaded["stats"]["workers"]["backend"] == "threads"
    assert threaded["stats"]["workers"]["workers"] == 2
    assert serial["stats"]["workers"]["backend"] == "inline"


def test_serve_and_client_parser_wiring():
    parser = build_parser()
    serve_args = parser.parse_args(
        ["serve", "--stdio", "--cache", "c.json", "--cache-max-entries", "10"]
    )
    assert serve_args.stdio is True
    assert serve_args.cache_max_entries == 10
    assert serve_args.worker_backend is None
    assert serve_args.workers is None

    serve_args = parser.parse_args(
        ["serve", "--worker-backend", "processes", "--workers", "3"]
    )
    assert serve_args.worker_backend == "processes"
    assert serve_args.workers == 3

    batch_args = parser.parse_args(
        ["classify-batch", "problems/", "--worker-backend", "threads", "--workers", "2"]
    )
    assert batch_args.worker_backend == "threads"
    assert batch_args.workers == 2

    warm_args = parser.parse_args(
        [
            "client",
            "--connect",
            "localhost:8765",
            "warm",
            "--census",
            "--count",
            "50",
            "--wait",
        ]
    )
    assert warm_args.census is True
    assert warm_args.wait is True
    assert warm_args.count == 50

    with pytest.raises(SystemExit):
        parser.parse_args(["census", "--worker-backend", "gpu"])

    client_args = parser.parse_args(
        ["client", "--connect", "localhost:8765", "census", "--count", "5"]
    )
    assert client_args.connect == "localhost:8765"
    assert client_args.count == 5

    with pytest.raises(SystemExit):
        parser.parse_args(["client", "census"])  # --connect is required


def test_serve_and_client_over_tcp(tmp_path, capsys):
    """Full CLI round trip: an embedded service, driven via `main(["client", ...])`."""
    from repro.engine.cache import ClassificationCache
    from repro.service.server import ThreadedService

    cache_file = tmp_path / "cache.json"
    service = ThreadedService(cache=ClassificationCache(path=str(cache_file)))
    host, port = service.start()
    try:
        problem_file = tmp_path / "problem.txt"
        problem_file.write_text("1 : 2 2\n2 : 1 1\n")
        connect = f"{host}:{port}"

        assert main(["client", "--connect", connect, "classify", str(problem_file)]) == 0
        first = capsys.readouterr().out
        assert "n^Theta(1)" in first and "cached:     no" in first

        assert (
            main(["client", "--connect", connect, "classify", "--json", str(problem_file)])
            == 0
        )
        payload = json.loads(capsys.readouterr().out)
        assert payload["from_cache"] is True

        assert main(["client", "--connect", connect, "stats"]) == 0
        plain_stats = capsys.readouterr().out
        assert "1 entries" in plain_stats and "engine:" in plain_stats

        assert main(["client", "--connect", connect, "stats", "--json"]) == 0
        stats = json.loads(capsys.readouterr().out)
        assert stats["cache"]["entries"] == 1
        assert stats["workers"]["backend"] == "threads"

        assert (
            main(
                [
                    "client",
                    "--connect",
                    connect,
                    "warm",
                    "--census",
                    "--count",
                    "10",
                    "--wait",
                    "--json",
                ]
            )
            == 0
        )
        warm = json.loads(capsys.readouterr().out)
        assert warm["count"] == 10
        assert warm["waited"] is True

        assert (
            main(["client", "--connect", connect, "census", "--count", "10", "--json"])
            == 0
        )
        census = json.loads(capsys.readouterr().out)
        assert census["hit_rate"] == 1.0  # fully warmed above

        assert main(["client", "--connect", connect, "warm"]) == 2
        assert "provide a batch source" in capsys.readouterr().err

        assert main(["client", "--connect", connect, "shutdown"]) == 0
        assert "service shut down" in capsys.readouterr().out
    finally:
        service.stop()
    assert cache_file.exists()


# ----------------------------------------------------------------------
# Deadline / priority / cancel (PR 4)
# ----------------------------------------------------------------------
def _write_hard_problem(tmp_path):
    from repro.core.parser import format_problem
    from repro.problems import hard_problem

    path = tmp_path / "hard.txt"
    path.write_text(format_problem(hard_problem(12)) + "\n")
    return path


def test_scheduling_flags_parser_wiring():
    parser = build_parser()
    args = parser.parse_args(
        ["classify", "p.txt", "--deadline", "2.5", "--priority", "interactive"]
    )
    assert args.deadline == 2.5
    assert args.priority == "interactive"
    args = parser.parse_args(["census", "--deadline", "1", "--priority", "warm"])
    assert args.deadline == 1.0 and args.priority == "warm"
    args = parser.parse_args(
        ["classify-batch", "dir/", "--deadline", "0.5", "--priority", "batch"]
    )
    assert args.deadline == 0.5 and args.priority == "batch"
    args = parser.parse_args(
        ["client", "--connect", "h:1", "classify", "p.txt", "--deadline", "3"]
    )
    assert args.deadline == 3.0
    args = parser.parse_args(["client", "--connect", "h:1", "cancel", "42"])
    assert args.request_id == "42"
    with pytest.raises(SystemExit):
        parser.parse_args(["census", "--priority", "urgent"])


def test_classify_deadline_times_out_with_exit_124(tmp_path, capsys):
    path = _write_hard_problem(tmp_path)
    assert main(["classify", str(path), "--deadline", "0.2"]) == 124
    out = capsys.readouterr().out
    assert "timeout" in out


def test_classify_deadline_json_reports_outcome(tmp_path, capsys):
    path = _write_hard_problem(tmp_path)
    assert main(["classify", str(path), "--deadline", "0.2", "--json"]) == 124
    payload = json.loads(capsys.readouterr().out)
    assert payload["outcome"] == "timeout"
    assert payload["complexity"] is None


def test_classify_with_priority_but_no_deadline_still_classifies(tmp_path, capsys):
    problem_file = tmp_path / "p.txt"
    problem_file.write_text("1 : 2 2\n2 : 1 1\n")
    assert main(["classify", str(problem_file), "--priority", "interactive", "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["outcome"] == "ok"
    assert payload["complexity"] == "n^Theta(1)"


def test_classify_batch_deadline_marks_items(tmp_path, capsys):
    batch_file = tmp_path / "batch.txt"
    # One fast block plus the adversarial one: only the hard block times out.
    from repro.core.parser import format_problem
    from repro.problems import hard_problem

    batch_file.write_text(
        "# name: easy\n1 : 2 2\n2 : 1 1\n---\n# name: hard\n"
        + format_problem(hard_problem(12))
        + "\n"
    )
    assert main(["classify-batch", str(batch_file), "--deadline", "1.0", "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    outcomes = {item["name"]: item["outcome"] for item in payload["items"]}
    assert outcomes["easy"] == "ok"
    assert outcomes["hard"] == "timeout"
    assert payload["stats"]["workers"]["timeouts"] == 1


def test_census_deadline_tallies_timeouts(capsys):
    # An already-expired budget: every solvable draw reports `timeout`.
    assert main(
        ["census", "--labels", "2", "--count", "12", "--deadline", "0.000001", "--json"]
    ) == 0
    payload = json.loads(capsys.readouterr().out)
    counts = payload["counts"]
    assert sum(counts.values()) == 12
    assert counts.get("timeout", 0) > 0


def test_client_cancel_round_trip(capsys):
    """`client cancel` against a live service: unknown ids report not-found."""
    from repro.service.server import ThreadedService

    service = ThreadedService()
    host, port = service.start()
    try:
        connect = f"{host}:{port}"
        assert main(["client", "--connect", connect, "cancel", "123"]) == 1
        assert "not in flight" in capsys.readouterr().out
        assert main(["client", "--connect", connect, "cancel", "123", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload == {"request_id": 123, "found": False, "cancelled": 0}
        assert main(["client", "--connect", connect, "shutdown"]) == 0
        capsys.readouterr()
    finally:
        service.stop()


def test_client_classify_deadline_over_tcp(tmp_path, capsys):
    from repro.service.server import ThreadedService

    path = _write_hard_problem(tmp_path)
    service = ThreadedService(backend="threads", workers=2)
    host, port = service.start()
    try:
        connect = f"{host}:{port}"
        assert (
            main(
                ["client", "--connect", connect, "classify", str(path),
                 "--deadline", "0.25", "--json"]
            )
            == 124
        )
        payload = json.loads(capsys.readouterr().out)
        assert payload["outcome"] == "timeout"
        assert main(["client", "--connect", connect, "shutdown"]) == 0
        capsys.readouterr()
    finally:
        service.stop()


def test_classify_catalog_rejects_scheduling_flags(capsys):
    assert main(["classify", "--catalog", "--deadline", "1"]) == 2
    assert "--catalog" in capsys.readouterr().err
    assert main(["classify", "--catalog", "--priority", "interactive"]) == 2
    assert "--catalog" in capsys.readouterr().err


# ----------------------------------------------------------------------
# Session facade wiring (PR 5): warm subcommand, serve endpoints
# ----------------------------------------------------------------------
def test_warm_parser_wiring():
    parser = build_parser()
    args = parser.parse_args(
        ["warm", "--census", "--count", "30", "--budget", "5", "--cache", "c.json"]
    )
    assert args.census is True and args.count == 30
    assert args.budget == 5.0
    assert args.cache == "c.json"
    args = parser.parse_args(["serve", "tcp://0.0.0.0:9000"])
    assert args.endpoint == "tcp://0.0.0.0:9000"
    args = parser.parse_args(["serve"])
    assert args.endpoint is None
    args = parser.parse_args(
        ["client", "--connect", "h:1", "warm", "--census", "--budget", "2.5"]
    )
    assert args.budget == 2.5


def test_warm_subcommand_fills_cache_within_budget(tmp_path, capsys):
    cache_file = tmp_path / "warm.json"
    assert (
        main(
            [
                "warm",
                "--census",
                "--count",
                "20",
                "--budget",
                "60",
                "--cache",
                str(cache_file),
                "--worker-backend",
                "threads",
                "--workers",
                "2",
                "--json",
            ]
        )
        == 0
    )
    summary = json.loads(capsys.readouterr().out)
    assert summary["waited"] is True
    assert summary["budget_exhausted"] is False
    assert summary["within_budget"] == summary["unique_keys"]
    assert cache_file.exists()

    # A follow-up census against the warmed cache is answered from it.
    assert (
        main(["census", "--count", "20", "--cache", str(cache_file), "--json"]) == 0
    )
    payload = json.loads(capsys.readouterr().out)
    assert payload["stats"]["batch"]["full_searches"] == 0


def test_warm_subcommand_plain_output(tmp_path, capsys):
    batch_file = tmp_path / "many.txt"
    batch_file.write_text("1 : 2 2\n2 : 1 1\n---\n1 : 1 1\n")
    assert main(["warm", str(batch_file), "--wait"]) == 0
    out = capsys.readouterr().out
    assert "warm: 2 problem(s)" in out and "waited for" in out


def test_warm_subcommand_requires_workload(capsys):
    assert main(["warm"]) == 2
    assert "provide a batch source" in capsys.readouterr().err


def test_serve_endpoint_folds_into_settings():
    from repro.cli import _serve_settings

    parser = build_parser()
    args = _serve_settings(
        parser.parse_args(["serve", "tcp://0.0.0.0:9111?cache=/tmp/x.json"])
    )
    assert args.host == "0.0.0.0" and args.port == 9111
    assert args.cache == "/tmp/x.json"
    args = _serve_settings(parser.parse_args(["serve", "stdio:"]))
    assert args.stdio is True


def test_serve_rejects_local_endpoint(capsys):
    assert main(["serve", "local://inline"]) == 1
    assert "tcp:// or stdio:" in capsys.readouterr().err


def test_client_warm_budget_over_tcp(capsys):
    from repro.service.server import ThreadedService

    service = ThreadedService(backend="threads", workers=2)
    host, port = service.start()
    try:
        connect = f"{host}:{port}"
        assert (
            main(
                [
                    "client",
                    "--connect",
                    connect,
                    "warm",
                    "--census",
                    "--count",
                    "15",
                    "--budget",
                    "30",
                    "--json",
                ]
            )
            == 0
        )
        summary = json.loads(capsys.readouterr().out)
        assert summary["waited"] is True
        assert summary["within_budget"] == summary["unique_keys"]
        assert main(["client", "--connect", connect, "shutdown"]) == 0
        capsys.readouterr()
    finally:
        service.stop()


def test_client_stats_reports_search_times(tmp_path, capsys):
    from repro.service.server import ThreadedService

    service = ThreadedService(backend="threads", workers=2)
    host, port = service.start()
    try:
        connect = f"{host}:{port}"
        problem_file = tmp_path / "problem.txt"
        problem_file.write_text("1 : 2 2\n2 : 1 1\n")
        assert main(["client", "--connect", connect, "classify", str(problem_file)]) == 0
        capsys.readouterr()
        assert main(["client", "--connect", connect, "stats"]) == 0
        out = capsys.readouterr().out
        assert "searches: 1 completed" in out
        assert main(["client", "--connect", connect, "shutdown"]) == 0
        capsys.readouterr()
    finally:
        service.stop()
