"""Cancellation regressions for the bitmask kernel.

PR 4's guarantee — every exponential loop polls ``checkpoint()`` so
deadlines and cross-thread cancellation interrupt a search within a small
latency bound — must survive the kernel rewrite.  These tests run the same
scenarios the frozenset path is tested for (``tests/test_cancellation.py``)
explicitly against both kernels, plus the memo-scope property the kernel
adds: an interrupted classification caches nothing, so retrying a doomed
search stays doomed (and retrying with headroom still succeeds).
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.core import (
    CancelToken,
    SearchCancelled,
    SearchTimeout,
    cancel_scope,
    classify,
    kernel_override,
)
from repro.core.kernel import BITMASK, KERNELS, _scope
from repro.problems.adversarial import hard_problem


class TestKernelCheckpointLatency:
    @pytest.mark.parametrize("kernel", KERNELS)
    def test_deadline_mid_sweep_raises_search_timeout_quickly(self, kernel):
        """A minutes-long sweep aborts within the reference latency bound."""
        problem = hard_problem(12)
        start = time.monotonic()
        with kernel_override(kernel):
            with cancel_scope(CancelToken.with_budget(0.3)):
                with pytest.raises(SearchTimeout):
                    classify(problem)
        # Same generous CI margin as the frozenset-path test: the sweeps
        # checkpoint every subset and every δ-tuple, so an abort seconds
        # late means the kernel lost its polling hooks.
        assert time.monotonic() - start < 5.0

    @pytest.mark.parametrize("kernel", KERNELS)
    def test_cross_thread_cancel_interrupts_kernel_sweep(self, kernel):
        problem = hard_problem(12)
        token = CancelToken()
        outcome = []

        def search():
            try:
                with kernel_override(kernel):
                    with cancel_scope(token):
                        classify(problem)
                outcome.append("completed")
            except SearchCancelled:
                outcome.append("cancelled")

        thread = threading.Thread(target=search)
        thread.start()
        time.sleep(0.2)
        token.cancel()
        thread.join(timeout=30)
        assert not thread.is_alive()
        assert outcome == ["cancelled"]


class TestInterruptedSearchesCacheNothing:
    def test_repeated_deadline_classifications_all_time_out(self):
        """If an aborted sweep leaked memo state, the retry would finish
        instantly instead of blowing its budget again."""
        problem = hard_problem(9)  # ~2s kernel sweep: far over every budget
        with kernel_override(BITMASK):
            for _attempt in range(3):
                start = time.monotonic()
                with cancel_scope(CancelToken.with_budget(0.15)):
                    with pytest.raises(SearchTimeout):
                        classify(problem)
                assert time.monotonic() - start < 2.0

    def test_interrupt_then_success_then_interrupt(self):
        """A completed classification in between must not change the memo
        story either: scopes are per-call, dropped on return and unwind."""
        hard = hard_problem(9)
        easy = hard_problem(2)
        with kernel_override(BITMASK):
            with cancel_scope(CancelToken.with_budget(0.15)):
                with pytest.raises(SearchTimeout):
                    classify(hard)
            assert classify(easy).complexity.value == "Theta(log n)"
            with cancel_scope(CancelToken.with_budget(0.15)):
                with pytest.raises(SearchTimeout):
                    classify(hard)

    def test_scope_stack_is_empty_after_unwind(self):
        """The thread-local KernelState stack never leaks past an interrupt."""
        with kernel_override(BITMASK):
            with cancel_scope(CancelToken.with_budget(0.1)):
                with pytest.raises(SearchTimeout):
                    classify(hard_problem(9))
        assert getattr(_scope, "stack", []) == []

    def test_interrupted_search_does_not_poison_answers(self):
        """After an interrupt, an undeadlined classification still answers
        exactly (and correctly for the adversarial family)."""
        problem = hard_problem(4)
        with kernel_override(BITMASK):
            with cancel_scope(CancelToken.with_budget(0.0)):
                with pytest.raises(SearchTimeout):
                    classify(problem)
            assert classify(problem).complexity.value == "Theta(log n)"
