"""Tests for the parallel execution subsystem: backends + single-flight
scheduler, priority ordering, deadlines, cancellation, and slot accounting."""

import threading
import time

import pytest

from repro.core import SearchCancelled, SearchTimeout, checkpoint, classify
from repro.engine import BatchClassifier, ClassificationCache, canonical_form
from repro.problems import catalog
from repro.problems.pools import distinct_forms
from repro.problems.random_problems import random_problem
from repro.workers import (
    BACKEND_NAMES,
    JOB_CACHE_HIT,
    JOB_SCHEDULED,
    JOB_SHARED,
    PRIORITIES,
    ClassificationScheduler,
    InlineBackend,
    ProcessBackend,
    ThreadBackend,
    create_backend,
)


def _square(value):
    """Module-level so the process backend can pickle it."""
    return value * value


def _boom(_value):
    raise RuntimeError("boom")


# ----------------------------------------------------------------------
# Backends
# ----------------------------------------------------------------------
class TestBackends:
    def test_inline_resolves_synchronously(self):
        backend = InlineBackend()
        future = backend.submit(_square, 7)
        assert future.done()
        assert future.result() == 49

    def test_inline_captures_exceptions_in_the_future(self):
        future = InlineBackend().submit(_boom, 0)
        assert future.done()
        with pytest.raises(RuntimeError, match="boom"):
            future.result()

    def test_thread_backend_runs_tasks_concurrently(self):
        """Two mutually-waiting tasks only finish if they truly overlap."""
        first_running = threading.Event()
        second_running = threading.Event()

        def task_a():
            first_running.set()
            assert second_running.wait(timeout=10)
            return "a"

        def task_b():
            second_running.set()
            assert first_running.wait(timeout=10)
            return "b"

        with ThreadBackend(workers=2) as backend:
            futures = [backend.submit(task_a), backend.submit(task_b)]
            assert [future.result(timeout=10) for future in futures] == ["a", "b"]

    def test_process_backend_round_trip(self):
        with ProcessBackend(workers=2) as backend:
            futures = [backend.submit(_square, value) for value in range(5)]
            assert [future.result(timeout=60) for future in futures] == [
                0, 1, 4, 9, 16,
            ]

    def test_process_backend_propagates_task_errors(self):
        with ProcessBackend(workers=1) as backend:
            with pytest.raises(RuntimeError, match="boom"):
                backend.submit(_boom, 0).result(timeout=60)

    def test_create_backend_spellings(self):
        assert create_backend(None).name == "inline"
        assert create_backend(None, workers=1).name == "inline"
        # Asking for parallelism without naming a backend implies threads.
        implied = create_backend(None, workers=3)
        assert implied.name == "threads" and implied.workers == 3
        implied.close()
        for name in BACKEND_NAMES:
            backend = create_backend(name, workers=2)
            assert backend.name == name
            backend.close()

    def test_create_backend_rejects_unknown_names(self):
        with pytest.raises(ValueError, match="unknown worker backend"):
            create_backend("gpu")

    def test_invalid_worker_count_rejected(self):
        with pytest.raises(ValueError):
            ThreadBackend(workers=0)

    def test_probe_spawns_the_pool_eagerly(self):
        backend = ProcessBackend(workers=1)
        assert backend._executor is None  # lazy until probed
        backend.probe()
        assert backend._executor is not None or backend.degraded
        backend.close()
        InlineBackend().probe()  # a no-op everywhere else
        thread_backend = ThreadBackend(workers=1)
        thread_backend.probe()
        thread_backend.close()

    def test_process_backend_rejects_submits_after_close(self):
        backend = ProcessBackend(workers=1)
        assert backend.submit(_square, 2).result(timeout=60) == 4
        backend.close()
        with pytest.raises(RuntimeError, match="closed"):
            backend.submit(_square, 2)

    def test_synchronous_flag_marks_inline_execution(self):
        assert InlineBackend().synchronous is True
        thread_backend = ThreadBackend(workers=1)
        assert thread_backend.synchronous is False
        thread_backend.close()
        process_backend = ProcessBackend(workers=1)
        assert process_backend.synchronous is False  # flips only on degrade
        process_backend.close()

    def test_describe_reports_configuration(self):
        backend = ThreadBackend(workers=2)
        assert backend.describe() == {"backend": "threads", "workers": 2}
        backend.close()
        process_backend = ProcessBackend(workers=2)
        assert process_backend.describe()["degraded"] is False
        process_backend.close()


# ----------------------------------------------------------------------
# Single-flight scheduler (controlled fake search task)
# ----------------------------------------------------------------------
def _form(seed=0, labels=2):
    return canonical_form(random_problem(labels, density=0.5, seed=seed))


def _distinct_forms(count, labels=2, start=0):
    """The shared seeded pool, at this suite's historical 2-label density."""
    return distinct_forms(count, labels=labels, density=0.5, start=start)


class TestSingleFlight:
    def test_concurrent_submissions_share_one_search(self):
        """The heart of the subsystem: N waiters, exactly one execution."""
        started = threading.Event()
        release = threading.Event()
        calls = []

        def slow_task(task):
            calls.append(task[0])
            started.set()
            assert release.wait(timeout=10)
            return task[0], {"complexity": "CONSTANT"}

        with ThreadBackend(workers=2) as backend:
            scheduler = ClassificationScheduler(backend=backend, task=slow_task)
            form = _form()
            first = scheduler.submit(form)
            assert first.kind == JOB_SCHEDULED
            assert started.wait(timeout=10)
            sharers = [scheduler.submit(form) for _ in range(5)]
            assert all(job.kind == JOB_SHARED for job in sharers)
            assert scheduler.in_flight == 1
            release.set()
            payloads = [job.result(timeout=10) for job in [first, *sharers]]

        assert calls == [form.key]  # exactly one search ran
        assert all(payload["complexity"] == "CONSTANT" for payload in payloads)
        assert scheduler.stats.scheduled == 1
        assert scheduler.stats.deduped == 5
        assert scheduler.stats.completed == 1
        # The result landed in the cache: the next submission is a plain hit.
        assert scheduler.submit(form).kind == JOB_CACHE_HIT
        assert scheduler.stats.cache_hits == 1

    def test_distinct_keys_run_concurrently(self):
        """No global lock: two different keys proceed in parallel."""
        both_running = threading.Barrier(2, timeout=10)

        def lockstep_task(task):
            both_running.wait()  # deadlocks (and times out) if serialized
            return task[0], {"complexity": "CONSTANT"}

        with ThreadBackend(workers=2) as backend:
            scheduler = ClassificationScheduler(backend=backend, task=lockstep_task)
            jobs = [scheduler.submit(_form(seed=1)), scheduler.submit(_form(seed=3))]
            assert jobs[0].key != jobs[1].key
            for job in jobs:
                job.result(timeout=10)
        assert scheduler.stats.scheduled == 2

    def test_failure_propagates_to_every_sharer_and_clears_the_key(self):
        started = threading.Event()
        release = threading.Event()

        def failing_task(task):
            started.set()
            assert release.wait(timeout=10)
            raise RuntimeError("search exploded")

        with ThreadBackend(workers=1) as backend:
            scheduler = ClassificationScheduler(backend=backend, task=failing_task)
            form = _form()
            first = scheduler.submit(form)
            assert started.wait(timeout=10)
            sharer = scheduler.submit(form)
            release.set()
            for job in (first, sharer):
                with pytest.raises(RuntimeError, match="search exploded"):
                    job.result(timeout=10)
            assert scheduler.stats.failed == 1
            assert scheduler.in_flight == 0
            # A failed key is not poisoned: the next submission retries.
            started.clear()
            retry = scheduler.submit(form)
            assert retry.kind == JOB_SCHEDULED
            with pytest.raises(RuntimeError):
                retry.result(timeout=10)

    def test_cache_hit_short_circuits_the_backend(self):
        def never_called(task):  # pragma: no cover - the point of the test
            raise AssertionError("backend should not run for cached keys")

        form = _form()
        cache = ClassificationCache()
        cache.store(form.key, {"complexity": "CONSTANT"})
        scheduler = ClassificationScheduler(cache=cache, task=never_called)
        job = scheduler.submit(form)
        assert job.kind == JOB_CACHE_HIT
        assert job.done
        assert job.result()["complexity"] == "CONSTANT"

    def test_warm_schedules_only_missing_orbits(self):
        forms = [_form(seed=1), _form(seed=3), _form(seed=3)]  # one duplicate
        scheduler = ClassificationScheduler()  # inline backend, real searches
        first = scheduler.warm([forms[0]], wait=True)
        assert first == {
            "unique_keys": 1,
            "already_cached": 0,
            "shared": 0,
            "scheduled": 1,
            "waited": True,
            "failed": 0,
            "interrupted": 0,
        }
        second = scheduler.warm(forms, wait=True)
        assert second["unique_keys"] == len({form.key for form in forms})
        assert second["already_cached"] == 1
        assert second["scheduled"] == second["unique_keys"] - 1
        # Everything is cached now: a third warm is a pure no-op.
        third = scheduler.warm(forms, wait=True)
        assert third["scheduled"] == 0
        assert third["already_cached"] == third["unique_keys"]

    def test_wait_idle(self):
        release = threading.Event()

        def slow_task(task):
            assert release.wait(timeout=10)
            return task[0], {"complexity": "CONSTANT"}

        with ThreadBackend(workers=1) as backend:
            scheduler = ClassificationScheduler(backend=backend, task=slow_task)
            assert scheduler.wait_idle(timeout=0.1)  # idle before any work
            job = scheduler.submit(_form())
            assert not scheduler.wait_idle(timeout=0.2)  # still running
            release.set()
            assert scheduler.wait_idle(timeout=10)
            assert job.done

    def test_stats_payload_shape(self):
        scheduler = ClassificationScheduler()
        scheduler.submit(_form())
        payload = scheduler.stats_payload()
        assert payload["backend"] == "inline"
        assert payload["workers"] == 1
        assert payload["scheduled"] == 1
        assert payload["submitted"] == 1
        assert payload["in_flight"] == 0
        assert 0.0 <= payload["utilization"] <= 1.0


# ----------------------------------------------------------------------
# Priority scheduling
# ----------------------------------------------------------------------
def _quick_task_recording(order, lock):
    """A task that records its key and returns immediately."""

    def task(payload):
        with lock:
            order.append(payload[0])
        return payload[0], {"complexity": "CONSTANT"}

    return task


class TestPriorityScheduling:
    def test_priorities_are_validated(self):
        scheduler = ClassificationScheduler()
        with pytest.raises(ValueError, match="unknown priority"):
            scheduler.submit(_form(), priority="urgent")
        assert PRIORITIES == ("interactive", "batch", "warm")

    def test_queued_work_dispatches_in_priority_order(self):
        """With one slot busy, later interactive work overtakes earlier warm."""
        order = []
        lock = threading.Lock()
        started = threading.Event()
        release = threading.Event()

        distinct = _distinct_forms(4, start=101)
        forms = {
            "blocker": distinct[0],
            "warm": distinct[1],
            "batch": distinct[2],
            "interactive": distinct[3],
        }
        keys = {name: form.key for name, form in forms.items()}
        name_of = {key: name for name, key in keys.items()}

        def task(payload):
            with lock:
                order.append(payload[0])
            if payload[0] == keys["blocker"]:
                started.set()
                assert release.wait(timeout=10)
            return payload[0], {"complexity": "CONSTANT"}

        with ThreadBackend(workers=1) as backend:
            scheduler = ClassificationScheduler(backend=backend, task=task)
            blocker = scheduler.submit(forms["blocker"], priority="interactive")
            assert started.wait(timeout=10)
            # The only slot is busy: these three queue in the priority heap.
            jobs = [
                scheduler.submit(forms["warm"], priority="warm"),
                scheduler.submit(forms["batch"], priority="batch"),
                scheduler.submit(forms["interactive"], priority="interactive"),
            ]
            release.set()
            for job in [blocker, *jobs]:
                job.result(timeout=10)

        dispatched = [name_of[key] for key in order]
        assert dispatched == ["blocker", "interactive", "batch", "warm"]

    def test_duplicate_submission_escalates_a_queued_flight(self):
        """An interactive duplicate pulls a queued warm search forward."""
        order = []
        lock = threading.Lock()
        started = threading.Event()
        release = threading.Event()
        record = _quick_task_recording(order, lock)

        def task(payload):
            if not started.is_set():
                started.set()
                assert release.wait(timeout=10)
            return record(payload)

        blocker_form, warm_form, batch_form = _distinct_forms(3, start=111)
        with ThreadBackend(workers=1) as backend:
            scheduler = ClassificationScheduler(backend=backend, task=task)
            blocker = scheduler.submit(blocker_form, priority="interactive")
            assert started.wait(timeout=10)
            warm = scheduler.submit(warm_form, priority="warm")
            batch = scheduler.submit(batch_form, priority="batch")
            # Escalation: a second client needs the warm key interactively.
            escalated = scheduler.submit(warm_form, priority="interactive")
            assert escalated.kind == JOB_SHARED
            release.set()
            for job in (blocker, warm, batch, escalated):
                job.result(timeout=10)
        assert order.index(warm_form.key) < order.index(batch_form.key)
        assert scheduler.stats.deduped == 1

    def test_classifier_passes_priority_and_deadline_through(self):
        with BatchClassifier(backend="threads", workers=2) as classifier:
            item = classifier.classify_item(
                catalog()["mis"][0], priority="interactive", deadline=30.0
            )
        assert item.ok
        assert item.result is not None


# ----------------------------------------------------------------------
# Deadlines and cancellation
# ----------------------------------------------------------------------
def _blocked_task_factory(block_event):
    """A stub search that blocks on an event *without ever checkpointing* —
    the worst case: a hung search the scheduler can only abandon."""

    def task(payload):
        assert block_event.wait(timeout=60)
        return payload[0], {"complexity": "CONSTANT"}

    return task


def _cooperative_slow_task(payload):
    """Sleeps ~30s in small checkpointed slices; unwinds fast on cancel."""
    for _ in range(3000):
        checkpoint()
        time.sleep(0.01)
    return payload[0], {"complexity": "CONSTANT"}


class TestDeadlinesAndCancellation:
    def test_deadline_times_out_a_hung_search_and_frees_the_slot(self):
        """A never-checkpointing search times out; new work still dispatches."""
        block = threading.Event()
        with ThreadBackend(workers=2) as backend:
            scheduler = ClassificationScheduler(
                backend=backend, task=_blocked_task_factory(block)
            )
            hung = scheduler.submit(_form(seed=1), deadline=0.2)
            with pytest.raises(SearchTimeout):
                hung.result(timeout=10)
            assert scheduler.stats.timeouts == 1
            # The hung key left the in-flight table: a retry is possible.
            assert scheduler.in_flight == 0
            retry = scheduler.submit(_form(seed=1))
            assert retry.kind == JOB_SCHEDULED
            block.set()
            retry.result(timeout=10)
            assert scheduler.wait_idle(timeout=10)
            assert scheduler.slots_in_use == 0

    def test_cooperative_timeout_reports_timeout_not_failure(self):
        with ThreadBackend(workers=1) as backend:
            scheduler = ClassificationScheduler(
                backend=backend, task=_cooperative_slow_task
            )
            job = scheduler.submit(_form(seed=2), deadline=0.15)
            start = time.monotonic()
            with pytest.raises(SearchTimeout):
                job.result(timeout=10)
            assert scheduler.wait_idle(timeout=10)
            assert time.monotonic() - start < 5.0
        assert scheduler.stats.timeouts == 1
        assert scheduler.stats.failed == 0
        assert scheduler.stats.completed == 0

    def test_timeout_does_not_poison_the_cache(self):
        form = _form(seed=3)
        with ThreadBackend(workers=1) as backend:
            scheduler = ClassificationScheduler(
                backend=backend, task=_cooperative_slow_task
            )
            job = scheduler.submit(form, deadline=0.1)
            with pytest.raises(SearchTimeout):
                job.result(timeout=10)
            scheduler.wait_idle(timeout=10)
            assert scheduler.cache.peek(form.key) is None
            # And the key is immediately retryable as a fresh search.
            assert scheduler.submit(form, deadline=0.1).kind == JOB_SCHEDULED
            scheduler.wait_idle(timeout=10)

    def test_cancelling_one_sharer_spares_the_search(self):
        started = threading.Event()
        release = threading.Event()

        def task(payload):
            started.set()
            assert release.wait(timeout=10)
            return payload[0], {"complexity": "CONSTANT"}

        with ThreadBackend(workers=1) as backend:
            scheduler = ClassificationScheduler(backend=backend, task=task)
            form = _form(seed=4)
            first = scheduler.submit(form)
            assert started.wait(timeout=10)
            second = scheduler.submit(form)
            assert second.kind == JOB_SHARED
            assert first.cancel() is True
            assert first.cancel() is False  # already detached
            with pytest.raises(SearchCancelled):
                first.result(timeout=10)
            release.set()
            # The surviving sharer still gets the result; nothing cancelled.
            assert second.result(timeout=10)["complexity"] == "CONSTANT"
        assert scheduler.stats.cancelled == 0
        assert scheduler.stats.completed == 1

    def test_cancelling_the_last_waiter_cancels_the_search(self):
        started = threading.Event()
        release = threading.Event()

        def task(payload):
            started.set()
            checkpoint()
            assert release.wait(timeout=60)
            checkpoint()  # observes the cancel after the event releases
            return payload[0], {"complexity": "CONSTANT"}

        with ThreadBackend(workers=1) as backend:
            scheduler = ClassificationScheduler(backend=backend, task=task)
            form = _form(seed=5)
            job = scheduler.submit(form)
            assert started.wait(timeout=10)
            assert job.cancel() is True
            with pytest.raises(SearchCancelled):
                job.result(timeout=10)
            assert scheduler.stats.cancelled == 1
            assert scheduler.in_flight == 0  # key freed immediately
            release.set()
            assert scheduler.wait_idle(timeout=10)  # zombie drains
            assert scheduler.slots_in_use == 0
            assert scheduler.cache.peek(form.key) is None

    def test_scheduler_cancel_by_key_resolves_every_waiter(self):
        block = threading.Event()
        with ThreadBackend(workers=1) as backend:
            scheduler = ClassificationScheduler(
                backend=backend, task=_blocked_task_factory(block)
            )
            form = _form(seed=6)
            jobs = [scheduler.submit(form) for _ in range(3)]
            assert scheduler.cancel(form.key) is True
            assert scheduler.cancel(form.key) is False  # nothing live anymore
            for job in jobs:
                with pytest.raises(SearchCancelled):
                    job.result(timeout=10)
            block.set()
            assert scheduler.wait_idle(timeout=10)
        assert scheduler.stats.cancelled == 1

    def test_cancelling_a_queued_flight_never_dispatches_it(self):
        started = threading.Event()
        release = threading.Event()
        executed = []

        def task(payload):
            executed.append(payload[0])
            started.set()
            assert release.wait(timeout=10)
            return payload[0], {"complexity": "CONSTANT"}

        blocker_form, queued_form = _distinct_forms(2, start=7)
        with ThreadBackend(workers=1) as backend:
            scheduler = ClassificationScheduler(backend=backend, task=task)
            blocker = scheduler.submit(blocker_form)
            assert started.wait(timeout=10)
            queued = scheduler.submit(queued_form)
            assert queued.cancel() is True
            release.set()
            blocker.result(timeout=10)
            assert scheduler.wait_idle(timeout=10)
        assert executed == [blocker.key]
        assert scheduler.stats.scheduled == 1  # the queued one never started
        assert scheduler.stats.flights == 2
        assert scheduler.stats.cancelled == 1

    def test_cache_hit_jobs_cannot_be_cancelled(self):
        form = _form(seed=9)
        cache = ClassificationCache()
        cache.store(form.key, {"complexity": "CONSTANT"})
        scheduler = ClassificationScheduler(cache=cache)
        job = scheduler.submit(form)
        assert job.kind == JOB_CACHE_HIT
        assert job.cancel() is False

    def test_sharer_without_deadline_survives_creators_timeout(self):
        """Deadlines are per waiter: one client's budget must never time out
        another client sharing the same search (code-review regression)."""
        started = threading.Event()
        release = threading.Event()

        def task(payload):
            started.set()
            checkpoint()
            assert release.wait(timeout=30)
            checkpoint()
            return payload[0], {"complexity": "CONSTANT"}

        with ThreadBackend(workers=1) as backend:
            scheduler = ClassificationScheduler(backend=backend, task=task)
            form = _form(seed=40)
            creator = scheduler.submit(form, deadline=0.2)
            assert started.wait(timeout=10)
            sharer = scheduler.submit(form)  # no deadline: wants the answer
            assert sharer.kind == JOB_SHARED
            with pytest.raises(SearchTimeout):
                creator.result(timeout=10)
            # The flight is still live for the sharer — not cancelled.
            assert scheduler.in_flight == 1
            release.set()
            assert sharer.result(timeout=10)["complexity"] == "CONSTANT"
        assert scheduler.stats.completed == 1
        assert scheduler.stats.timeouts == 0  # no *flight* timed out
        assert scheduler.cache.peek(form.key) is not None

    def test_process_backend_routes_unkillable_tasks_through_the_pool(self):
        """Only deadline-marked searches pay for a dedicated process; plain
        ones keep the warm pool (code-review regression)."""
        from repro.workers import CancelToken

        backend = ProcessBackend(workers=1)
        backend.probe()
        if backend.degraded:  # pragma: no cover - sandboxed environments
            backend.close()
            pytest.skip("process pool unavailable in this environment")
        try:
            pooled = backend.submit_task(_square, 4, token=CancelToken())
            assert pooled._kill is None  # pool path: no dedicated process
            assert pooled.future.result(timeout=60) == 16
            dedicated = backend.submit_task(
                _square, 5, token=CancelToken(), killable=True
            )
            assert dedicated._kill is not None  # hard-killable path
            assert dedicated.future.result(timeout=60) == 25
        finally:
            backend.close()

    def test_classify_many_does_not_count_timed_out_duplicates_as_hits(self):
        """A duplicate of an orbit whose search timed out produced no answer
        and must not inflate the cache hit rate (code-review regression)."""
        from repro.problems import hard_problem

        hard = hard_problem(12)
        with BatchClassifier(backend="threads", workers=2) as classifier:
            items = classifier.classify_many([hard, hard], deadline=0.2)
            hits_after_timeout = classifier.cache_stats.hits
            # Positive control: duplicates of a *completed* orbit are hits.
            easy = catalog()["mis"][0]
            classifier.classify_many([easy, easy])
        assert [item.outcome for item in items] == ["timeout", "timeout"]
        assert hits_after_timeout == 0
        assert classifier.cache_stats.hits == 1  # the easy duplicate only

    def test_process_backend_hard_kills_a_deadlined_search(self):
        """The process backend terminates a search that never checkpoints."""
        backend = ProcessBackend(workers=2)
        backend.probe()
        if backend.degraded:  # pragma: no cover - sandboxed environments
            backend.close()
            pytest.skip("process pool unavailable in this environment")
        try:
            scheduler = ClassificationScheduler(
                backend=backend, task=_stubborn_sleeper
            )
            start = time.monotonic()
            job = scheduler.submit(_form(seed=10), deadline=0.3)
            with pytest.raises(SearchTimeout):
                job.result(timeout=30)
            # wait_idle confirms the killed child's future settled: the
            # worker slot is truly reclaimed, not leaked.
            assert scheduler.wait_idle(timeout=30)
            assert time.monotonic() - start < 20.0
            assert scheduler.stats.timeouts == 1
            assert scheduler.slots_in_use == 0
        finally:
            backend.close()

    def test_starvation_regression_hung_search_does_not_delay_interactive(self):
        """One hung search + N interactive classifies: only the hung key
        times out, everything else completes within its deadline."""
        block = threading.Event()
        forms = _distinct_forms(7, start=20)
        hung_form, interactive_forms = forms[0], forms[1:]

        def task(payload):
            if payload[0] == hung_form.key:
                assert block.wait(timeout=60)  # event-blocked stub: hangs
            return payload[0], {"complexity": "CONSTANT"}
        with ThreadBackend(workers=2) as backend:
            scheduler = ClassificationScheduler(backend=backend, task=task)
            hung = scheduler.submit(hung_form, priority="batch", deadline=0.5)
            jobs = [
                scheduler.submit(form, priority="interactive", deadline=10.0)
                for form in interactive_forms
            ]
            start = time.monotonic()
            payloads = [job.result(timeout=15) for job in jobs]
            elapsed = time.monotonic() - start
            with pytest.raises(SearchTimeout):
                hung.result(timeout=10)
            block.set()
            assert scheduler.wait_idle(timeout=10)
        assert all(payload["complexity"] == "CONSTANT" for payload in payloads)
        assert elapsed < 10.0  # nobody waited behind the hung search
        assert scheduler.stats.timeouts == 1
        assert scheduler.stats.completed == len(interactive_forms)
        assert scheduler.slots_in_use == 0

    def test_failed_flight_retires_its_key_under_contention(self):
        """Regression (PR 4): hammer a failing key from many threads while
        flipping it to success — the key must never stick in the in-flight
        table, every waiter must resolve, and the final retry must succeed."""
        mode = {"fail": True}

        def flaky(payload):
            if mode["fail"]:
                raise RuntimeError("flaky search")
            return payload[0], {"complexity": "CONSTANT"}

        form = _form(seed=30)
        stop = threading.Event()
        unexpected = []
        outcomes = {"failed": 0, "succeeded": 0}
        counter_lock = threading.Lock()

        def hammer():
            while not stop.is_set():
                job = scheduler.submit(form)
                try:
                    job.result(timeout=10)
                    with counter_lock:
                        outcomes["succeeded"] += 1
                    return  # cache is hot from here on
                except RuntimeError:
                    with counter_lock:
                        outcomes["failed"] += 1
                except Exception as error:  # noqa: BLE001 - surfaced below
                    unexpected.append(error)
                    return

        with ThreadBackend(workers=4) as backend:
            scheduler = ClassificationScheduler(backend=backend, task=flaky)
            threads = [threading.Thread(target=hammer) for _ in range(6)]
            for thread in threads:
                thread.start()
            time.sleep(0.2)  # let the failure/retry race churn
            mode["fail"] = False
            for thread in threads:
                thread.join(timeout=30)
            stop.set()
            assert not any(thread.is_alive() for thread in threads)
            assert scheduler.wait_idle(timeout=10)

        assert not unexpected, unexpected
        assert outcomes["succeeded"] == 6  # every thread eventually succeeded
        assert scheduler.in_flight == 0
        assert scheduler.slots_in_use == 0
        # Conservation: every flight ended in exactly one terminal outcome.
        stats = scheduler.stats
        assert stats.flights == stats.completed + stats.failed
        assert stats.completed >= 1
        assert scheduler.cache.peek(form.key) is not None


def _stubborn_sleeper(payload):
    """Module-level (picklable) search that sleeps without checkpointing."""
    time.sleep(30)
    return payload[0], {"complexity": "CONSTANT"}


# ----------------------------------------------------------------------
# BatchClassifier on top of the scheduler
# ----------------------------------------------------------------------
class TestClassifierBackends:
    @pytest.mark.parametrize("backend", BACKEND_NAMES)
    def test_every_backend_agrees_with_direct_classification(self, backend):
        problems = [random_problem(3, density=0.25, seed=seed) for seed in range(10)]
        with BatchClassifier(backend=backend, workers=2) as classifier:
            items = classifier.classify_many(problems)
        assert [item.result.complexity for item in items] == [
            classify(problem).complexity for problem in problems
        ]

    def test_legacy_processes_argument_maps_to_process_backend(self):
        with BatchClassifier(processes=2) as classifier:
            assert classifier.scheduler.backend.name == "processes"
            assert classifier.scheduler.backend.workers == 2
        with BatchClassifier(processes=1) as serial:
            assert serial.scheduler.backend.name == "inline"

    def test_submit_item_resolves_to_the_same_result(self):
        problem, expected = catalog()["mis"]
        with BatchClassifier(backend="threads", workers=2) as classifier:
            pending = classifier.submit_item(problem)
            item = pending.result(timeout=60)
        assert item.result.complexity == expected
        assert not item.from_cache
        assert pending.done

    def test_classifiers_sharing_a_scheduler_share_its_cache(self):
        scheduler = ClassificationScheduler()
        problem = catalog()["mis"][0]
        first = BatchClassifier(scheduler=scheduler)
        second = BatchClassifier(scheduler=scheduler)
        assert not first.classify_item(problem).from_cache
        hit = second.classify_item(problem)
        assert hit.from_cache
        assert second.stats.full_searches == 0
        assert first.cache is second.cache

    def test_concurrent_classify_item_calls_single_flight(self):
        """Threads hammering one classifier trigger one search per orbit."""
        problems = [random_problem(2, density=0.5, seed=seed) for seed in range(12)]
        unique_keys = {canonical_form(problem).key for problem in problems}
        with BatchClassifier(backend="threads", workers=4) as classifier:
            results = [None] * 4
            def hammer(slot):
                results[slot] = [
                    classifier.classify_item(problem).result.complexity
                    for problem in problems
                ]
            threads = [
                threading.Thread(target=hammer, args=(slot,)) for slot in range(4)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=120)
            assert all(not thread.is_alive() for thread in threads)
            stats = classifier.scheduler.stats
        assert all(result == results[0] for result in results)
        assert results[0] == [classify(problem).complexity for problem in problems]
        # Single flight: one search per distinct canonical key, ever.
        assert stats.scheduled == len(unique_keys)
        assert stats.submitted == 4 * len(problems)

    def test_closing_a_classifier_spares_a_shared_scheduler(self):
        """Context-exit of one sharer must not kill the common worker pool."""
        backend = ThreadBackend(workers=1)
        scheduler = ClassificationScheduler(backend=backend)
        try:
            with BatchClassifier(scheduler=scheduler) as first:
                first.classify(catalog()["mis"][0])
            # The shared backend must still accept work after `first` closed.
            survivor = BatchClassifier(scheduler=scheduler)
            item = survivor.classify_item(catalog()["2-coloring"][0])
            assert item.result.complexity is not None
        finally:
            scheduler.close()

    def test_closing_a_classifier_spares_an_injected_backend_instance(self):
        """Same contract when sharing a bare backend instead of a scheduler."""
        backend = ThreadBackend(workers=1)
        try:
            with BatchClassifier(backend=backend) as first:
                first.classify(catalog()["mis"][0])
            survivor = BatchClassifier(backend=backend)
            item = survivor.classify_item(catalog()["2-coloring"][0])
            assert item.result.complexity is not None
            survivor.close()  # does not own the backend either
            assert backend.submit(_square, 3).result(timeout=10) == 9
        finally:
            backend.close()

    def test_stats_report_includes_workers_section(self):
        with BatchClassifier(backend="threads", workers=2) as classifier:
            classifier.classify(catalog()["mis"][0])
            report = classifier.stats_report()
        assert report["workers"]["backend"] == "threads"
        assert report["workers"]["scheduled"] == 1
        assert report["batch"]["full_searches"] == 1
