"""Tests for the parallel execution subsystem: backends + single-flight scheduler."""

import threading

import pytest

from repro.core import classify
from repro.engine import BatchClassifier, ClassificationCache, canonical_form
from repro.problems import catalog
from repro.problems.random_problems import random_problem
from repro.workers import (
    BACKEND_NAMES,
    JOB_CACHE_HIT,
    JOB_SCHEDULED,
    JOB_SHARED,
    ClassificationScheduler,
    InlineBackend,
    ProcessBackend,
    ThreadBackend,
    create_backend,
)


def _square(value):
    """Module-level so the process backend can pickle it."""
    return value * value


def _boom(_value):
    raise RuntimeError("boom")


# ----------------------------------------------------------------------
# Backends
# ----------------------------------------------------------------------
class TestBackends:
    def test_inline_resolves_synchronously(self):
        backend = InlineBackend()
        future = backend.submit(_square, 7)
        assert future.done()
        assert future.result() == 49

    def test_inline_captures_exceptions_in_the_future(self):
        future = InlineBackend().submit(_boom, 0)
        assert future.done()
        with pytest.raises(RuntimeError, match="boom"):
            future.result()

    def test_thread_backend_runs_tasks_concurrently(self):
        """Two mutually-waiting tasks only finish if they truly overlap."""
        first_running = threading.Event()
        second_running = threading.Event()

        def task_a():
            first_running.set()
            assert second_running.wait(timeout=10)
            return "a"

        def task_b():
            second_running.set()
            assert first_running.wait(timeout=10)
            return "b"

        with ThreadBackend(workers=2) as backend:
            futures = [backend.submit(task_a), backend.submit(task_b)]
            assert [future.result(timeout=10) for future in futures] == ["a", "b"]

    def test_process_backend_round_trip(self):
        with ProcessBackend(workers=2) as backend:
            futures = [backend.submit(_square, value) for value in range(5)]
            assert [future.result(timeout=60) for future in futures] == [
                0, 1, 4, 9, 16,
            ]

    def test_process_backend_propagates_task_errors(self):
        with ProcessBackend(workers=1) as backend:
            with pytest.raises(RuntimeError, match="boom"):
                backend.submit(_boom, 0).result(timeout=60)

    def test_create_backend_spellings(self):
        assert create_backend(None).name == "inline"
        assert create_backend(None, workers=1).name == "inline"
        # Asking for parallelism without naming a backend implies threads.
        implied = create_backend(None, workers=3)
        assert implied.name == "threads" and implied.workers == 3
        implied.close()
        for name in BACKEND_NAMES:
            backend = create_backend(name, workers=2)
            assert backend.name == name
            backend.close()

    def test_create_backend_rejects_unknown_names(self):
        with pytest.raises(ValueError, match="unknown worker backend"):
            create_backend("gpu")

    def test_invalid_worker_count_rejected(self):
        with pytest.raises(ValueError):
            ThreadBackend(workers=0)

    def test_probe_spawns_the_pool_eagerly(self):
        backend = ProcessBackend(workers=1)
        assert backend._executor is None  # lazy until probed
        backend.probe()
        assert backend._executor is not None or backend.degraded
        backend.close()
        InlineBackend().probe()  # a no-op everywhere else
        thread_backend = ThreadBackend(workers=1)
        thread_backend.probe()
        thread_backend.close()

    def test_process_backend_rejects_submits_after_close(self):
        backend = ProcessBackend(workers=1)
        assert backend.submit(_square, 2).result(timeout=60) == 4
        backend.close()
        with pytest.raises(RuntimeError, match="closed"):
            backend.submit(_square, 2)

    def test_synchronous_flag_marks_inline_execution(self):
        assert InlineBackend().synchronous is True
        thread_backend = ThreadBackend(workers=1)
        assert thread_backend.synchronous is False
        thread_backend.close()
        process_backend = ProcessBackend(workers=1)
        assert process_backend.synchronous is False  # flips only on degrade
        process_backend.close()

    def test_describe_reports_configuration(self):
        backend = ThreadBackend(workers=2)
        assert backend.describe() == {"backend": "threads", "workers": 2}
        backend.close()
        process_backend = ProcessBackend(workers=2)
        assert process_backend.describe()["degraded"] is False
        process_backend.close()


# ----------------------------------------------------------------------
# Single-flight scheduler (controlled fake search task)
# ----------------------------------------------------------------------
def _form(seed=0, labels=2):
    return canonical_form(random_problem(labels, density=0.5, seed=seed))


class TestSingleFlight:
    def test_concurrent_submissions_share_one_search(self):
        """The heart of the subsystem: N waiters, exactly one execution."""
        started = threading.Event()
        release = threading.Event()
        calls = []

        def slow_task(task):
            calls.append(task[0])
            started.set()
            assert release.wait(timeout=10)
            return task[0], {"complexity": "CONSTANT"}

        with ThreadBackend(workers=2) as backend:
            scheduler = ClassificationScheduler(backend=backend, task=slow_task)
            form = _form()
            first = scheduler.submit(form)
            assert first.kind == JOB_SCHEDULED
            assert started.wait(timeout=10)
            sharers = [scheduler.submit(form) for _ in range(5)]
            assert all(job.kind == JOB_SHARED for job in sharers)
            assert scheduler.in_flight == 1
            release.set()
            payloads = [job.result(timeout=10) for job in [first, *sharers]]

        assert calls == [form.key]  # exactly one search ran
        assert all(payload["complexity"] == "CONSTANT" for payload in payloads)
        assert scheduler.stats.scheduled == 1
        assert scheduler.stats.deduped == 5
        assert scheduler.stats.completed == 1
        # The result landed in the cache: the next submission is a plain hit.
        assert scheduler.submit(form).kind == JOB_CACHE_HIT
        assert scheduler.stats.cache_hits == 1

    def test_distinct_keys_run_concurrently(self):
        """No global lock: two different keys proceed in parallel."""
        both_running = threading.Barrier(2, timeout=10)

        def lockstep_task(task):
            both_running.wait()  # deadlocks (and times out) if serialized
            return task[0], {"complexity": "CONSTANT"}

        with ThreadBackend(workers=2) as backend:
            scheduler = ClassificationScheduler(backend=backend, task=lockstep_task)
            jobs = [scheduler.submit(_form(seed=1)), scheduler.submit(_form(seed=3))]
            assert jobs[0].key != jobs[1].key
            for job in jobs:
                job.result(timeout=10)
        assert scheduler.stats.scheduled == 2

    def test_failure_propagates_to_every_sharer_and_clears_the_key(self):
        started = threading.Event()
        release = threading.Event()

        def failing_task(task):
            started.set()
            assert release.wait(timeout=10)
            raise RuntimeError("search exploded")

        with ThreadBackend(workers=1) as backend:
            scheduler = ClassificationScheduler(backend=backend, task=failing_task)
            form = _form()
            first = scheduler.submit(form)
            assert started.wait(timeout=10)
            sharer = scheduler.submit(form)
            release.set()
            for job in (first, sharer):
                with pytest.raises(RuntimeError, match="search exploded"):
                    job.result(timeout=10)
            assert scheduler.stats.failed == 1
            assert scheduler.in_flight == 0
            # A failed key is not poisoned: the next submission retries.
            started.clear()
            retry = scheduler.submit(form)
            assert retry.kind == JOB_SCHEDULED
            with pytest.raises(RuntimeError):
                retry.result(timeout=10)

    def test_cache_hit_short_circuits_the_backend(self):
        def never_called(task):  # pragma: no cover - the point of the test
            raise AssertionError("backend should not run for cached keys")

        form = _form()
        cache = ClassificationCache()
        cache.store(form.key, {"complexity": "CONSTANT"})
        scheduler = ClassificationScheduler(cache=cache, task=never_called)
        job = scheduler.submit(form)
        assert job.kind == JOB_CACHE_HIT
        assert job.done
        assert job.result()["complexity"] == "CONSTANT"

    def test_warm_schedules_only_missing_orbits(self):
        forms = [_form(seed=1), _form(seed=3), _form(seed=3)]  # one duplicate
        scheduler = ClassificationScheduler()  # inline backend, real searches
        first = scheduler.warm([forms[0]], wait=True)
        assert first == {
            "unique_keys": 1,
            "already_cached": 0,
            "shared": 0,
            "scheduled": 1,
            "waited": True,
            "failed": 0,
        }
        second = scheduler.warm(forms, wait=True)
        assert second["unique_keys"] == len({form.key for form in forms})
        assert second["already_cached"] == 1
        assert second["scheduled"] == second["unique_keys"] - 1
        # Everything is cached now: a third warm is a pure no-op.
        third = scheduler.warm(forms, wait=True)
        assert third["scheduled"] == 0
        assert third["already_cached"] == third["unique_keys"]

    def test_wait_idle(self):
        release = threading.Event()

        def slow_task(task):
            assert release.wait(timeout=10)
            return task[0], {"complexity": "CONSTANT"}

        with ThreadBackend(workers=1) as backend:
            scheduler = ClassificationScheduler(backend=backend, task=slow_task)
            assert scheduler.wait_idle(timeout=0.1)  # idle before any work
            job = scheduler.submit(_form())
            assert not scheduler.wait_idle(timeout=0.2)  # still running
            release.set()
            assert scheduler.wait_idle(timeout=10)
            assert job.done

    def test_stats_payload_shape(self):
        scheduler = ClassificationScheduler()
        scheduler.submit(_form())
        payload = scheduler.stats_payload()
        assert payload["backend"] == "inline"
        assert payload["workers"] == 1
        assert payload["scheduled"] == 1
        assert payload["submitted"] == 1
        assert payload["in_flight"] == 0
        assert 0.0 <= payload["utilization"] <= 1.0


# ----------------------------------------------------------------------
# BatchClassifier on top of the scheduler
# ----------------------------------------------------------------------
class TestClassifierBackends:
    @pytest.mark.parametrize("backend", BACKEND_NAMES)
    def test_every_backend_agrees_with_direct_classification(self, backend):
        problems = [random_problem(3, density=0.25, seed=seed) for seed in range(10)]
        with BatchClassifier(backend=backend, workers=2) as classifier:
            items = classifier.classify_many(problems)
        assert [item.result.complexity for item in items] == [
            classify(problem).complexity for problem in problems
        ]

    def test_legacy_processes_argument_maps_to_process_backend(self):
        with BatchClassifier(processes=2) as classifier:
            assert classifier.scheduler.backend.name == "processes"
            assert classifier.scheduler.backend.workers == 2
        with BatchClassifier(processes=1) as serial:
            assert serial.scheduler.backend.name == "inline"

    def test_submit_item_resolves_to_the_same_result(self):
        problem, expected = catalog()["mis"]
        with BatchClassifier(backend="threads", workers=2) as classifier:
            pending = classifier.submit_item(problem)
            item = pending.result(timeout=60)
        assert item.result.complexity == expected
        assert not item.from_cache
        assert pending.done

    def test_classifiers_sharing_a_scheduler_share_its_cache(self):
        scheduler = ClassificationScheduler()
        problem = catalog()["mis"][0]
        first = BatchClassifier(scheduler=scheduler)
        second = BatchClassifier(scheduler=scheduler)
        assert not first.classify_item(problem).from_cache
        hit = second.classify_item(problem)
        assert hit.from_cache
        assert second.stats.full_searches == 0
        assert first.cache is second.cache

    def test_concurrent_classify_item_calls_single_flight(self):
        """Threads hammering one classifier trigger one search per orbit."""
        problems = [random_problem(2, density=0.5, seed=seed) for seed in range(12)]
        unique_keys = {canonical_form(problem).key for problem in problems}
        with BatchClassifier(backend="threads", workers=4) as classifier:
            results = [None] * 4
            def hammer(slot):
                results[slot] = [
                    classifier.classify_item(problem).result.complexity
                    for problem in problems
                ]
            threads = [
                threading.Thread(target=hammer, args=(slot,)) for slot in range(4)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=120)
            assert all(not thread.is_alive() for thread in threads)
            stats = classifier.scheduler.stats
        assert all(result == results[0] for result in results)
        assert results[0] == [classify(problem).complexity for problem in problems]
        # Single flight: one search per distinct canonical key, ever.
        assert stats.scheduled == len(unique_keys)
        assert stats.submitted == 4 * len(problems)

    def test_closing_a_classifier_spares_a_shared_scheduler(self):
        """Context-exit of one sharer must not kill the common worker pool."""
        backend = ThreadBackend(workers=1)
        scheduler = ClassificationScheduler(backend=backend)
        try:
            with BatchClassifier(scheduler=scheduler) as first:
                first.classify(catalog()["mis"][0])
            # The shared backend must still accept work after `first` closed.
            survivor = BatchClassifier(scheduler=scheduler)
            item = survivor.classify_item(catalog()["2-coloring"][0])
            assert item.result.complexity is not None
        finally:
            scheduler.close()

    def test_closing_a_classifier_spares_an_injected_backend_instance(self):
        """Same contract when sharing a bare backend instead of a scheduler."""
        backend = ThreadBackend(workers=1)
        try:
            with BatchClassifier(backend=backend) as first:
                first.classify(catalog()["mis"][0])
            survivor = BatchClassifier(backend=backend)
            item = survivor.classify_item(catalog()["2-coloring"][0])
            assert item.result.complexity is not None
            survivor.close()  # does not own the backend either
            assert backend.submit(_square, 3).result(timeout=10) == 9
        finally:
            backend.close()

    def test_stats_report_includes_workers_section(self):
        with BatchClassifier(backend="threads", workers=2) as classifier:
            classifier.classify(catalog()["mis"][0])
            report = classifier.stats_report()
        assert report["workers"]["backend"] == "threads"
        assert report["workers"]["scheduled"] == 1
        assert report["batch"]["full_searches"] == 1
