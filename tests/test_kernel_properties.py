"""Property-based tests (hypothesis) for the bitmask kernel layer.

The kernel's claim is that ints under bitwise ops implement the same set
algebra the reference implements with ``frozenset``.  These tests state that
claim as properties over seeded random label universes:

* encode/decode round-trips (``mask_of`` / ``labels_of`` are inverse
  bijections between label subsets and ``[0, 2^|Σ|)``),
* restriction, ``uses_only``, continuation, and flexibility computed on
  masks agree with the ``LCLProblem``/automata set semantics,
* the child-multiset matching agrees with ``assign_children_to_sets``, and
* renaming invariance: canonical forms still identify renamed problems, and
  the kernel classifies every renaming of a problem identically.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.automata.flexibility import path_flexible_labels
from repro.core import Configuration, LCLProblem, classify, kernel_override
from repro.core.kernel import (
    BITMASK,
    REFERENCE,
    match_children_to_sets,
    problem_encoding,
)
from repro.core.logstar_certificate import assign_children_to_sets
from repro.engine.canonical import canonical_form

LABEL_NAMES = ["1", "2", "3", "a", "b", "zz"]

labels_strategy = st.lists(
    st.sampled_from(LABEL_NAMES), min_size=1, max_size=4, unique=True
)


@st.composite
def problems(draw, delta: int = 2):
    """Random small LCL problems (δ = 2, at most 4 labels, any density)."""
    labels = draw(labels_strategy)
    universe = [
        (parent, (first, second))
        for parent in labels
        for first in labels
        for second in labels
        if first <= second
    ]
    subset = draw(
        st.lists(st.sampled_from(universe), min_size=0, max_size=len(universe), unique=True)
    )
    return LCLProblem.create(delta=delta, configurations=subset, labels=labels)


@st.composite
def problem_and_label_subset(draw):
    problem = draw(problems())
    ordered = sorted(problem.labels)
    chosen = draw(
        st.lists(st.sampled_from(ordered), min_size=0, max_size=len(ordered), unique=True)
    )
    return problem, frozenset(chosen)


# ----------------------------------------------------------------------
# Encode / decode
# ----------------------------------------------------------------------
@given(problem_and_label_subset())
@settings(max_examples=80, deadline=None)
def test_mask_roundtrip_from_labels(pair):
    problem, subset = pair
    enc = problem_encoding(problem)
    assert enc.labels_of(enc.mask_of(subset)) == subset


@given(problems(), st.integers(min_value=0, max_value=(1 << len(LABEL_NAMES)) - 1))
@settings(max_examples=80, deadline=None)
def test_mask_roundtrip_from_ints(problem, raw):
    enc = problem_encoding(problem)
    mask = raw & enc.full_mask
    assert enc.mask_of(enc.labels_of(mask)) == mask


@given(problems())
@settings(max_examples=60, deadline=None)
def test_bit_order_is_sorted_label_order(problem):
    enc = problem_encoding(problem)
    assert enc.labels == sorted(problem.labels)
    for index, label in enumerate(enc.labels):
        assert enc.index_of[label] == index
        assert enc.labels_of(1 << index) == frozenset({label})


# ----------------------------------------------------------------------
# Set semantics: restriction / uses_only / continuation / flexibility
# ----------------------------------------------------------------------
@given(problem_and_label_subset())
@settings(max_examples=80, deadline=None)
def test_uses_only_is_a_single_mask_test(pair):
    problem, subset = pair
    enc = problem_encoding(problem)
    allowed = enc.mask_of(subset)
    for (parent, config_mask, _bits), config in zip(
        enc.configs, problem.sorted_configurations()
    ):
        assert enc.labels[parent] == config.parent
        assert (config_mask & ~allowed == 0) == config.uses_only(subset)


@given(problem_and_label_subset())
@settings(max_examples=80, deadline=None)
def test_restriction_config_count_matches(pair):
    problem, subset = pair
    enc = problem_encoding(problem)
    restricted = problem.restrict(subset)
    assert enc.allowed_config_count(enc.mask_of(subset)) == len(
        restricted.configurations
    )


@given(problems())
@settings(max_examples=60, deadline=None)
def test_infinite_continuation_mask_matches(problem):
    enc = problem_encoding(problem)
    assert (
        enc.labels_of(enc.infinite_continuation_mask())
        == problem.infinite_continuation_labels()
    )


@given(problem_and_label_subset())
@settings(max_examples=60, deadline=None)
def test_flexible_mask_matches_automaton_flexibility(pair):
    problem, subset = pair
    enc = problem_encoding(problem)
    restricted = problem.restrict(subset)
    assert enc.labels_of(enc.flexible_mask(enc.mask_of(subset))) == path_flexible_labels(
        restricted
    )


@given(problem_and_label_subset())
@settings(max_examples=60, deadline=None)
def test_support_test_is_exact(pair):
    """``all_labels_supported`` ⟺ every subset label parents an allowed config."""
    problem, subset = pair
    enc = problem_encoding(problem)
    restricted = problem.restrict(subset)
    expected = all(
        any(config.parent == label for config in restricted.configurations)
        for label in subset & problem.labels
    )
    assert enc.all_labels_supported(enc.mask_of(subset)) == expected


# ----------------------------------------------------------------------
# Matching
# ----------------------------------------------------------------------
children_strategy = st.lists(
    st.sampled_from(LABEL_NAMES), min_size=1, max_size=4
)
sets_strategy = st.lists(
    st.frozensets(st.sampled_from(LABEL_NAMES), max_size=4), min_size=1, max_size=4
)


@given(children_strategy, sets_strategy)
@settings(max_examples=120, deadline=None)
def test_matching_agrees_with_reference_assignment(children, sets):
    if len(children) != len(sets):
        sets = (sets * len(children))[: len(children)]
    config = Configuration(parent=children[0], children=tuple(children))
    # Configuration sorts its children; mirror that order for the index view.
    sorted_children = tuple(sorted(children))
    index_of = {label: index for index, label in enumerate(LABEL_NAMES)}
    child_indices = tuple(index_of[label] for label in sorted_children)
    set_masks = tuple(
        sum(1 << index_of[label] for label in label_set) for label_set in sets
    )
    expected = assign_children_to_sets(config, [frozenset(s) for s in sets]) is not None
    assert match_children_to_sets(child_indices, set_masks) == expected


@given(children_strategy, sets_strategy, st.randoms(use_true_random=False))
@settings(max_examples=60, deadline=None)
def test_matching_is_permutation_invariant(children, sets, rng):
    if len(children) != len(sets):
        sets = (sets * len(children))[: len(children)]
    index_of = {label: index for index, label in enumerate(LABEL_NAMES)}
    child_indices = tuple(sorted(index_of[label] for label in children))
    set_masks = [sum(1 << index_of[label] for label in s) for s in sets]
    baseline = match_children_to_sets(child_indices, tuple(set_masks))
    rng.shuffle(set_masks)
    assert match_children_to_sets(child_indices, tuple(set_masks)) == baseline


# ----------------------------------------------------------------------
# Renaming invariance
# ----------------------------------------------------------------------
@given(problems(), st.randoms(use_true_random=False))
@settings(max_examples=40, deadline=None)
def test_renaming_preserves_canonical_key_and_classification(problem, rng):
    ordered = sorted(problem.labels)
    fresh = [f"r{index}" for index in range(len(ordered))]
    rng.shuffle(fresh)
    mapping = dict(zip(ordered, fresh))
    renamed = LCLProblem.create(
        delta=problem.delta,
        configurations=[
            (mapping[config.parent], tuple(mapping[child] for child in config.children))
            for config in problem.configurations
        ],
        labels=[mapping[label] for label in ordered],
    )
    assert canonical_form(renamed).key == canonical_form(problem).key
    with kernel_override(BITMASK):
        bitmask_result = classify(renamed)
        assert bitmask_result.complexity == classify(problem).complexity
    with kernel_override(REFERENCE):
        assert classify(renamed).complexity == bitmask_result.complexity
