"""Test configuration.

Makes the package importable even when it has not been installed (e.g. when the
editable install is not possible in an offline environment): the ``src`` layout
directory is appended to ``sys.path`` as a fallback.
"""

import sys
from pathlib import Path

try:  # pragma: no cover - exercised implicitly
    import repro  # noqa: F401
except ModuleNotFoundError:  # pragma: no cover - offline fallback
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))
