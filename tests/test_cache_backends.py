"""Cache-backend matrix: URL parsing, durability, write-behind, recovery.

The PR-9 surface in one place:

* ``parse_cache_url`` / ``create_backend`` selection rules,
* behavior parity across the ``memory`` / ``json`` / ``sqlite`` backends,
* write-behind flushing (partial for sqlite, whole-file for json),
* TTL persistence differences between the backends,
* corruption quarantine at construction,
* export/import byte-identity across backends,
* the two-process json temp-file corruption regression (fixed ``{path}.tmp``),
* SIGKILL crash recovery: the survivor store always parses and keeps every
  acknowledged flush.
"""

import json
import os
import signal
import subprocess
import sys
import textwrap
import time

import pytest

import repro
from repro.engine.backends import (
    BACKEND_ENV_VAR,
    CacheCorruptionError,
    JsonFileBackend,
    MemoryBackend,
    SqliteWalBackend,
    create_backend,
    dump_snapshot_text,
    parse_cache_url,
    parse_snapshot_text,
)
from repro.engine.cache import ClassificationCache

DURABLE = ("json", "sqlite")
ALL_BACKENDS = ("memory",) + DURABLE


def _entry(tag):
    return {"complexity": "CONSTANT", "tag": str(tag)}


def _url(backend, tmp_path):
    if backend == "memory":
        return "memory:"
    suffix = "json" if backend == "json" else "db"
    return f"{backend}:{tmp_path / f'cache.{suffix}'}"


def _store_path(url):
    return url.split(":", 1)[1]


def _subprocess_env():
    env = os.environ.copy()
    src = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    return env


# ----------------------------------------------------------------------
# URL parsing / backend selection
# ----------------------------------------------------------------------
class TestCacheUrls:
    def test_bare_path_defaults_to_json(self, monkeypatch):
        monkeypatch.delenv(BACKEND_ENV_VAR, raising=False)
        assert parse_cache_url("results.json") == ("json", "results.json")
        assert parse_cache_url("/var/lib/repro/c.json")[0] == "json"

    def test_explicit_schemes(self):
        assert parse_cache_url("json:c.json") == ("json", "c.json")
        assert parse_cache_url("sqlite:c.db") == ("sqlite", "c.db")
        assert parse_cache_url("sqlite://c.db") == ("sqlite", "c.db")
        assert parse_cache_url("memory:") == ("memory", None)
        assert parse_cache_url("memory") == ("memory", None)

    def test_env_var_retargets_bare_paths(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "sqlite")
        assert parse_cache_url("results.json") == ("sqlite", "results.json")
        # Explicit schemes always win over the environment.
        assert parse_cache_url("json:results.json")[0] == "json"

    def test_invalid_env_var_is_rejected(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "redis")
        with pytest.raises(ValueError):
            parse_cache_url("results.json")

    def test_unknown_scheme_is_rejected(self):
        with pytest.raises(ValueError):
            parse_cache_url("redis:results")

    def test_memory_with_path_is_rejected(self):
        with pytest.raises(ValueError):
            parse_cache_url("memory:somewhere.json")

    def test_missing_location_is_rejected(self):
        for url in ("", "json:", "sqlite:"):
            with pytest.raises(ValueError):
                parse_cache_url(url)

    def test_single_letter_head_stays_a_bare_path(self, monkeypatch):
        # Windows-style drive prefixes must not read as URL schemes.
        monkeypatch.delenv(BACKEND_ENV_VAR, raising=False)
        assert parse_cache_url("C:/caches/c.json") == ("json", "C:/caches/c.json")

    def test_create_backend_types(self, tmp_path):
        assert isinstance(create_backend("memory:"), MemoryBackend)
        assert isinstance(create_backend(f"json:{tmp_path}/c.json"), JsonFileBackend)
        backend = create_backend(f"sqlite:{tmp_path}/c.db")
        assert isinstance(backend, SqliteWalBackend)
        backend.close()


# ----------------------------------------------------------------------
# Behavior parity across every backend
# ----------------------------------------------------------------------
class TestBackendMatrix:
    @pytest.mark.parametrize("backend", ALL_BACKENDS)
    def test_store_lookup_round_trip(self, backend, tmp_path):
        cache = ClassificationCache(path=_url(backend, tmp_path))
        try:
            assert cache.backend_name == backend
            assert cache.persistent == (backend != "memory")
            cache.store("k", _entry("v"))
            assert cache.lookup("k") == _entry("v")
            assert cache.stats.hits == 1
        finally:
            cache.close()

    @pytest.mark.parametrize("backend", ALL_BACKENDS)
    def test_info_reports_the_backend(self, backend, tmp_path):
        cache = ClassificationCache(path=_url(backend, tmp_path))
        try:
            info = cache.info()
            assert info["backend"] == backend
            assert info["persistent"] == (backend != "memory")
            assert info["dirty"] == 0
            assert info["flushes"] == 0
        finally:
            cache.close()

    def test_memory_backend_persists_nothing(self, tmp_path):
        cache = ClassificationCache(path="memory:")
        cache.store("k", _entry("v"))
        cache.save()  # a no-op, not an error
        assert cache.stats.flushes == 0
        cache.close()
        reopened = ClassificationCache(path="memory:")
        assert len(reopened) == 0

    @pytest.mark.parametrize("backend", DURABLE)
    def test_save_and_reopen_keeps_entries_and_lru_order(self, backend, tmp_path):
        url = _url(backend, tmp_path)
        cache = ClassificationCache(path=url)
        for key in ("a", "b", "c"):
            cache.store(key, _entry(key))
        cache.lookup("a")  # LRU order becomes b, c, a
        cache.close()  # close() saves

        reopened = ClassificationCache(path=url, max_entries=3)
        try:
            assert list(reopened.keys()) == ["b", "c", "a"]
            reopened.store("d", _entry("d"))  # "b" is still the LRU entry
            assert "b" not in reopened
        finally:
            reopened.close(save=False)

    @pytest.mark.parametrize("backend", DURABLE)
    def test_load_returns_surviving_entry_count(self, backend, tmp_path):
        url = _url(backend, tmp_path)
        writer = ClassificationCache(path=url)
        for index in range(5):
            writer.store(f"k{index}", _entry(index))
        writer.close()

        bounded = ClassificationCache(path=url, max_entries=2)
        try:
            assert len(bounded) == 2
            # An explicit reload reads 5 rows but only 2 survive the budget.
            assert bounded.load() == 2
        finally:
            bounded.close(save=False)

    @pytest.mark.parametrize("backend", DURABLE)
    def test_compact_report_and_shrink(self, backend, tmp_path):
        url = _url(backend, tmp_path)
        cache = ClassificationCache(path=url)
        for index in range(200):
            cache.store(f"k{index}", _entry("x" * 200))
        # First compact materializes everything in the main store file (for
        # sqlite a plain save lands in the WAL sidecar until a checkpoint).
        grown = cache.compact()["bytes_after"]
        cache.clear()
        for index in range(3):
            cache.store(f"fresh{index}", _entry(index))
        report = cache.compact()
        try:
            assert report["backend"] == backend
            assert report["entries"] == 3
            assert report["bytes_before"] == grown
            assert report["bytes_after"] < grown
            reopened = ClassificationCache(path=url)
            assert set(reopened.keys()) == {"fresh0", "fresh1", "fresh2"}
            reopened.close(save=False)
        finally:
            cache.close(save=False)


# ----------------------------------------------------------------------
# Write-behind flushing
# ----------------------------------------------------------------------
class TestWriteBehind:
    @pytest.mark.parametrize("backend", DURABLE)
    def test_flush_is_partial_for_sqlite_full_for_json(self, backend, tmp_path):
        url = _url(backend, tmp_path)
        cache = ClassificationCache(path=url)
        try:
            for key in ("a", "b", "c"):
                cache.store(key, _entry(key))
            cache.save()
            baseline = cache.stats.flushed_entries
            cache.store("d", _entry("d"))
            assert cache.pending_dirty == 1
            written = cache.flush()
            assert cache.pending_dirty == 0
            # sqlite upserts just the dirty row; json rewrites the snapshot.
            expected = 1 if cache.backend.partial_flush else 4
            assert written == expected
            assert cache.stats.flushed_entries == baseline + expected
            assert cache.flush() == 0  # nothing dirty -> no-op
        finally:
            cache.close(save=False)
        reopened = ClassificationCache(path=url)
        assert set(reopened.keys()) == {"a", "b", "c", "d"}
        reopened.close(save=False)

    @pytest.mark.parametrize("backend", DURABLE)
    def test_count_threshold_triggers_background_flush(self, backend, tmp_path):
        url = _url(backend, tmp_path)
        cache = ClassificationCache(path=url, flush_max_dirty=2, flush_interval=60.0)
        try:
            assert cache.write_behind
            cache.store("k0", _entry(0))
            cache.store("k1", _entry(1))
            deadline = time.monotonic() + 10
            while cache.pending_dirty and time.monotonic() < deadline:
                time.sleep(0.01)
            assert cache.pending_dirty == 0
            assert cache.stats.flushes >= 1
        finally:
            cache.close(save=False)
        reopened = ClassificationCache(path=url)
        assert set(reopened.keys()) == {"k0", "k1"}
        reopened.close(save=False)

    @pytest.mark.parametrize("backend", DURABLE)
    def test_interval_threshold_triggers_background_flush(self, backend, tmp_path):
        url = _url(backend, tmp_path)
        cache = ClassificationCache(path=url, flush_interval=0.05)
        try:
            cache.store("k", _entry("v"))
            deadline = time.monotonic() + 10
            while cache.pending_dirty and time.monotonic() < deadline:
                time.sleep(0.01)
            assert cache.pending_dirty == 0
        finally:
            cache.close(save=False)
        reopened = ClassificationCache(path=url)
        assert "k" in reopened
        reopened.close(save=False)

    @pytest.mark.parametrize("backend", DURABLE)
    def test_flush_deletes_evicted_entries_from_the_store(self, backend, tmp_path):
        url = _url(backend, tmp_path)
        cache = ClassificationCache(path=url, max_entries=2)
        try:
            cache.store("a", _entry("a"))
            cache.store("b", _entry("b"))
            cache.save()
            cache.store("c", _entry("c"))  # evicts "a"
            assert cache.stats.evictions == 1
            cache.flush()
        finally:
            cache.close(save=False)
        reopened = ClassificationCache(path=url)
        assert set(reopened.keys()) == {"b", "c"}
        reopened.close(save=False)

    @pytest.mark.parametrize("backend", DURABLE)
    def test_clear_propagates_to_the_store_on_save(self, backend, tmp_path):
        url = _url(backend, tmp_path)
        cache = ClassificationCache(path=url)
        cache.store("a", _entry("a"))
        cache.store("b", _entry("b"))
        cache.save()
        cache.clear()
        cache.close()  # final save persists the deletions
        reopened = ClassificationCache(path=url)
        assert len(reopened) == 0
        reopened.close(save=False)


# ----------------------------------------------------------------------
# TTL expiry
# ----------------------------------------------------------------------
class TestTtl:
    @pytest.mark.parametrize("backend", ALL_BACKENDS)
    def test_expired_entries_read_as_misses(self, backend, tmp_path):
        cache = ClassificationCache(path=_url(backend, tmp_path), ttl_seconds=0.05)
        try:
            cache.store("k", _entry("v"))
            assert cache.lookup("k") is not None
            time.sleep(0.1)
            assert cache.peek("k") is None  # read-only: no reap, no stats
            assert cache.stats.expirations == 0
            assert cache.lookup("k") is None
            assert cache.stats.expirations == 1
            assert "k" not in cache
        finally:
            cache.close(save=False)

    @pytest.mark.parametrize("backend", DURABLE)
    def test_ttl_clock_across_restarts(self, backend, tmp_path):
        """sqlite persists store times; json restamps them at load."""
        url = _url(backend, tmp_path)
        store = create_backend(url)
        store.write_snapshot([("old", _entry("old"), time.time() - 100.0)])
        store.close()
        cache = ClassificationCache(path=url, ttl_seconds=50.0)
        try:
            if backend == "sqlite":
                assert cache.lookup("old") is None
                assert cache.stats.expirations == 1
            else:
                assert cache.lookup("old") is not None
        finally:
            cache.close(save=False)


# ----------------------------------------------------------------------
# Corruption quarantine (satellite 2)
# ----------------------------------------------------------------------
class TestCorruptionQuarantine:
    def _corrupt_store(self, backend, tmp_path):
        url = _url(backend, tmp_path)
        path = _store_path(url)
        if backend == "json":
            with open(path, "w", encoding="utf-8") as handle:
                handle.write('{"schema": 2, "entries": [["k", {"complex')
        else:
            with open(path, "wb") as handle:
                handle.write(b"this is definitely not a sqlite database\n")
        return url, path

    @pytest.mark.parametrize("backend", DURABLE)
    def test_corrupt_store_is_quarantined_by_default(self, backend, tmp_path, caplog):
        url, path = self._corrupt_store(backend, tmp_path)
        original = open(path, "rb").read()
        with caplog.at_level("WARNING", logger="repro.engine.cache"):
            cache = ClassificationCache(path=url)
        try:
            assert len(cache) == 0
            assert any("quarantined corrupt cache" in r.message for r in caplog.records)
            corpses = [
                name
                for name in os.listdir(tmp_path)
                if ".corrupt-" in name and not name.endswith(("-wal", "-shm"))
            ]
            assert len(corpses) == 1
            # The bad bytes are preserved for post-mortems, never deleted.
            with open(tmp_path / corpses[0], "rb") as handle:
                assert handle.read() == original
            # The cache is usable and persists to the now-clean path.
            cache.store("k", _entry("v"))
            cache.save()
        finally:
            cache.close(save=False)
        reopened = ClassificationCache(path=url)
        assert "k" in reopened
        reopened.close(save=False)

    @pytest.mark.parametrize("backend", DURABLE)
    def test_quarantine_false_raises_corruption_error(self, backend, tmp_path):
        url, _path = self._corrupt_store(backend, tmp_path)
        with pytest.raises(CacheCorruptionError):
            ClassificationCache(path=url, quarantine=False)

    def test_structural_errors_are_never_quarantined(self, tmp_path):
        """Unknown schemas may be future files: error out, leave them alone."""
        path = tmp_path / "future.json"
        path.write_text(json.dumps({"schema": 999, "entries": []}))
        with pytest.raises(ValueError) as excinfo:
            ClassificationCache(path=f"json:{path}")
        assert not isinstance(excinfo.value, CacheCorruptionError)
        assert path.exists()
        assert not any(".corrupt-" in name for name in os.listdir(tmp_path))


# ----------------------------------------------------------------------
# Export / import interchange
# ----------------------------------------------------------------------
class TestExportImport:
    @pytest.mark.parametrize("source", DURABLE + ("memory",))
    @pytest.mark.parametrize("target", DURABLE)
    def test_snapshots_round_trip_byte_identically(self, source, target, tmp_path):
        origin = ClassificationCache(path=_url(source, tmp_path / "src"))
        for key in ("b", "a", "c"):  # deliberate non-sorted LRU order
            origin.store(key, _entry(key))
        origin.lookup("b")
        exported = origin.export_text()
        origin.close(save=False)

        imported = ClassificationCache(path=_url(target, tmp_path / "dst"))
        for key, entry in parse_snapshot_text(exported, "test"):
            imported.store(key, entry)
        assert imported.export_text() == exported
        imported.close()  # persist, then prove the store reloads identically

        reopened = ClassificationCache(path=_url(target, tmp_path / "dst"))
        assert reopened.export_text() == exported
        reopened.close(save=False)

    def test_export_is_the_canonical_schema_2_document(self, tmp_path):
        cache = ClassificationCache(path=_url("json", tmp_path))
        cache.store("k", _entry("v"))
        exported = cache.export_text()
        cache.close(save=False)
        payload = json.loads(exported)
        assert payload["schema"] == 2
        assert payload["entries"] == [["k", _entry("v")]]
        assert exported == dump_snapshot_text([("k", _entry("v"))])


# ----------------------------------------------------------------------
# sqlite multi-process semantics
# ----------------------------------------------------------------------
class TestSqliteSharedStore:
    def test_two_writers_merge_disjoint_keys(self, tmp_path):
        url = _url("sqlite", tmp_path)
        first = ClassificationCache(path=url)
        second = ClassificationCache(path=url)  # opened before first persists
        first.store("a", _entry("a"))
        first.flush()
        second.store("b", _entry("b"))
        # A full save from `second` must not clear `first`'s rows: snapshots
        # only upsert owned rows and delete tracked-dead keys.
        second.save()
        first.close(save=False)
        second.close(save=False)

        merged = ClassificationCache(path=url)
        try:
            assert set(merged.keys()) == {"a", "b"}
        finally:
            merged.close(save=False)

    def test_compact_is_the_single_writer_rewrite(self, tmp_path):
        url = _url("sqlite", tmp_path)
        other = ClassificationCache(path=url)
        other.store("foreign", _entry("f"))
        other.flush()
        other.close(save=False)

        owner = ClassificationCache(path=url)  # loads "foreign" too
        owner.clear()
        owner.store("mine", _entry("m"))
        owner.compact()
        owner.close(save=False)

        reopened = ClassificationCache(path=url)
        try:
            assert set(reopened.keys()) == {"mine"}
        finally:
            reopened.close(save=False)


# ----------------------------------------------------------------------
# Cross-process durability (satellites 1 and 4)
# ----------------------------------------------------------------------
_HAMMER_SCRIPT = textwrap.dedent(
    """
    import sys
    from repro.engine.cache import ClassificationCache

    url, iterations, tag = sys.argv[1], int(sys.argv[2]), sys.argv[3]
    for index in range(iterations):
        # quarantine=False: any corruption crashes this writer loudly.
        cache = ClassificationCache(path=url, quarantine=False)
        cache.store(f"{tag}-{index}", {"complexity": "CONSTANT", "tag": tag})
        cache.save()
        cache.close(save=False)
    """
)

_CRASH_SCRIPT = textwrap.dedent(
    """
    import sys
    from repro.engine.cache import ClassificationCache

    cache = ClassificationCache(path=sys.argv[1])
    index = 0
    while True:
        key = f"k{index}"
        cache.store(key, {"complexity": "CONSTANT", "i": index})
        cache.flush()
        print(key, flush=True)  # ack: this key is durable
        index += 1
    """
)


class TestCrossProcessDurability:
    def test_concurrent_json_savers_never_corrupt_the_file(self, tmp_path):
        """Regression for the fixed ``{path}.tmp`` temp name (satellite 1).

        Two processes hammering ``save()`` on one json path used to share a
        single temp file and interleave writes into it; with per-writer
        ``mkstemp`` names the last atomic rename simply wins.  The file must
        parse at every instant and both writers must survive.
        """
        path = tmp_path / "shared.json"
        url = f"json:{path}"
        seeder = ClassificationCache(path=url)
        seeder.store("seed", _entry("seed"))
        seeder.close()

        env = _subprocess_env()
        writers = [
            subprocess.Popen(
                [sys.executable, "-c", _HAMMER_SCRIPT, url, "40", tag],
                env=env,
                stderr=subprocess.PIPE,
            )
            for tag in ("alpha", "beta")
        ]
        observed_parses = 0
        while any(writer.poll() is None for writer in writers):
            payload = json.loads(path.read_text())  # atomic rename: never torn
            assert payload["schema"] == 2
            observed_parses += 1
            time.sleep(0.005)
        for writer in writers:
            _, stderr = writer.communicate(timeout=60)
            assert writer.returncode == 0, stderr.decode()
        assert observed_parses > 0
        final = json.loads(path.read_text())
        assert final["schema"] == 2
        # No temp-file litter: every mkstemp file was renamed or unlinked.
        assert [p.name for p in tmp_path.iterdir()] == ["shared.json"]

    @pytest.mark.parametrize("backend", DURABLE)
    def test_sigkill_mid_write_loses_at_most_the_in_flight_flush(
        self, backend, tmp_path
    ):
        """Crash-recovery acceptance (satellite 4).

        A writer stores, flushes, and acknowledges keys until it is killed
        with SIGKILL.  The survivor store must (a) still parse — no
        quarantine, no corruption error — and (b) contain every acknowledged
        key: an ack is only printed after the flush returned.
        """
        url = _url(backend, tmp_path)
        writer = subprocess.Popen(
            [sys.executable, "-c", _CRASH_SCRIPT, url],
            env=_subprocess_env(),
            stdout=subprocess.PIPE,
            text=True,
        )
        acked = []
        try:
            while len(acked) < 5:
                line = writer.stdout.readline()
                if not line:
                    break
                acked.append(line.strip())
        finally:
            os.kill(writer.pid, signal.SIGKILL)
            writer.wait(timeout=60)
            writer.stdout.close()
        assert len(acked) >= 5

        survivor = ClassificationCache(path=url, quarantine=False)
        try:
            for key in acked:
                assert key in survivor, f"acknowledged {key} lost after SIGKILL"
        finally:
            survivor.close(save=False)
