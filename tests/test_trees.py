"""Tests for the rooted-tree substrate and the instance generators."""

import pytest

from repro.trees import (
    RootedTree,
    TreeBuilder,
    TreeError,
    balanced_tree_with_size,
    complete_tree,
    concatenated_lower_bound_tree,
    hairy_path,
    lower_bound_tree,
    lower_bound_tree_size,
    nearest_full_tree_size,
    path_tree,
    random_full_tree,
)


class TestRootedTree:
    def test_from_parent_list(self):
        tree = RootedTree.from_parent_list([None, 0, 0, 1, 1])
        assert tree.root == 0
        assert tree.children[0] == [1, 2]
        assert tree.num_nodes == 5

    def test_two_roots_rejected(self):
        with pytest.raises(TreeError):
            RootedTree.from_parent_list([None, None])

    def test_cycle_rejected(self):
        with pytest.raises(TreeError):
            RootedTree(parent=[1, 0], children=[[1], [0]]).validate()

    def test_depths_and_height(self):
        tree = complete_tree(2, 3)
        depths = tree.depths()
        assert depths[tree.root] == 0
        assert tree.height() == 3
        assert max(depths) == 3

    def test_subtree_sizes(self):
        tree = complete_tree(2, 2)
        sizes = tree.subtree_sizes()
        assert sizes[tree.root] == 7

    def test_leaves_and_internal(self):
        tree = complete_tree(2, 3)
        assert len(tree.leaves()) == 8
        assert len(tree.internal_nodes()) == 7

    def test_bfs_order_starts_at_root(self):
        tree = complete_tree(2, 3)
        order = tree.bfs_order()
        assert order[0] == tree.root
        assert len(order) == tree.num_nodes

    def test_bottom_up_order_children_first(self):
        tree = complete_tree(2, 3)
        position = {node: i for i, node in enumerate(tree.topological_bottom_up())}
        for node in tree.nodes():
            for child in tree.children[node]:
                assert position[child] < position[node]

    def test_ancestors_and_path_to_root(self):
        tree = hairy_path(2, 5)
        leaf = max(tree.nodes(), key=lambda v: tree.depths()[v])
        assert tree.path_to_root(leaf)[0] == leaf
        assert tree.path_to_root(leaf)[-1] == tree.root
        assert len(tree.ancestors(leaf, limit=2)) == 2

    def test_distance(self):
        tree = complete_tree(2, 3)
        a, b = tree.children[tree.root]
        assert tree.distance(a, b) == 2
        assert tree.distance(tree.root, a) == 1
        assert tree.distance(a, a) == 0

    def test_port_of(self):
        tree = complete_tree(2, 2)
        left, right = tree.children[tree.root]
        assert tree.port_of(left) == 0
        assert tree.port_of(right) == 1
        assert tree.port_of(tree.root) == 0

    def test_identifiers_unique(self):
        tree = complete_tree(2, 4)
        ids = tree.default_identifiers(seed=3)
        assert len(set(ids)) == tree.num_nodes

    def test_descendants(self):
        tree = complete_tree(2, 2)
        child = tree.children[tree.root][0]
        assert len(tree.descendants(child)) == 2

    def test_nodes_within_distance_below(self):
        tree = complete_tree(2, 3)
        assert len(tree.nodes_within_distance_below(tree.root, 2)) == 6


class TestGenerators:
    def test_complete_tree_size(self):
        assert complete_tree(2, 4).num_nodes == 31
        assert complete_tree(3, 3).num_nodes == 40

    def test_complete_tree_is_full(self):
        assert complete_tree(2, 5).is_full_delta_ary(2)
        assert complete_tree(3, 3).is_full_delta_ary(3)

    def test_hairy_path_structure(self):
        tree = hairy_path(2, 10)
        assert tree.is_full_delta_ary(2)
        assert tree.height() == 10
        assert tree.num_nodes == 21
        assert len(tree.internal_nodes()) == 10

    def test_random_full_tree_is_full(self):
        tree = random_full_tree(2, 50, seed=1)
        assert tree.is_full_delta_ary(2)
        assert tree.num_nodes == 101

    def test_random_full_tree_reproducible(self):
        first = random_full_tree(2, 30, seed=5)
        second = random_full_tree(2, 30, seed=5)
        assert first.parent == second.parent

    def test_balanced_tree_with_size(self):
        tree = balanced_tree_with_size(2, 31)
        assert tree.num_nodes == 31
        assert tree.is_full_delta_ary(2)
        assert tree.height() == 4

    def test_balanced_tree_invalid_size_rejected(self):
        with pytest.raises(TreeError):
            balanced_tree_with_size(2, 30)

    def test_path_tree(self):
        tree = path_tree(6)
        assert tree.num_nodes == 7
        assert tree.height() == 6

    def test_nearest_full_tree_size(self):
        assert nearest_full_tree_size(2, 100) % 2 == 1
        assert nearest_full_tree_size(2, 100) >= 100

    def test_builder_rejects_second_root(self):
        builder = TreeBuilder()
        builder.add_root()
        with pytest.raises(TreeError):
            builder.add_root()


class TestLowerBoundTrees:
    def test_size_matches_closed_form(self):
        for x in (2, 3, 5):
            for k in (0, 1, 2, 3):
                bipolar = lower_bound_tree(x, k)
                assert bipolar.num_nodes == lower_bound_tree_size(x, k)

    def test_growth_is_theta_x_to_k(self):
        # n = Θ(x^k): doubling x should multiply the size by roughly 2^k.
        for k in (1, 2, 3):
            small = lower_bound_tree_size(4, k)
            large = lower_bound_tree_size(8, k)
            ratio = large / small
            assert 2 ** k * 0.5 <= ratio <= 2 ** k * 2.5

    def test_core_path_length(self):
        bipolar = lower_bound_tree(5, 2)
        assert len(bipolar.core_path()) == 5
        assert bipolar.layer[bipolar.source] == 2
        assert bipolar.layer[bipolar.sink] == 2

    def test_layers_partition_nodes(self):
        bipolar = lower_bound_tree(4, 3)
        counted = sum(len(bipolar.nodes_in_layer(layer)) for layer in range(0, 4))
        assert counted == bipolar.num_nodes

    def test_concatenated_tree_middle_edge(self):
        bipolar = concatenated_lower_bound_tree(4, 2, 1)
        middle = bipolar.tree.metadata["middle_edge"]
        first_end, second_start = middle
        assert bipolar.tree.parent[second_start] == first_end
        assert bipolar.layer[first_end] == 2
        assert bipolar.layer[second_start] == 1

    def test_concatenated_size(self):
        bipolar = concatenated_lower_bound_tree(3, 1, 2)
        expected = lower_bound_tree_size(3, 1) + lower_bound_tree_size(3, 2)
        assert bipolar.num_nodes == expected

    def test_trees_are_valid_rooted_trees(self):
        bipolar = lower_bound_tree(3, 2, delta=3)
        bipolar.tree.validate()
        assert bipolar.tree.root == bipolar.source
