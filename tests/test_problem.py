"""Unit tests for the LCL problem formalism (Definitions 4.1–4.6)."""

import pytest

from repro.core import Configuration, LCLError, LCLProblem
from repro.problems import (
    branch_two_coloring,
    maximal_independent_set,
    three_coloring,
    two_coloring,
    unsolvable_problem,
)


class TestConstruction:
    def test_create_infers_labels(self):
        problem = LCLProblem.create(2, [("1", ("2", "2"))])
        assert problem.labels == frozenset({"1", "2"})

    def test_wrong_arity_rejected(self):
        with pytest.raises(LCLError):
            LCLProblem.create(2, [("1", ("2",))])

    def test_labels_outside_alphabet_rejected(self):
        with pytest.raises(LCLError):
            LCLProblem(2, frozenset({"1"}), frozenset({Configuration("1", ("2", "2"))}))

    def test_delta_must_be_positive(self):
        with pytest.raises(LCLError):
            LCLProblem.create(0, [])

    def test_three_coloring_has_nine_configurations(self):
        assert three_coloring().num_configurations == 9

    def test_two_coloring_has_two_configurations(self):
        assert two_coloring().num_configurations == 2

    def test_mis_matches_equation_3(self):
        problem = maximal_independent_set()
        expected = {
            Configuration("1", ("a", "a")),
            Configuration("1", ("a", "b")),
            Configuration("1", ("b", "b")),
            Configuration("a", ("b", "b")),
            Configuration("b", ("1", "b")),
            Configuration("b", ("1", "1")),
        }
        assert problem.configurations == frozenset(expected)


class TestRestriction:
    def test_restrict_drops_configurations(self):
        problem = three_coloring()
        restricted = problem.restrict({"1", "2"})
        assert restricted.labels == frozenset({"1", "2"})
        assert restricted.configurations == frozenset(
            {Configuration("1", ("2", "2")), Configuration("2", ("1", "1"))}
        )

    def test_restrict_to_all_labels_is_identity(self):
        problem = maximal_independent_set()
        assert problem.restrict(problem.labels).configurations == problem.configurations

    def test_restrict_is_monotone(self):
        problem = three_coloring()
        small = problem.restrict({"1", "2"})
        smaller = problem.restrict({"1"})
        assert smaller.configurations <= small.configurations <= problem.configurations

    def test_normalize_drops_unused_labels(self):
        problem = LCLProblem.create(2, [("1", ("1", "1"))], labels=["1", "2"])
        assert problem.normalize().labels == frozenset({"1"})

    def test_relabel(self):
        problem = two_coloring().relabel({"1": "x", "2": "y"})
        assert problem.labels == frozenset({"x", "y"})
        assert Configuration("x", ("y", "y")) in problem.configurations

    def test_relabel_must_be_injective(self):
        with pytest.raises(LCLError):
            two_coloring().relabel({"1": "x", "2": "x"})


class TestPathForm:
    def test_path_form_of_three_coloring(self):
        path = three_coloring().path_form()
        assert path.delta == 1
        assert Configuration("1", ("2",)) in path.configurations
        assert Configuration("1", ("1",)) not in path.configurations
        assert path.num_configurations == 6

    def test_path_edges_of_mis(self):
        edges = maximal_independent_set().path_edges()
        assert ("1", "a") in edges
        assert ("b", "1") in edges
        assert ("a", "b") in edges
        assert ("a", "1") not in edges


class TestContinuations:
    def test_continuation_below(self):
        problem = maximal_independent_set()
        assert problem.has_continuation_below("1")
        assert problem.has_continuation_below("b")

    def test_continuation_below_with_labels(self):
        problem = maximal_independent_set()
        assert problem.has_continuation_below_with("b", {"b", "1"})
        assert not problem.has_continuation_below_with("a", {"a", "1"})

    def test_continuation_of_is_deterministic(self):
        problem = three_coloring()
        first = problem.continuation_of("1")
        second = problem.continuation_of("1")
        assert first == second
        assert first is not None and first.parent == "1"


class TestSolvability:
    def test_unsolvable_problem_detected(self):
        assert not unsolvable_problem().is_solvable()
        assert unsolvable_problem().infinite_continuation_labels() == frozenset()

    def test_solvable_problems(self):
        for problem in (three_coloring(), two_coloring(), maximal_independent_set()):
            assert problem.is_solvable()

    def test_infinite_continuation_labels_of_mis(self):
        assert maximal_independent_set().infinite_continuation_labels() == frozenset({"1", "a", "b"})

    def test_zero_round_solvability(self):
        assert not maximal_independent_set().is_zero_round_solvable()
        assert not three_coloring().is_zero_round_solvable()
        trivial = LCLProblem.create(2, [("1", ("1", "1"))])
        assert trivial.is_zero_round_solvable()

    def test_special_configurations(self):
        specials = maximal_independent_set().special_configurations()
        assert Configuration("b", ("1", "b")) in specials
        assert len(specials) == 1
        assert three_coloring().special_configurations() == []


class TestIntrospection:
    def test_description_size_positive(self):
        assert three_coloring().description_size() > 0

    def test_parents(self):
        assert branch_two_coloring().parents() == frozenset({"1", "2"})

    def test_summary_mentions_name(self):
        assert "3-coloring" in three_coloring().summary()
