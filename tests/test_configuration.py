"""Unit tests for configurations (Definition 4.1)."""

import pytest

from repro.core.configuration import Configuration, configuration, configurations_from_pairs


class TestCanonicalization:
    def test_children_are_sorted(self):
        assert Configuration("1", ("3", "2")).children == ("2", "3")

    def test_order_of_children_is_irrelevant(self):
        assert Configuration("1", ("2", "3")) == Configuration("1", ("3", "2"))

    def test_hashing_respects_equality(self):
        assert len({Configuration("1", ("2", "3")), Configuration("1", ("3", "2"))}) == 1

    def test_different_parent_is_different_configuration(self):
        assert Configuration("1", ("2", "3")) != Configuration("2", ("2", "3"))

    def test_multiset_semantics(self):
        config = Configuration("a", ("b", "b", "c"))
        assert config.child_multiset() == {"b": 2, "c": 1}


class TestProperties:
    def test_delta(self):
        assert configuration("1", "2", "3", "4").delta == 3

    def test_labels(self):
        assert configuration("1", "2", "2").labels == frozenset({"1", "2"})

    def test_uses_only(self):
        config = configuration("1", "2", "2")
        assert config.uses_only({"1", "2", "3"})
        assert not config.uses_only({"1"})

    def test_is_special_true(self):
        assert configuration("b", "b", "1").is_special()

    def test_is_special_false(self):
        assert not configuration("1", "2", "3").is_special()

    def test_contains_child(self):
        config = configuration("1", "2", "3")
        assert config.contains_child("2")
        assert not config.contains_child("1")

    def test_matches_children(self):
        config = configuration("1", "2", "3")
        assert config.matches_children(["3", "2"])
        assert not config.matches_children(["2", "2"])

    def test_child_orderings_distinct(self):
        config = configuration("1", "2", "2")
        assert list(config.child_orderings()) == [("2", "2")]
        config2 = configuration("1", "2", "3")
        assert sorted(config2.child_orderings()) == [("2", "3"), ("3", "2")]

    def test_replace_one_child(self):
        config = configuration("1", "2", "2")
        assert config.replace_one_child("2", "3") == configuration("1", "2", "3")

    def test_replace_one_child_missing_raises(self):
        with pytest.raises(ValueError):
            configuration("1", "2", "2").replace_one_child("9", "3")

    def test_to_text(self):
        assert configuration("1", "3", "2").to_text() == "1 : 2 3"


class TestBulkConstruction:
    def test_configurations_from_pairs(self):
        configs = configurations_from_pairs([("1", ("2", "2")), ("2", ("1", "1"))])
        assert configuration("1", "2", "2") in configs
        assert configuration("2", "1", "1") in configs
        assert len(configs) == 2
