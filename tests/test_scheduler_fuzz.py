"""Randomized property tests for the scheduler's concurrency invariants.

A seeded harness interleaves submit / duplicate-submit / deadline / cancel
operations against :class:`ClassificationScheduler` on all three worker
backends and then asserts the structural invariants that must hold after
*any* interleaving:

* **No leaked futures** — every job's future resolves (payload or
  ``SearchInterrupted``); ``wait_idle`` reaches genuine quiescence.
* **No leaked worker slots** — after the drain, ``slots_in_use == 0`` and
  the in-flight table is empty, even when searches timed out or were hard
  killed.
* **Flight conservation** — every search ever created ends in exactly one
  terminal outcome: ``flights == completed + failed + cancelled + timeouts``
  (and nothing unexpectedly ``failed``).
* **No cross-key mix-ups** — a resolved payload always belongs to the key it
  was submitted for.
* **Cache integrity** — exactly the completed searches are cached
  (interrupted searches never poison the cache).
* **Single flight** — in interleavings without cancellation, the number of
  searches equals the number of unique non-cancelled canonical keys, exactly.

The default lane runs a handful of seeds per backend so every CI run fuzzes
a little; the ``stress`` lane (``pytest -m stress``) sweeps 70 seeds per
backend — 210 interleavings — with longer op sequences.
"""

import random
import time

import pytest

from problem_pools import distinct_forms
from repro.core import SearchInterrupted, checkpoint
from repro.workers import (
    BACKEND_NAMES,
    JOB_CACHE_HIT,
    PRIORITIES,
    ClassificationScheduler,
    create_backend,
)

# ----------------------------------------------------------------------
# The fuzz search task
# ----------------------------------------------------------------------
def _fuzz_task(payload):
    """A deterministic stand-in search: sleeps a key-dependent time.

    Module-level and argument-picklable so the process backend can run it.
    The sleep happens in small checkpointed slices, so deadlines and
    cancellation interrupt it exactly like the real certificate searches.
    The key-derived duration (0–20 ms) makes timing deterministic per key
    without any cross-process shared state.
    """
    key = payload[0]
    slices = sum(key.encode()) % 5  # 0..4 slices of 5 ms
    for _ in range(slices):
        checkpoint()
        time.sleep(0.005)
    checkpoint()
    return key, {"complexity": f"fuzz:{key}"}


# The pool is shared with the session facade's endpoint parity tests and
# the loadgen harness (repro.problems.pools, re-exported by
# tests/problem_pools.py), so every suite fuzzes the same key distribution.
_FORM_POOL = distinct_forms(12)


# ----------------------------------------------------------------------
# The harness
# ----------------------------------------------------------------------
def _run_interleaving(backend_name, seed, ops, allow_cancellation):
    """Execute one random op sequence; return nothing, assert everything."""
    rng = random.Random(seed)
    workers = rng.randint(1, 4)
    backend = create_backend(backend_name, workers=workers)
    scheduler = ClassificationScheduler(backend=backend, task=_fuzz_task)
    jobs = []  # (job, key)
    submit_calls = 0
    try:
        for _ in range(ops):
            roll = rng.random()
            if roll < 0.45 or not jobs:
                # Submit: fresh key or duplicate of an earlier one.
                form = rng.choice(_FORM_POOL)
                priority = rng.choice(PRIORITIES)
                deadline = None
                if allow_cancellation and rng.random() < 0.35:
                    deadline = rng.uniform(0.001, 0.04)
                jobs.append(
                    (scheduler.submit(form, priority=priority, deadline=deadline),
                     form.key)
                )
                submit_calls += 1
            elif allow_cancellation and roll < 0.60:
                job, _key = rng.choice(jobs)
                job.cancel()  # may be live, resolved, or a cache hit
            elif allow_cancellation and roll < 0.68:
                _job, key = rng.choice(jobs)
                scheduler.cancel(key)
            elif roll < 0.80:
                time.sleep(rng.uniform(0.0, 0.01))
            else:
                form = rng.choice(_FORM_POOL)
                jobs.append((scheduler.submit(form), form.key))
                submit_calls += 1

        # ------------------------------------------------------------------
        # Drain, then assert the invariants.
        # ------------------------------------------------------------------
        completed_payloads = 0
        for job, key in jobs:
            try:
                payload = job.result(timeout=30)
            except SearchInterrupted:
                continue
            completed_payloads += 1
            # No cross-key mix-ups: the payload names its own key.
            assert payload["complexity"] == f"fuzz:{key}", (key, payload)
        assert completed_payloads >= 1 or allow_cancellation

        assert scheduler.wait_idle(timeout=30), "scheduler never quiesced"
        assert all(job.future.done() for job, _key in jobs), "leaked futures"
        assert scheduler.in_flight == 0
        assert scheduler.slots_in_use == 0, "leaked worker slots"

        stats = scheduler.stats
        assert stats.submitted == submit_calls
        assert stats.flights == (
            stats.completed + stats.failed + stats.cancelled + stats.timeouts
        ), stats.as_dict()
        assert stats.failed == 0, stats.as_dict()
        assert stats.scheduled <= stats.flights

        # Cache integrity: exactly the completed searches are cached.
        cached_keys = [
            key for key in {key for _job, key in jobs}
            if scheduler.cache.peek(key) is not None
        ]
        assert len(cached_keys) == stats.completed, stats.as_dict()

        if not allow_cancellation:
            # Pure single-flight run: one search per unique key, exactly.
            unique_keys = {key for _job, key in jobs}
            assert stats.flights == len(unique_keys)
            assert stats.scheduled == stats.flights
            assert stats.completed == stats.flights
            assert stats.timeouts == 0 and stats.cancelled == 0
            hits_and_shares = stats.deduped + stats.cache_hits
            assert hits_and_shares == submit_calls - len(unique_keys)
            assert all(
                scheduler.cache.peek(key) is not None for key in unique_keys
            )
    finally:
        scheduler.close()


# ----------------------------------------------------------------------
# Default lane: a quick fuzz on every run
# ----------------------------------------------------------------------
@pytest.mark.parametrize("backend_name", BACKEND_NAMES)
@pytest.mark.parametrize("seed", range(4))
def test_fuzz_interleavings_quick(backend_name, seed):
    _run_interleaving(backend_name, seed, ops=30, allow_cancellation=True)


@pytest.mark.parametrize("backend_name", BACKEND_NAMES)
@pytest.mark.parametrize("seed", range(2))
def test_fuzz_single_flight_exactness(backend_name, seed):
    """No cancellation: searches == unique canonical keys, exactly."""
    _run_interleaving(
        backend_name, 1000 + seed, ops=25, allow_cancellation=False
    )


def test_cache_hit_jobs_are_uncancellable_and_cheap():
    """Duplicate of a cached key short-circuits: no flight, no future leak."""
    scheduler = ClassificationScheduler(task=_fuzz_task)
    form = _FORM_POOL[0]
    scheduler.submit(form).result(timeout=10)
    job = scheduler.submit(form)
    assert job.kind == JOB_CACHE_HIT
    assert job.done and job.cancel() is False
    assert scheduler.stats.flights == 1
    scheduler.close()


# ----------------------------------------------------------------------
# Stress lane: 70 seeds x 3 backends = 210 interleavings (pytest -m stress)
# ----------------------------------------------------------------------
@pytest.mark.stress
@pytest.mark.parametrize("backend_name", BACKEND_NAMES)
@pytest.mark.parametrize("seed", range(70))
def test_fuzz_interleavings_stress(backend_name, seed):
    _run_interleaving(backend_name, 5000 + seed, ops=60, allow_cancellation=True)
