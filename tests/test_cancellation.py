"""Tests for the cooperative cancellation primitives and their hooks in the
certificate searches (deadlines, cancel scopes, checkpoints)."""

import threading
import time

import pytest

from repro.core import (
    CancelToken,
    SearchCancelled,
    SearchInterrupted,
    SearchTimeout,
    cancel_scope,
    checkpoint,
    classify,
    current_token,
)
from repro.core.cancellation import CANCELLED, TIMEOUT
from repro.problems import catalog, hard_problem


class TestCancelToken:
    def test_fresh_token_passes_checks(self):
        token = CancelToken()
        assert not token.cancelled
        assert not token.expired
        assert token.remaining() is None
        token.check()  # no raise

    def test_cancel_trips_the_flag_and_check_raises(self):
        token = CancelToken()
        token.cancel()
        assert token.cancelled
        with pytest.raises(SearchCancelled) as excinfo:
            token.check(key="some-key")
        assert excinfo.value.outcome == CANCELLED
        assert excinfo.value.key == "some-key"

    def test_cancel_with_timeout_reason_raises_search_timeout(self):
        token = CancelToken()
        token.cancel(reason=TIMEOUT)
        with pytest.raises(SearchTimeout):
            token.check()

    def test_budget_deadline_expires(self):
        token = CancelToken.with_budget(0.01)
        assert token.remaining() is not None
        time.sleep(0.03)
        assert token.expired
        with pytest.raises(SearchTimeout) as excinfo:
            token.check()
        assert excinfo.value.outcome == TIMEOUT
        assert token.remaining() == 0.0

    def test_no_budget_means_no_deadline(self):
        token = CancelToken.with_budget(None)
        assert token.deadline is None
        assert not token.expired

    def test_interrupted_is_a_runtime_error(self):
        # Upper layers catch SearchInterrupted once for both flavors.
        assert issubclass(SearchCancelled, SearchInterrupted)
        assert issubclass(SearchTimeout, SearchInterrupted)
        assert issubclass(SearchInterrupted, RuntimeError)

    def test_multiprocessing_event_works_as_flag(self):
        import multiprocessing

        flag = multiprocessing.Event()
        token = CancelToken(flag=flag)
        token.check()
        flag.set()
        assert token.cancelled


class TestCancelScope:
    def test_checkpoint_without_scope_is_a_no_op(self):
        assert current_token() is None
        checkpoint()  # no raise

    def test_scope_installs_and_restores_the_token(self):
        token = CancelToken()
        with cancel_scope(token):
            assert current_token() is token
        assert current_token() is None

    def test_scopes_nest_and_none_inherits(self):
        outer, inner = CancelToken(), CancelToken()
        with cancel_scope(outer):
            with cancel_scope(inner):
                assert current_token() is inner
            assert current_token() is outer
            with cancel_scope(None):  # a no-op scope keeps the outer token
                assert current_token() is outer
        assert current_token() is None

    def test_checkpoint_raises_inside_a_cancelled_scope(self):
        token = CancelToken()
        token.cancel()
        with cancel_scope(token):
            with pytest.raises(SearchCancelled):
                checkpoint()

    def test_scope_is_thread_local(self):
        token = CancelToken()
        seen = []

        def worker():
            seen.append(current_token())

        with cancel_scope(token):
            thread = threading.Thread(target=worker)
            thread.start()
            thread.join(timeout=10)
        assert seen == [None]


class TestSearchCheckpoints:
    """The decision procedure itself honors deadlines and cancellation."""

    def test_hard_problem_times_out_quickly(self):
        """A minutes-long adversarial search aborts within a fraction of a second."""
        problem = hard_problem(12)
        start = time.monotonic()
        with cancel_scope(CancelToken.with_budget(0.3)):
            with pytest.raises(SearchTimeout):
                classify(problem)
        # Generous CI margin: the search checkpoints every subset/tuple, so
        # an abort several seconds late would mean the hooks are gone.
        assert time.monotonic() - start < 5.0

    def test_cross_thread_cancel_interrupts_a_running_search(self):
        problem = hard_problem(12)
        token = CancelToken()
        outcome = []

        def search():
            try:
                with cancel_scope(token):
                    classify(problem)
                outcome.append("completed")
            except SearchCancelled:
                outcome.append("cancelled")

        thread = threading.Thread(target=search)
        thread.start()
        time.sleep(0.2)
        token.cancel()
        thread.join(timeout=30)
        assert not thread.is_alive()
        assert outcome == ["cancelled"]

    def test_unarmed_scope_changes_nothing(self):
        for name, (problem, expected) in catalog().items():
            with cancel_scope(CancelToken()):
                assert classify(problem).complexity == expected, name

    def test_hard_problem_completes_without_a_deadline(self):
        """The small family member classifies to the documented class."""
        problem = hard_problem(3)  # ~40ms: cheap enough for the default lane
        result = classify(problem)
        assert result.complexity.value == "Theta(log n)"
