"""Tests for the classification service: protocol, server, client, streaming,
concurrent clients (single-flight), and cache warming."""

import json
import threading
import time

import pytest

from repro.core import classify
from repro.engine import ClassificationCache, canonical_key, problem_to_dict
from repro.problems import catalog
from repro.problems.random_problems import random_problem
from repro.service import ServiceClient, ServiceError, ThreadedService
from repro.service.protocol import (
    ERROR_BAD_REQUEST,
    ERROR_PARSE,
    ERROR_UNKNOWN_OP,
    ProtocolError,
    decode_request,
    done_frame,
    encode_frame,
    error_frame,
    hello_frame,
    is_terminal_frame,
    item_frame,
    result_frame,
)


# ----------------------------------------------------------------------
# Protocol
# ----------------------------------------------------------------------
class TestProtocol:
    def test_request_round_trip(self):
        line = encode_frame(
            {"id": 7, "op": "classify", "params": {"problem": "1 : 1 1"}}
        )
        request = decode_request(line)
        assert request.id == 7
        assert request.op == "classify"
        assert request.params == {"problem": "1 : 1 1"}

    def test_frames_are_single_lines(self):
        frames = [
            hello_frame(),
            item_frame(1, 0, {"complexity": "O(1)"}),
            done_frame(1, {"count": 1}),
            result_frame(2, {"ok": True}),
            error_frame(3, ProtocolError(ERROR_BAD_REQUEST, "nope")),
        ]
        for frame in frames:
            wire = encode_frame(frame)
            assert wire.endswith("\n") and "\n" not in wire[:-1]
            assert json.loads(wire) == frame

    def test_decode_request_rejects_garbage(self):
        with pytest.raises(ProtocolError) as excinfo:
            decode_request("not json at all\n")
        assert excinfo.value.code == ERROR_PARSE

    def test_decode_request_rejects_unknown_op(self):
        with pytest.raises(ProtocolError) as excinfo:
            decode_request('{"id": 1, "op": "fly"}')
        assert excinfo.value.code == ERROR_UNKNOWN_OP

    def test_decode_request_rejects_bad_fields(self):
        for line in (
            '{"id": 1}',  # missing op
            '{"op": 42}',  # non-string op
            '{"op": "stats", "params": []}',  # non-object params
            '{"op": "stats", "id": [1]}',  # non-scalar id
        ):
            with pytest.raises(ProtocolError):
                decode_request(line)

    def test_terminal_frames(self):
        assert is_terminal_frame(done_frame(1, {}))
        assert is_terminal_frame(result_frame(1, {}))
        assert is_terminal_frame(error_frame(1, ProtocolError("x", "y")))
        assert not is_terminal_frame(hello_frame())
        assert not is_terminal_frame(item_frame(1, 0, {}))


# ----------------------------------------------------------------------
# TCP end-to-end
# ----------------------------------------------------------------------
def _batch_specs(count=24, labels=2, density=0.5):
    problems = [
        random_problem(labels, density=density, seed=seed) for seed in range(count)
    ]
    return problems, [problem_to_dict(problem) for problem in problems]


class TestServiceOverTcp:
    def test_classify_round_trip(self):
        problem, expected = catalog()["mis"]
        with ThreadedService() as address:
            with ServiceClient.connect_tcp(*address) as client:
                payload = client.classify(problem_to_dict(problem))
        assert payload["complexity"] == expected.value
        assert payload["from_cache"] is False
        assert payload["result"]["complexity"] == expected.name

    def test_text_problem_specs_are_parsed_server_side(self):
        with ThreadedService() as address:
            with ServiceClient.connect_tcp(*address) as client:
                payload = client.classify("1 : 2 2\n2 : 1 1")
        assert payload["complexity"] == "n^Theta(1)"

    def test_batch_streams_items_in_order_before_done(self):
        problems, specs = _batch_specs(count=10)
        with ThreadedService() as address:
            with ServiceClient.connect_tcp(*address) as client:
                request_id = client._send_request("classify_batch", {"problems": specs})
                frames = list(client.frames(request_id))
        kinds = [frame["type"] for frame in frames]
        assert kinds == ["item"] * 10 + ["done"]
        assert [frame["seq"] for frame in frames[:-1]] == list(range(10))
        # Streamed results agree with direct classification.
        assert [frame["data"]["complexity"] for frame in frames[:-1]] == [
            classify(problem).complexity.value for problem in problems
        ]

    def test_sequential_clients_share_the_persistent_cache(self, tmp_path):
        """Acceptance: the second client's batch reports a hit rate > 0.9."""
        path = tmp_path / "service-cache.json"
        _problems, specs = _batch_specs(count=24)
        cache = ClassificationCache(path="json:" + str(path))
        with ThreadedService(cache=cache) as address:
            with ServiceClient.connect_tcp(*address) as first:
                cold = first.classify_batch(specs)
            with ServiceClient.connect_tcp(*address) as second:
                warm = second.classify_batch(specs)
        assert cold["count"] == warm["count"] == 24
        assert cold["cache_misses"] > 0
        assert warm["hit_rate"] > 0.9
        assert [item["complexity"] for item in cold["items"]] == [
            item["complexity"] for item in warm["items"]
        ]
        # The shared cache survived on disk as a schema-2 document.
        assert json.loads(path.read_text())["schema"] == 2

    def test_bounded_service_cache_never_exceeds_budget(self, tmp_path):
        """Acceptance: max_entries=N holds in memory and on disk."""
        budget = 4
        path = tmp_path / "bounded.json"
        _problems, specs = _batch_specs(count=30, labels=3, density=0.25)
        cache = ClassificationCache(path="json:" + str(path), max_entries=budget)
        service = ThreadedService(cache=cache)
        with service as address:
            with ServiceClient.connect_tcp(*address) as client:
                client.classify_batch(specs)
                stats = client.stats()
                client.shutdown()
        assert stats["cache"]["entries"] <= budget
        assert stats["cache"]["max_entries"] == budget
        assert len(cache) <= budget
        assert len(json.loads(path.read_text())["entries"]) <= budget

    def test_census_summary_tallies_every_item(self):
        with ThreadedService() as address:
            with ServiceClient.connect_tcp(*address) as client:
                streamed = []
                summary = client.census(
                    labels=2, count=15, seed=3, on_item=streamed.append
                )
        assert summary["count"] == 15
        assert sum(summary["counts"].values()) == 15
        assert len(streamed) == 15
        assert summary["params"]["labels"] == 2

    def test_stats_and_request_accounting(self):
        with ThreadedService() as address:
            with ServiceClient.connect_tcp(*address) as client:
                client.classify("1 : 1 1")
                payload = client.stats()
        assert payload["service"]["requests_served"] == 2  # classify + stats
        assert payload["batch"]["submitted"] == 1
        assert payload["cache"]["entries"] == 1
        # The workers section reports the pool configuration and live counters.
        workers = payload["workers"]
        assert workers["backend"] == "threads"  # the service default
        assert workers["workers"] >= 1
        assert workers["scheduled"] == 1
        assert workers["in_flight"] == 0

    def test_error_frames_for_bad_requests(self):
        with ThreadedService() as address:
            with ServiceClient.connect_tcp(*address) as client:
                with pytest.raises(ServiceError) as bad_problem:
                    client.classify("this is : not a problem : at all :::")
                assert bad_problem.value.code == "bad-problem"
                with pytest.raises(ServiceError) as bad_request:
                    client.request("classify_batch", {"problems": []})
                assert bad_request.value.code == "bad-request"
                # The connection survives errors and keeps serving.
                assert client.classify("1 : 1 1")["complexity"] == "O(1)"

    def test_malformed_line_gets_structured_error(self):
        with ThreadedService() as address:
            with ServiceClient.connect_tcp(*address) as client:
                client._write.write("this is not json\n")
                client._write.flush()
                frame = client._read_frame()
        assert frame["type"] == "error"
        assert frame["error"]["code"] == ERROR_PARSE

    def test_shutdown_stops_the_service(self, tmp_path):
        path = tmp_path / "cache.json"
        service = ThreadedService(cache=ClassificationCache(path=str(path)))
        address = service.start()
        with ServiceClient.connect_tcp(*address) as client:
            client.classify("1 : 1 1")
            payload = client.shutdown()
        assert payload == {"ok": True, "cache_saved": True}
        service._thread.join(timeout=30)
        assert not service._thread.is_alive()
        assert path.exists()
        service.stop()


# ----------------------------------------------------------------------
# Concurrent clients: single-flight across connections
# ----------------------------------------------------------------------
class TestConcurrentClients:
    CENSUS = {"labels": 2, "delta": 2, "density": 0.5, "count": 20, "seed": 11}
    CLIENTS = 4

    def _expected_problems(self):
        return [
            random_problem(
                self.CENSUS["labels"],
                delta=self.CENSUS["delta"],
                density=self.CENSUS["density"],
                seed=self.CENSUS["seed"] + index,
            )
            for index in range(self.CENSUS["count"])
        ]

    def test_hammering_clients_cost_one_search_per_canonical_key(self):
        """Acceptance: N clients x same census == one engine search per orbit.

        Every client must receive a complete, in-order item stream (no
        dropped or duplicated frames), and the scheduler stats must show
        exactly ``len(unique canonical keys)`` searches — the rest answered
        by the cache or by single-flight sharing, with no global lock.
        """
        expected = self._expected_problems()
        unique_keys = {canonical_key(problem) for problem in expected}
        frames_by_client = [None] * self.CLIENTS
        errors = []

        with ThreadedService(backend="threads", workers=4) as address:

            def hammer(slot):
                try:
                    with ServiceClient.connect_tcp(*address) as client:
                        request_id = client._send_request("census", self.CENSUS)
                        frames_by_client[slot] = list(client.frames(request_id))
                except Exception as error:  # noqa: BLE001 - surfaced below
                    errors.append(error)

            threads = [
                threading.Thread(target=hammer, args=(slot,))
                for slot in range(self.CLIENTS)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=120)
            assert not any(thread.is_alive() for thread in threads)
            assert not errors, errors

            with ServiceClient.connect_tcp(*address) as client:
                stats = client.stats()

        count = self.CENSUS["count"]
        for frames in frames_by_client:
            # Complete in-order stream: no dropped or duplicated item frames.
            assert [frame["type"] for frame in frames] == ["item"] * count + ["done"]
            assert [frame["seq"] for frame in frames[:-1]] == list(range(count))
        streams = [
            [frame["data"]["complexity"] for frame in frames[:-1]]
            for frames in frames_by_client
        ]
        assert all(stream == streams[0] for stream in streams)
        assert streams[0] == [
            classify(problem).complexity.value for problem in expected
        ]
        # Single flight: searches run == unique canonical keys, exactly.
        workers = stats["workers"]
        assert workers["scheduled"] == len(unique_keys), workers
        assert workers["submitted"] == self.CLIENTS * count
        assert workers["deduped"] + workers["cache_hits"] == (
            self.CLIENTS * count - len(unique_keys)
        )
        assert stats["batch"]["full_searches"] == len(unique_keys)

    def test_concurrent_distinct_problems_all_answer(self):
        """Clients with disjoint workloads proceed concurrently and correctly."""
        specs_by_slot = [
            [problem_to_dict(random_problem(3, density=0.3, seed=100 * slot + i))
             for i in range(6)]
            for slot in range(3)
        ]
        summaries = [None] * 3
        with ThreadedService(backend="threads", workers=4) as address:

            def run(slot):
                with ServiceClient.connect_tcp(*address) as client:
                    summaries[slot] = client.classify_batch(specs_by_slot[slot])

            threads = [threading.Thread(target=run, args=(slot,)) for slot in range(3)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=120)
        for slot, summary in enumerate(summaries):
            assert summary is not None
            assert summary["count"] == 6
            assert [item["complexity"] for item in summary["items"]] == [
                classify(
                    random_problem(3, density=0.3, seed=100 * slot + i)
                ).complexity.value
                for i in range(6)
            ]


# ----------------------------------------------------------------------
# Cache warming
# ----------------------------------------------------------------------
class TestWarm:
    CENSUS = {"labels": 2, "delta": 2, "density": 0.5, "count": 15, "seed": 3}

    def test_warm_census_then_census_is_answered_from_cache(self):
        with ThreadedService() as address:
            with ServiceClient.connect_tcp(*address) as client:
                warm = client.warm(census=self.CENSUS, wait=True)
                assert warm["count"] == 15
                assert warm["waited"] is True
                assert warm["scheduled"] == warm["unique_keys"] > 0
                assert warm["already_cached"] == 0
                summary = client.census(**self.CENSUS)
                assert summary["hit_rate"] == 1.0
                # Warming again is a no-op: everything is already cached.
                rewarm = client.warm(census=self.CENSUS, wait=True)
                assert rewarm["scheduled"] == 0
                assert rewarm["already_cached"] == rewarm["unique_keys"]

    def test_warm_problem_list_then_batch_is_all_hits(self):
        problems = [random_problem(2, density=0.5, seed=seed) for seed in range(8)]
        specs = [problem_to_dict(problem) for problem in problems]
        with ThreadedService() as address:
            with ServiceClient.connect_tcp(*address) as client:
                warm = client.warm(problems=specs, wait=True)
                assert warm["count"] == 8
                summary = client.classify_batch(specs)
        assert summary["hit_rate"] == 1.0
        assert [item["complexity"] for item in summary["items"]] == [
            classify(problem).complexity.value for problem in problems
        ]

    def test_background_warm_fills_the_cache(self, tmp_path):
        path = tmp_path / "warm-cache.json"
        with ThreadedService(cache=ClassificationCache(path=str(path))) as address:
            with ServiceClient.connect_tcp(*address) as client:
                warm = client.warm(census=self.CENSUS, wait=False)
                assert warm["waited"] is False
                # Poll the live stats until the background searches drain.
                deadline = time.monotonic() + 60
                while time.monotonic() < deadline:
                    if client.stats()["workers"]["in_flight"] == 0:
                        break
                    time.sleep(0.02)
                summary = client.census(**self.CENSUS)
                assert summary["hit_rate"] == 1.0
        # The background completion also persisted the cache file.
        assert path.exists()

    def test_background_warm_survives_immediate_shutdown(self, tmp_path):
        """Warmed results reach the cache file even when shutdown races them."""
        path = tmp_path / "race-cache.json"
        service = ThreadedService(cache=ClassificationCache(path="json:" + str(path)))
        address = service.start()
        with ServiceClient.connect_tcp(*address) as client:
            warm = client.warm(census=self.CENSUS, wait=False)
            assert warm["scheduled"] > 0
            client.shutdown()
        service.stop()
        # Shutdown drains the worker pool and re-saves, losing no entries.
        entries = json.loads(path.read_text())["entries"]
        assert len(entries) >= warm["unique_keys"]

    def test_inline_backend_service_still_serves_and_streams(self):
        """--worker-backend inline keeps the v1 classify-then-stream behavior."""
        _problems, specs = _batch_specs(count=6)
        with ThreadedService(backend="inline") as address:
            with ServiceClient.connect_tcp(*address) as client:
                streamed = []
                summary = client.classify_batch(specs, on_item=streamed.append)
                stats = client.stats()
        assert summary["count"] == 6
        assert len(streamed) == 6
        assert stats["workers"]["backend"] == "inline"

    def test_warm_requires_a_workload(self):
        with ThreadedService() as address:
            with ServiceClient.connect_tcp(*address) as client:
                with pytest.raises(ServiceError) as excinfo:
                    client.request("warm", {})
                assert excinfo.value.code == ERROR_BAD_REQUEST
                with pytest.raises(ServiceError):
                    client.request("warm", {"problems": []})
                with pytest.raises(ServiceError):
                    client.request("warm", {"census": "not an object"})
                # The connection survives and still serves.
                assert client.classify("1 : 1 1")["complexity"] == "O(1)"


# ----------------------------------------------------------------------
# Stdio end-to-end
# ----------------------------------------------------------------------
class TestServiceOverStdio:
    def test_spawned_stdio_service_round_trip(self, tmp_path):
        path = tmp_path / "stdio-cache.json"
        with ServiceClient.spawn_stdio(cache=str(path)) as client:
            assert client.server_info["protocol"] == 3
            assert "warm" in client.server_info["ops"]
            assert "cancel" in client.server_info["ops"]
            fresh = client.classify("1 : 2 2\n2 : 1 1")
            cached = client.classify("1 : 2 2\n2 : 1 1")
            summary = client.classify_batch(["1 : 1 1", "1 : 2 2\n2 : 1 1"])
            assert client.shutdown()["ok"] is True
        assert fresh["from_cache"] is False
        assert cached["from_cache"] is True
        assert summary["cache_hits"] == 1  # second block hits the cache
        assert path.exists()

    def test_stdio_cache_persists_across_spawns(self, tmp_path):
        """Two stdio service processes share one persistent cache file."""
        path = tmp_path / "stdio-cache.json"
        with ServiceClient.spawn_stdio(cache=str(path)) as first:
            cold = first.classify("1 : 2 2\n2 : 1 1")
            first.shutdown()
        with ServiceClient.spawn_stdio(cache=str(path)) as second:
            warm = second.classify("1 : 2 2\n2 : 1 1")
            second.shutdown()
        assert cold["from_cache"] is False
        assert warm["from_cache"] is True
        assert warm["complexity"] == cold["complexity"]
