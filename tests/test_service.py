"""Tests for the classification service: protocol, server, client, streaming."""

import json

import pytest

from repro.core import classify
from repro.engine import ClassificationCache, problem_to_dict
from repro.problems import catalog
from repro.problems.random_problems import random_problem
from repro.service import ServiceClient, ServiceError, ThreadedService
from repro.service.protocol import (
    ERROR_BAD_REQUEST,
    ERROR_PARSE,
    ERROR_UNKNOWN_OP,
    ProtocolError,
    decode_request,
    done_frame,
    encode_frame,
    error_frame,
    hello_frame,
    is_terminal_frame,
    item_frame,
    result_frame,
)


# ----------------------------------------------------------------------
# Protocol
# ----------------------------------------------------------------------
class TestProtocol:
    def test_request_round_trip(self):
        line = encode_frame(
            {"id": 7, "op": "classify", "params": {"problem": "1 : 1 1"}}
        )
        request = decode_request(line)
        assert request.id == 7
        assert request.op == "classify"
        assert request.params == {"problem": "1 : 1 1"}

    def test_frames_are_single_lines(self):
        frames = [
            hello_frame(),
            item_frame(1, 0, {"complexity": "O(1)"}),
            done_frame(1, {"count": 1}),
            result_frame(2, {"ok": True}),
            error_frame(3, ProtocolError(ERROR_BAD_REQUEST, "nope")),
        ]
        for frame in frames:
            wire = encode_frame(frame)
            assert wire.endswith("\n") and "\n" not in wire[:-1]
            assert json.loads(wire) == frame

    def test_decode_request_rejects_garbage(self):
        with pytest.raises(ProtocolError) as excinfo:
            decode_request("not json at all\n")
        assert excinfo.value.code == ERROR_PARSE

    def test_decode_request_rejects_unknown_op(self):
        with pytest.raises(ProtocolError) as excinfo:
            decode_request('{"id": 1, "op": "fly"}')
        assert excinfo.value.code == ERROR_UNKNOWN_OP

    def test_decode_request_rejects_bad_fields(self):
        for line in (
            '{"id": 1}',  # missing op
            '{"op": 42}',  # non-string op
            '{"op": "stats", "params": []}',  # non-object params
            '{"op": "stats", "id": [1]}',  # non-scalar id
        ):
            with pytest.raises(ProtocolError):
                decode_request(line)

    def test_terminal_frames(self):
        assert is_terminal_frame(done_frame(1, {}))
        assert is_terminal_frame(result_frame(1, {}))
        assert is_terminal_frame(error_frame(1, ProtocolError("x", "y")))
        assert not is_terminal_frame(hello_frame())
        assert not is_terminal_frame(item_frame(1, 0, {}))


# ----------------------------------------------------------------------
# TCP end-to-end
# ----------------------------------------------------------------------
def _batch_specs(count=24, labels=2, density=0.5):
    problems = [
        random_problem(labels, density=density, seed=seed) for seed in range(count)
    ]
    return problems, [problem_to_dict(problem) for problem in problems]


class TestServiceOverTcp:
    def test_classify_round_trip(self):
        problem, expected = catalog()["mis"]
        with ThreadedService() as address:
            with ServiceClient.connect_tcp(*address) as client:
                payload = client.classify(problem_to_dict(problem))
        assert payload["complexity"] == expected.value
        assert payload["from_cache"] is False
        assert payload["result"]["complexity"] == expected.name

    def test_text_problem_specs_are_parsed_server_side(self):
        with ThreadedService() as address:
            with ServiceClient.connect_tcp(*address) as client:
                payload = client.classify("1 : 2 2\n2 : 1 1")
        assert payload["complexity"] == "n^Theta(1)"

    def test_batch_streams_items_in_order_before_done(self):
        problems, specs = _batch_specs(count=10)
        with ThreadedService() as address:
            with ServiceClient.connect_tcp(*address) as client:
                request_id = client._send_request("classify_batch", {"problems": specs})
                frames = list(client.frames(request_id))
        kinds = [frame["type"] for frame in frames]
        assert kinds == ["item"] * 10 + ["done"]
        assert [frame["seq"] for frame in frames[:-1]] == list(range(10))
        # Streamed results agree with direct classification.
        assert [frame["data"]["complexity"] for frame in frames[:-1]] == [
            classify(problem).complexity.value for problem in problems
        ]

    def test_sequential_clients_share_the_persistent_cache(self, tmp_path):
        """Acceptance: the second client's batch reports a hit rate > 0.9."""
        path = tmp_path / "service-cache.json"
        _problems, specs = _batch_specs(count=24)
        with ThreadedService(cache=ClassificationCache(path=str(path))) as address:
            with ServiceClient.connect_tcp(*address) as first:
                cold = first.classify_batch(specs)
            with ServiceClient.connect_tcp(*address) as second:
                warm = second.classify_batch(specs)
        assert cold["count"] == warm["count"] == 24
        assert cold["cache_misses"] > 0
        assert warm["hit_rate"] > 0.9
        assert [item["complexity"] for item in cold["items"]] == [
            item["complexity"] for item in warm["items"]
        ]
        # The shared cache survived on disk as a schema-2 document.
        assert json.loads(path.read_text())["schema"] == 2

    def test_bounded_service_cache_never_exceeds_budget(self, tmp_path):
        """Acceptance: max_entries=N holds in memory and on disk."""
        budget = 4
        path = tmp_path / "bounded.json"
        _problems, specs = _batch_specs(count=30, labels=3, density=0.25)
        cache = ClassificationCache(path=str(path), max_entries=budget)
        service = ThreadedService(cache=cache)
        with service as address:
            with ServiceClient.connect_tcp(*address) as client:
                client.classify_batch(specs)
                stats = client.stats()
                client.shutdown()
        assert stats["cache"]["entries"] <= budget
        assert stats["cache"]["max_entries"] == budget
        assert len(cache) <= budget
        assert len(json.loads(path.read_text())["entries"]) <= budget

    def test_census_summary_tallies_every_item(self):
        with ThreadedService() as address:
            with ServiceClient.connect_tcp(*address) as client:
                streamed = []
                summary = client.census(
                    labels=2, count=15, seed=3, on_item=streamed.append
                )
        assert summary["count"] == 15
        assert sum(summary["counts"].values()) == 15
        assert len(streamed) == 15
        assert summary["params"]["labels"] == 2

    def test_stats_and_request_accounting(self):
        with ThreadedService() as address:
            with ServiceClient.connect_tcp(*address) as client:
                client.classify("1 : 1 1")
                payload = client.stats()
        assert payload["service"]["requests_served"] == 2  # classify + stats
        assert payload["batch"]["submitted"] == 1
        assert payload["cache"]["entries"] == 1

    def test_error_frames_for_bad_requests(self):
        with ThreadedService() as address:
            with ServiceClient.connect_tcp(*address) as client:
                with pytest.raises(ServiceError) as bad_problem:
                    client.classify("this is : not a problem : at all :::")
                assert bad_problem.value.code == "bad-problem"
                with pytest.raises(ServiceError) as bad_request:
                    client.request("classify_batch", {"problems": []})
                assert bad_request.value.code == "bad-request"
                # The connection survives errors and keeps serving.
                assert client.classify("1 : 1 1")["complexity"] == "O(1)"

    def test_malformed_line_gets_structured_error(self):
        with ThreadedService() as address:
            with ServiceClient.connect_tcp(*address) as client:
                client._write.write("this is not json\n")
                client._write.flush()
                frame = client._read_frame()
        assert frame["type"] == "error"
        assert frame["error"]["code"] == ERROR_PARSE

    def test_shutdown_stops_the_service(self, tmp_path):
        path = tmp_path / "cache.json"
        service = ThreadedService(cache=ClassificationCache(path=str(path)))
        address = service.start()
        with ServiceClient.connect_tcp(*address) as client:
            client.classify("1 : 1 1")
            payload = client.shutdown()
        assert payload == {"ok": True, "cache_saved": True}
        service._thread.join(timeout=30)
        assert not service._thread.is_alive()
        assert path.exists()
        service.stop()


# ----------------------------------------------------------------------
# Stdio end-to-end
# ----------------------------------------------------------------------
class TestServiceOverStdio:
    def test_spawned_stdio_service_round_trip(self, tmp_path):
        path = tmp_path / "stdio-cache.json"
        with ServiceClient.spawn_stdio(cache=str(path)) as client:
            assert client.server_info["protocol"] == 1
            fresh = client.classify("1 : 2 2\n2 : 1 1")
            cached = client.classify("1 : 2 2\n2 : 1 1")
            summary = client.classify_batch(["1 : 1 1", "1 : 2 2\n2 : 1 1"])
            assert client.shutdown()["ok"] is True
        assert fresh["from_cache"] is False
        assert cached["from_cache"] is True
        assert summary["cache_hits"] == 1  # second block hits the cache
        assert path.exists()

    def test_stdio_cache_persists_across_spawns(self, tmp_path):
        """Two stdio service processes share one persistent cache file."""
        path = tmp_path / "stdio-cache.json"
        with ServiceClient.spawn_stdio(cache=str(path)) as first:
            cold = first.classify("1 : 2 2\n2 : 1 1")
            first.shutdown()
        with ServiceClient.spawn_stdio(cache=str(path)) as second:
            warm = second.classify("1 : 2 2\n2 : 1 1")
            second.shutdown()
        assert cold["from_cache"] is False
        assert warm["from_cache"] is True
        assert warm["complexity"] == cold["complexity"]
