"""Tests for the load-generation harness (`repro.loadgen`).

Covers the three layers — workload models (determinism, arrival processes,
Zipf skew, adversarial injection), the driver (open/closed loop, error
attribution), and the SLO report (schema, exact percentiles, verdicts) —
plus the CLI wiring and the scheduler-facing soak/regression tests that
ride on loadgen bursts.
"""

import json

import pytest

from repro.api import SessionError, connect
from repro.cli import SLO_EXIT_CODE, _summarize_outcomes, main
from repro.loadgen import (
    LoadDriver,
    SLOSpec,
    WorkloadSpec,
    build_report,
    build_workload,
    stream_digest,
    summarize_report,
)
from repro.loadgen.driver import RequestRecord, RunResult
from repro.loadgen.report import SCHEMA
from repro.problems import hard_problem


def _quick_spec(**overrides):
    """A sub-second spec for unit tests (tiny pool, modest rate)."""
    defaults = dict(
        name="zipf", seed=1, duration=0.5, rate=30, pool_size=8, zipf_s=1.2
    )
    defaults.update(overrides)
    return WorkloadSpec(**defaults)


# ----------------------------------------------------------------------
# Workload models
# ----------------------------------------------------------------------
class TestWorkloadModels:
    def test_plan_is_deterministic(self):
        first = _quick_spec(seed=7).plan()
        second = _quick_spec(seed=7).plan()
        assert [r.stream_line() for r in first] == [r.stream_line() for r in second]
        assert stream_digest(first) == stream_digest(second)

    def test_different_seeds_differ(self):
        assert stream_digest(_quick_spec(seed=1).plan()) != stream_digest(
            _quick_spec(seed=2).plan()
        )

    def test_poisson_offsets_are_sorted_within_duration(self):
        plan = _quick_spec(arrival="poisson", duration=2.0).plan()
        offsets = [r.offset for r in plan]
        assert offsets == sorted(offsets)
        assert all(0 < offset <= 2.0 for offset in offsets)

    def test_uniform_arrivals_use_fixed_cadence(self):
        plan = _quick_spec(arrival="uniform", rate=10, duration=1.0).plan()
        assert len(plan) == 10
        gaps = {
            round(b.offset - a.offset, 6) for a, b in zip(plan, plan[1:])
        }
        assert gaps == {0.1}

    def test_burst_arrivals_group_back_to_back(self):
        plan = _quick_spec(
            arrival="burst", rate=20, burst_size=5, duration=1.0
        ).plan()
        offsets = [r.offset for r in plan]
        assert offsets.count(0.0) == 5  # the first whole burst lands at once

    def test_zipf_skew_prefers_low_ranks(self):
        spec = _quick_spec(zipf_s=1.5, duration=5.0, rate=40)
        plan = spec.plan()
        counts = {}
        for request in plan:
            counts[request.key] = counts.get(request.key, 0) + 1
        top_key = max(counts, key=counts.get)
        assert top_key == spec.pool()[0][0]  # rank 0 is the most popular

    def test_priority_mix_and_deadlines_are_applied(self):
        spec = _quick_spec(
            duration=3.0,
            mix={"interactive": 1.0},
            deadlines={"interactive": 2.5},
        )
        plan = spec.plan()
        assert {r.priority for r in plan} == {"interactive"}
        assert {r.deadline for r in plan} == {2.5}

    def test_adversarial_injection(self):
        spec = _quick_spec(adversarial_rate=1.0, adversarial_pairs=0)
        plan = spec.plan()
        assert all(r.adversarial for r in plan)
        assert all(r.priority == "interactive" for r in plan)
        assert {r.deadline for r in plan} == {spec.adversarial_deadline}
        assert {r.key for r in plan} == {"adversarial:adversarial-0-pairs"}

    def test_plan_never_empty(self):
        assert len(_quick_spec(duration=0.001, rate=1).plan()) == 1

    @pytest.mark.parametrize(
        "overrides",
        [
            dict(duration=0),
            dict(rate=0),
            dict(pool_size=0),
            dict(zipf_s=-1),
            dict(arrival="tidal"),
            dict(burst_size=0),
            dict(adversarial_rate=1.5),
            dict(mix={}),
            dict(mix={"urgent": 1.0}),
            dict(mix={"interactive": -1.0}),
            dict(deadlines={"urgent": 1.0}),
        ],
    )
    def test_bad_specs_raise(self, overrides):
        with pytest.raises(ValueError):
            _quick_spec(**overrides)

    def test_build_workload_registry_and_overrides(self):
        spec = build_workload("uniform", seed=3, duration=2.0, rate=12.5)
        assert (spec.name, spec.arrival, spec.zipf_s) == ("uniform", "uniform", 0.0)
        assert spec.rate == 12.5
        # None overrides fall through to the model's own defaults.
        assert build_workload("zipf", seed=0, duration=1.0, rate=None).rate == 40.0
        with pytest.raises(ValueError):
            build_workload("tsunami", seed=0, duration=1.0)

    def test_pool_problems_have_stable_names_and_distinct_keys(self):
        pool = _quick_spec(pool_size=6).pool()
        assert len({key for key, _ in pool}) == 6
        assert [problem.name for _, problem in pool] == [
            f"pool-{index}" for index in range(6)
        ]


# ----------------------------------------------------------------------
# Driver
# ----------------------------------------------------------------------
class TestLoadDriver:
    def test_closed_loop_records_every_request(self):
        plan = _quick_spec(duration=1.0).plan()
        with connect("local://threads?workers=2") as session:
            result = LoadDriver([session], mode="closed", concurrency=4).run(plan)
        assert len(result.records) == len(plan)
        assert all(r.outcome == "ok" for r in result.records)
        assert all(r.latency_ms >= 0 for r in result.records)
        # Duplicate-heavy stream: the engine amortized most of the work.
        assert sum(1 for r in result.records if r.from_cache) > 0
        assert result.stats and "workers" in result.stats[0]

    def test_open_loop_paces_to_arrival_offsets(self):
        plan = _quick_spec(duration=0.4, rate=25).plan()
        with connect("local://inline") as session:
            result = LoadDriver([session], mode="open").run(plan)
        assert result.wall_seconds >= max(r.offset for r in plan)
        assert all(r.outcome == "ok" for r in result.records)
        # Each request was issued no earlier than its planned offset.
        for request, record in zip(plan, result.records):
            assert record.started_at >= request.offset - 0.01

    def test_requests_round_robin_across_sessions(self):
        plan = _quick_spec(duration=0.5).plan()
        with connect("local://inline") as first, connect("local://inline") as second:
            result = LoadDriver([first, second], mode="closed").run(plan)
        assert {r.session_index for r in result.records} == {0, 1}
        assert len(result.stats) == 2

    def test_session_errors_are_recorded_not_raised(self):
        class ExplodingSession:
            def submit(self, problem, priority=None, deadline=None):
                raise SessionError("boom", code="internal")

            def stats(self):
                return {}

        plan = _quick_spec(duration=0.2, rate=10).plan()
        result = LoadDriver([ExplodingSession()], mode="closed").run(plan)
        assert all(r.outcome == "error" for r in result.records)
        assert {r.error_code for r in result.records} == {"internal"}

    def test_driver_validates_arguments(self):
        with connect("local://inline") as session:
            with pytest.raises(ValueError):
                LoadDriver([], mode="closed")
            with pytest.raises(ValueError):
                LoadDriver([session], mode="sideways")
            with pytest.raises(ValueError):
                LoadDriver([session], concurrency=0)
            with pytest.raises(ValueError):
                LoadDriver([session], max_in_flight=0)

    def test_deadline_timeouts_surface_as_timeout_outcomes(self):
        spec = _quick_spec(
            duration=0.2,
            rate=10,
            adversarial_rate=1.0,
            adversarial_pairs=12,  # minutes of search, far over the deadline
            adversarial_deadline=0.1,
        )
        plan = spec.plan()[:2]
        with connect("local://threads?workers=2") as session:
            result = LoadDriver([session], mode="closed").run(plan)
        assert {r.outcome for r in result.records} == {"timeout"}


# ----------------------------------------------------------------------
# SLO specs
# ----------------------------------------------------------------------
class TestSLOSpec:
    def test_known_objectives_validate(self):
        SLOSpec.from_dict(
            {
                "p99_interactive_ms": 100,
                "p50_ms": 10,
                "p90_all_ms": 50,
                "max_timeout_rate": 0.01,
                "min_throughput_rps": 5,
                "min_dedup_ratio": 0.5,
            }
        )

    @pytest.mark.parametrize(
        "payload",
        [
            {"p99_urgent_ms": 10},  # unknown class
            {"p75_ms": 10},  # unsupported quantile
            {"max_typo_rate": 0.1},  # unknown objective
            {"p99_ms": "fast"},  # non-numeric
            {"p99_ms": True},  # bool is not a number here
            {"max_timeout_rate": 1.5},  # rates live in [0, 1]
            {"p99_ms": -1},  # negative threshold
        ],
    )
    def test_bad_specs_raise(self, payload):
        with pytest.raises(ValueError):
            SLOSpec.from_dict(payload)

    def test_from_file_round_trip(self, tmp_path):
        path = tmp_path / "slo.json"
        path.write_text('{"p99_ms": 250, "max_error_rate": 0}')
        spec = SLOSpec.from_file(str(path))
        assert spec.as_dict() == {"p99_ms": 250, "max_error_rate": 0}
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        with pytest.raises(ValueError):
            SLOSpec.from_file(str(bad))

    def test_evaluate_against_a_real_run(self):
        plan = _quick_spec(duration=0.5).plan()
        with connect("local://inline") as session:
            result = LoadDriver([session], mode="closed").run(plan)
        report = build_report("local://inline", _quick_spec(duration=0.5), plan, result)
        assert SLOSpec.from_dict({"p99_ms": 60000}).evaluate(report) == []
        violations = SLOSpec.from_dict(
            {"p99_ms": 0.000001, "min_throughput_rps": 10**9}
        ).evaluate(report)
        assert len(violations) == 2

    def test_missing_observations_are_violations(self):
        spec = _quick_spec(duration=0.3, mix={"interactive": 1.0})
        plan = spec.plan()
        with connect("local://inline") as session:
            result = LoadDriver([session], mode="closed").run(plan)
        report = build_report("local://inline", spec, plan, result)
        # The stream carried no batch traffic, so a batch guarantee is
        # unmeasured — which must fail loudly, not pass silently.
        violations = SLOSpec.from_dict({"p99_batch_ms": 1000}).evaluate(report)
        assert violations and "no observations" in violations[0]


# ----------------------------------------------------------------------
# Report
# ----------------------------------------------------------------------
def _synthetic_result(latencies_ms, outcome="ok"):
    records = [
        RequestRecord(
            index=i,
            key=f"k{i}",
            priority="interactive",
            deadline=None,
            offset=0.0,
            adversarial=False,
            latency_ms=ms,
            outcome=outcome,
            from_cache=False,
        )
        for i, ms in enumerate(latencies_ms)
    ]
    return RunResult(
        records=records,
        wall_seconds=1.0,
        mode="closed",
        concurrency=1,
        sessions=1,
        backpressure_stalls=0,
        stats=[{}],
    )


class TestReport:
    def test_schema_and_sections(self):
        spec = _quick_spec(duration=0.3)
        plan = spec.plan()
        with connect("local://inline") as session:
            result = LoadDriver([session], mode="closed").run(plan)
        report = build_report("local://inline", spec, plan, result)
        assert report["schema"] == SCHEMA
        assert set(report) >= {
            "endpoint",
            "workload",
            "stream",
            "run",
            "outcomes",
            "cache",
            "dedup",
            "deadlines",
            "latency_ms",
            "stats",
        }
        assert report["stream"]["digest"] == stream_digest(plan)
        assert report["outcomes"]["ok"] == len(plan)
        json.dumps(report)  # must be JSON-serializable as-is

    def test_percentiles_are_exact_nearest_rank(self):
        plan = _quick_spec(duration=0.3).plan()[:100]
        latencies = [float(i + 1) for i in range(100)]  # 1..100 ms
        result = _synthetic_result(latencies)
        report = build_report("x", _quick_spec(duration=0.3), plan, result)
        section = report["latency_ms"]["all"]
        assert section["p50"] == 50.0
        assert section["p90"] == 90.0
        assert section["p99"] == 99.0
        assert section["max"] == 100.0

    def test_deadline_miss_rate(self):
        spec = _quick_spec(duration=0.3)
        plan = spec.plan()[:4]
        result = _synthetic_result([1.0, 2.0, 3.0, 4.0])
        for record, deadline, outcome in zip(
            result.records, [0.1, 0.1, None, 0.1], ["timeout", "ok", "ok", "timeout"]
        ):
            record.deadline = deadline
            record.outcome = outcome
        report = build_report("x", spec, plan, result)
        assert report["deadlines"] == {
            "with_deadline": 3,
            "missed": 2,
            "miss_rate": pytest.approx(2 / 3),
        }

    def test_summary_renders_slo_verdicts(self):
        spec = _quick_spec(duration=0.3)
        plan = spec.plan()
        result = _synthetic_result([1.0] * len(plan))
        passing = build_report("x", spec, plan, result, SLOSpec.from_dict({"p99_ms": 10}))
        failing = build_report(
            "x", spec, plan, result, SLOSpec.from_dict({"p99_ms": 0.1})
        )
        assert "SLO: PASS" in summarize_report(passing)
        assert "SLO: FAIL" in summarize_report(failing)
        assert not failing["slo"]["passed"]


# ----------------------------------------------------------------------
# CLI wiring
# ----------------------------------------------------------------------
class TestLoadgenCLI:
    ARGS = [
        "loadgen",
        "local://threads?workers=2",
        "--workload",
        "zipf",
        "--duration",
        "0.5",
        "--seed",
        "7",
        "--mode",
        "closed",
    ]

    def test_report_file_and_loose_slo_exit_zero(self, tmp_path, capsys):
        slo = tmp_path / "slo.json"
        slo.write_text('{"p99_ms": 60000, "max_error_rate": 0}')
        report_path = tmp_path / "report.json"
        code = main(
            self.ARGS + ["--slo", str(slo), "--report", str(report_path), "--json"]
        )
        assert code == 0
        report = json.loads(report_path.read_text())
        assert report["schema"] == SCHEMA
        assert report["slo"]["passed"] is True
        stdout = json.loads(capsys.readouterr().out)
        assert stdout["stream"]["digest"] == report["stream"]["digest"]

    def test_same_seed_is_reproducible_through_the_cli(self, tmp_path):
        digests = []
        for run in range(2):
            report_path = tmp_path / f"run{run}.json"
            assert main(self.ARGS + ["--report", str(report_path)]) == 0
            report = json.loads(report_path.read_text())
            digests.append(report["stream"]["digest"])
            assert report["outcomes"]["error"] == 0
        assert digests[0] == digests[1]

    def test_impossible_slo_exits_nonzero(self, tmp_path, capsys):
        slo = tmp_path / "slo.json"
        slo.write_text('{"p99_ms": 0.000001}')
        code = main(self.ARGS + ["--slo", str(slo)])
        assert code == SLO_EXIT_CODE
        assert "slo violation" in capsys.readouterr().err

    def test_bad_slo_spec_is_a_cli_error(self, tmp_path, capsys):
        slo = tmp_path / "slo.json"
        slo.write_text('{"max_typo_rate": 0.1}')
        assert main(self.ARGS + ["--slo", str(slo)]) == 1
        assert "unknown SLO objective" in capsys.readouterr().err

    def test_bad_endpoint_is_a_cli_error(self, capsys):
        assert main(["loadgen", "gpu://fast", "--duration", "0.1"]) == 1
        assert "error:" in capsys.readouterr().err


# ----------------------------------------------------------------------
# Soak: classify_many under duplicate-heavy loadgen streams
# ----------------------------------------------------------------------
class TestClassifyManySoak:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_stream_summary_denominator_invariant(self, seed):
        """hits + misses + interrupted == count, for every workload seed.

        The loadgen streams are duplicate-heavy by construction, which is
        exactly the regime where the PR 4 accounting bug class (duplicate
        hits counted against unresolved orbits) would break the denominator.
        """
        spec = _quick_spec(seed=seed, duration=1.0, rate=40, pool_size=6)
        problems = [request.problem for request in spec.plan()]
        with connect("local://threads?workers=3") as session:
            outcomes = list(session.classify_many(problems))
        summary = _summarize_outcomes(outcomes)
        assert summary["count"] == len(problems)
        interrupted = summary["timeouts"] + summary["cancelled"]
        assert (
            summary["cache_hits"] + summary["cache_misses"] + interrupted
            == summary["count"]
        )
        assert interrupted == 0  # no deadlines in this stream

    def test_denominator_holds_with_interruptions(self):
        """The invariant survives a stream where some searches blow deadlines."""
        spec = _quick_spec(
            seed=5,
            duration=0.5,
            rate=30,
            adversarial_rate=0.5,
            adversarial_pairs=12,
            adversarial_deadline=0.15,
        )
        plan = spec.plan()
        assert any(r.adversarial for r in plan)
        with connect("local://threads?workers=2") as session:
            outcomes = [
                session.submit(
                    request.problem,
                    priority=request.priority,
                    deadline=request.deadline,
                ).result()
                for request in plan
            ]
        summary = _summarize_outcomes(outcomes)
        interrupted = summary["timeouts"] + summary["cancelled"]
        assert interrupted >= 1  # the poison pills really timed out
        assert (
            summary["cache_hits"] + summary["cache_misses"] + interrupted
            == summary["count"]
        )


# ----------------------------------------------------------------------
# Regression: cancelled waiters during a burst never leak scheduler slots
# ----------------------------------------------------------------------
class TestSlotLeakRegression:
    def test_cancelled_waiter_during_burst_releases_all_slots(self):
        spec = _quick_spec(seed=9, arrival="burst", rate=40, duration=0.5)
        plan = spec.plan()
        with connect("local://threads?workers=2") as session:
            scheduler = session._driver.classifier.scheduler
            # A slow poison pill holds a worker slot while the burst queues
            # behind it, then gets cancelled mid-flight.
            blocker = session.submit(hard_problem(12), deadline=30)
            pendings = [
                session.submit(request.problem, priority=request.priority)
                for request in plan
            ]
            cancelled = [pending.cancel() for pending in pendings[::3]]
            assert any(cancelled)  # some victims really were live
            blocker.cancel()
            for pending in pendings:
                try:
                    pending.result(timeout=30)
                except SessionError:
                    pytest.fail("burst submissions must resolve, not error")
                except TimeoutError:
                    pytest.fail("burst submissions must resolve, not hang")
            assert scheduler.wait_idle(timeout=30)
            assert scheduler.slots_in_use == 0, "leaked a worker slot"
            assert scheduler.in_flight == 0
            stats = scheduler.stats
            assert stats.flights == (
                stats.completed + stats.failed + stats.cancelled + stats.timeouts
            )
            assert stats.failed == 0


# ----------------------------------------------------------------------
# Perf smoke (CI perf-smoke lane only: pytest -m perf)
# ----------------------------------------------------------------------
@pytest.mark.perf
def test_perf_smoke_ten_second_loadgen_against_threads(tmp_path):
    """The CI perf-smoke gate: 10 s of seeded zipf traffic, loose SLOs.

    Asserts the CLI contract end to end — exit 0 under a loose spec, a
    schema-valid JSON report, and a reproducible stream digest — with an
    open-loop run long enough to exercise pacing and backpressure.
    """
    slo = tmp_path / "slo.json"
    slo.write_text(
        json.dumps(
            {
                "p99_interactive_ms": 60000,
                "max_error_rate": 0.0,
                "max_timeout_rate": 0.1,
                "min_dedup_ratio": 0.3,
            }
        )
    )
    report_path = tmp_path / "report.json"
    code = main(
        [
            "loadgen",
            "local://threads?workers=4",
            "--workload",
            "zipf",
            "--duration",
            "10",
            "--seed",
            "7",
            "--slo",
            str(slo),
            "--report",
            str(report_path),
        ]
    )
    assert code == 0
    report = json.loads(report_path.read_text())
    assert report["schema"] == SCHEMA
    assert report["slo"]["passed"] is True
    assert report["run"]["wall_seconds"] >= 9.0  # open loop really paced
    # The digest is the stream's identity: pinned for seed 7 so a committed
    # benchmark and any rerun provably measured the same traffic.
    assert report["stream"]["digest"] == stream_digest(
        build_workload("zipf", seed=7, duration=10.0).plan()
    )
