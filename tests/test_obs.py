"""Tests for the observability layer: metrics registry, Prometheus text
exposition, request tracing (span completeness on every backend and outcome),
local-vs-remote metrics parity, remote cancel over the wire, and the atomic
scheduler stats snapshot."""

import json
import re
import threading

import pytest

from repro.api import connect
from repro.api.config import parse_endpoint
from repro.api.errors import EndpointError, UnsupportedOperationError
from repro.engine.batch import BatchClassifier
from repro.obs import (
    MetricsRegistry,
    metric_names_and_types,
    render_prometheus,
)
from repro.obs.metrics import escape_label_value
from repro.obs.trace import (
    ROOT_SPAN,
    STAGES,
    Tracer,
    new_request_id,
)
from repro.problems import hard_problem
from repro.service import ServiceClient, ThreadedService
from repro.workers.metrics import SearchTimeStats

EASY = "1 : 2 2\n2 : 1 1"

# ----------------------------------------------------------------------
# Exposition-format lint
# ----------------------------------------------------------------------
_NAME = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_SAMPLE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})?"
    r" (?P<value>\S+)$"
)


def lint_exposition(text):
    """Parse a Prometheus text exposition; assert its structural rules.

    Returns ``{family: {"type": ..., "samples": [(name, labels, value)]}}``.
    """
    families = {}
    current = None
    for line in text.splitlines():
        if line.startswith("# HELP "):
            _, _, rest = line.partition("# HELP ")
            name, _, help_text = rest.partition(" ")
            assert _NAME.match(name), name
            assert help_text.strip(), f"family {name} has an empty HELP"
            assert name not in families, f"family {name} declared twice"
            families[name] = {"type": None, "samples": []}
            current = name
        elif line.startswith("# TYPE "):
            _, _, rest = line.partition("# TYPE ")
            name, _, kind = rest.partition(" ")
            assert name == current, "TYPE must follow its own HELP"
            assert kind in ("counter", "gauge", "histogram"), kind
            families[name]["type"] = kind
        else:
            assert line and not line.startswith("#"), f"unexpected line {line!r}"
            match = _SAMPLE.match(line)
            assert match, f"unparseable sample line {line!r}"
            sample_name = match.group("name")
            assert current and sample_name.startswith(current), (
                f"sample {sample_name} outside its family block ({current})"
            )
            families[current]["samples"].append(
                (sample_name, match.group("labels"), match.group("value"))
            )
    for name, family in families.items():
        assert family["type"] is not None, f"family {name} has no TYPE"
        assert family["samples"], f"family {name} exposes no samples"
        if family["type"] == "counter":
            assert name.endswith("_total"), f"counter {name} must end in _total"
    return families


def _series(snapshot):
    """Flatten a repro.metrics/1 snapshot into {(family, labels_key): value}."""
    series = {}
    for family in snapshot["families"]:
        for sample in family["samples"]:
            key = tuple(sorted((sample.get("labels") or {}).items()))
            if family["type"] == "histogram":
                series[(family["name"], key, "count")] = sample["count"]
                series[(family["name"], key, "sum")] = sample["sum"]
            else:
                series[(family["name"], key, "value")] = sample["value"]
    return series


class TestPrometheusExposition:
    def test_workload_exposition_passes_lint(self):
        with connect("local://inline") as session:
            session.classify(EASY)
            session.classify(EASY)
            families = lint_exposition(session.metrics_text())
        assert "repro_service_requests_total" in families
        assert "repro_search_duration_ms" in families
        histogram = families["repro_search_duration_ms"]
        assert histogram["type"] == "histogram"
        bucket_values = [
            float(value)
            for name, _labels, value in histogram["samples"]
            if name.endswith("_bucket")
        ]
        # Buckets are cumulative and the +Inf bucket equals the count.
        assert bucket_values == sorted(bucket_values)
        count = [
            float(value)
            for name, _labels, value in histogram["samples"]
            if name.endswith("_count")
        ]
        assert count and bucket_values[-1] == count[0]

    def test_counters_are_monotone_across_workload(self):
        with connect("local://inline") as session:
            session.classify(EASY)
            first = session.metrics()
            session.classify(EASY)
            session.classify("1 : 1 1")
            second = session.metrics()
        counters = {
            family["name"]
            for family in first["families"]
            if family["type"] == "counter"
        }
        before, after = _series(first), _series(second)
        assert counters, "registry exposes no counters?"
        for key, value in before.items():
            if key[0] in counters and key in after:
                assert after[key] >= value, f"counter {key} decreased"

    def test_counter_names_must_end_in_total(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.register(
                "repro_bogus", "counter", "a counter without the suffix",
                lambda: [],
            )

    def test_duplicate_family_rejected(self):
        registry = MetricsRegistry()
        registry.register("repro_x_total", "counter", "x", lambda: [])
        with pytest.raises(ValueError):
            registry.register("repro_x_total", "counter", "x again", lambda: [])

    def test_label_values_are_escaped(self):
        assert escape_label_value('a"b') == 'a\\"b'
        assert escape_label_value("a\\b") == "a\\\\b"
        assert escape_label_value("a\nb") == "a\\nb"
        registry = MetricsRegistry()
        registry.register(
            "repro_escape_test",
            "gauge",
            "label escaping probe",
            lambda: [
                {"labels": {"path": 'we"ird\\name\nwith everything'}, "value": 1}
            ],
        )
        text = render_prometheus(registry.snapshot())
        line = [l for l in text.splitlines() if l.startswith("repro_escape_test{")]
        assert line == [
            'repro_escape_test{path="we\\"ird\\\\name\\nwith everything"} 1'
        ]
        # And the escaped line still lints.
        lint_exposition(text)


# ----------------------------------------------------------------------
# Parity: one registry builder, every endpoint
# ----------------------------------------------------------------------
class TestMetricsParity:
    def test_local_and_remote_expose_identical_families(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE", "mem")
        with ThreadedService() as address:
            with ServiceClient.connect_tcp(*address) as client:
                client.classify(EASY)
                remote = client.metrics()
        with connect("local://inline") as session:
            session.classify(EASY)
            local = session.metrics()
        assert metric_names_and_types(remote["snapshot"]) == metric_names_and_types(
            local
        )
        # The rendered text agrees with its own snapshot on family names.
        assert set(lint_exposition(remote["text"])) == {
            family["name"] for family in remote["snapshot"]["families"]
        }

    def test_remote_session_metrics_round_trip(self):
        with ThreadedService() as address:
            host, port = address
            with connect(f"tcp://{host}:{port}") as session:
                session.classify(EASY)
                snapshot = session.metrics()
                assert snapshot["schema"] == "repro.metrics/1"
                text = session.metrics_text()
        lint_exposition(text)

    def test_obs_flag_parses_and_round_trips(self):
        config = parse_endpoint("local://inline?obs=0")
        assert config.obs is False
        assert "obs=0" in config.endpoint()
        assert parse_endpoint("local://inline").obs is True
        with pytest.raises(EndpointError):
            parse_endpoint("local://inline?obs=maybe")

    def test_obs_off_disables_the_surface(self):
        with connect("local://inline?obs=0") as session:
            outcome = session.classify(EASY)
            assert outcome.ok
            assert outcome.request_id is None
            assert "trace" not in session.stats()
            with pytest.raises(UnsupportedOperationError):
                session.metrics()
            with pytest.raises(UnsupportedOperationError):
                session.trace("req-nope")


# ----------------------------------------------------------------------
# Trace span completeness
# ----------------------------------------------------------------------
def assert_closed_tree(document, outcome):
    """Every span closed, every parent valid, root carries the outcome."""
    assert document["schema"] == "repro.trace/1"
    assert document["outcome"] == outcome
    spans = document["spans"]
    names = {span["name"] for span in spans}
    roots = [span for span in spans if span["parent"] is None]
    assert [root["name"] for root in roots] == [ROOT_SPAN]
    assert roots[0]["status"] == outcome
    for span in spans:
        assert span["end_ms"] is not None, f"span {span['name']} never closed"
        assert span["status"] is not None, f"span {span['name']} has no status"
        assert span["stage"] in STAGES
        if span["parent"] is not None:
            assert span["parent"] in names, f"dangling parent {span['parent']}"


def _traced_session(endpoint, monkeypatch):
    monkeypatch.setenv("REPRO_TRACE", "mem")
    return connect(endpoint)


BACKENDS = ("inline", "threads", "processes")


class TestTraceCompleteness:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_ok_trace_closes_on_every_backend(self, backend, monkeypatch):
        with _traced_session(f"local://{backend}?workers=2", monkeypatch) as session:
            outcome = session.classify(EASY)
            assert outcome.ok and outcome.request_id is not None
            document = session.trace(outcome.request_id)
            assert document["found"]
            assert_closed_tree(document["trace"], "ok")
            stages = {span["stage"] for span in document["trace"]["spans"]}
            assert {"session", "scheduler", "backend", "kernel"} <= stages

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_timeout_trace_closes_on_every_backend(self, backend, monkeypatch):
        with _traced_session(f"local://{backend}?workers=2", monkeypatch) as session:
            outcome = session.classify(hard_problem(12), deadline=0.05)
            assert outcome.outcome == "timeout"
            document = session.trace(outcome.request_id)
            assert document["found"]
            assert_closed_tree(document["trace"], "timeout")

    @pytest.mark.parametrize("backend", ("threads", "processes"))
    def test_cancelled_trace_closes(self, backend, monkeypatch):
        with _traced_session(f"local://{backend}?workers=2", monkeypatch) as session:
            pending = session.submit(hard_problem(12), deadline=60)
            assert pending.request_id is not None
            assert pending.cancel() is True
            document = session.trace(pending.request_id)
            assert document["found"]
            assert_closed_tree(document["trace"], "cancelled")

    def test_error_finish_closes_every_open_span(self):
        tracer = Tracer(enabled=True)
        trace = tracer.start("classify")
        trace.begin("queued", "scheduler")
        trace.begin("search", "backend")
        trace.finish("error")
        document = tracer.get(trace.request_id)
        assert_closed_tree(document, "error")
        assert tracer.outcome_counts() == {"error": 1}

    def test_finish_is_idempotent(self):
        tracer = Tracer(enabled=True)
        trace = tracer.start("classify")
        trace.finish("ok")
        trace.finish("cancelled")  # a zombie settling late: discarded
        assert tracer.get(trace.request_id)["outcome"] == "ok"
        assert tracer.finished == 1

    def test_request_ids_are_unique(self):
        ids = {new_request_id() for _ in range(100)}
        assert len(ids) == 100

    def test_shared_flight_waiters_get_their_own_traces(self, monkeypatch):
        with _traced_session("local://threads?workers=2", monkeypatch) as session:
            pendings = [session.submit(EASY) for _ in range(4)]
            ids = [pending.request_id for pending in pendings]
            assert len(set(ids)) == 4
            for pending in pendings:
                assert pending.result(timeout=30).ok
            for request_id in ids:
                document = session.trace(request_id)
                assert document["found"]
                assert_closed_tree(document["trace"], "ok")


# ----------------------------------------------------------------------
# Tracer retention: ring, slow exemplars, JSONL log
# ----------------------------------------------------------------------
class TestTracerRetention:
    def test_ring_evicts_oldest(self):
        tracer = Tracer(enabled=True, ring_size=2)
        traces = [tracer.start("classify") for _ in range(3)]
        for trace in traces:
            trace.finish("ok")
        assert tracer.get(traces[0].request_id) is None
        assert tracer.get(traces[1].request_id) is not None
        assert tracer.get(traces[2].request_id) is not None
        assert tracer.as_dict()["retained"] == 2
        assert tracer.finished == 3

    def test_slow_exemplars_keep_top_k(self):
        tracer = Tracer(enabled=True, slow_threshold_ms=0.0, slow_kept=2)
        for _ in range(5):
            tracer.start("classify").finish("ok")
        section = tracer.as_dict()
        assert len(section["slow"]) == 2
        durations = [t["duration_ms"] for t in section["slow"]]
        assert durations == sorted(durations, reverse=True)

    def test_jsonl_log_parses_and_spans_close(self, tmp_path, monkeypatch):
        log = tmp_path / "trace.jsonl"
        monkeypatch.setenv("REPRO_TRACE", str(log))
        with connect("local://inline") as session:
            session.classify(EASY)
            session.classify(hard_problem(12), deadline=0.05)
        lines = log.read_text().strip().splitlines()
        assert len(lines) == 2
        documents = [json.loads(line) for line in lines]
        outcomes = {doc["outcome"] for doc in documents}
        assert outcomes == {"ok", "timeout"}
        for document in documents:
            assert_closed_tree(document, document["outcome"])

    def test_stats_carry_the_trace_section(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE", "mem")
        with connect("local://inline") as session:
            session.classify(EASY)
            section = session.stats()["trace"]
        assert section["enabled"] is True
        assert section["finished"] == 1
        assert section["outcomes"] == {"ok": 1}


# ----------------------------------------------------------------------
# Remote tracing + cancel over the wire
# ----------------------------------------------------------------------
class TestRemoteObservability:
    def test_tcp_classify_span_tree_retrievable_by_request_id(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE", "mem")
        with ThreadedService() as (host, port):
            with connect(f"tcp://{host}:{port}") as session:
                outcome = session.classify(EASY)
                assert outcome.ok and outcome.request_id is not None
                document = session.trace(outcome.request_id)
        assert document["found"]
        assert_closed_tree(document["trace"], "ok")
        stages = {span["stage"] for span in document["trace"]["spans"]}
        assert {"session", "scheduler", "backend", "kernel"} <= stages

    def test_remote_pending_cancel_over_the_wire(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE", "mem")
        with ThreadedService(backend="threads", workers=2) as (host, port):
            with connect(f"tcp://{host}:{port}") as session:
                pending = session.submit(hard_problem(12), deadline=60)
                assert pending.request_id is not None
                deadline_event = threading.Event()
                # Poll until the request is actually in flight server-side:
                # cancellation is racy by design, so retry briefly.
                cancelled = False
                for _ in range(100):
                    if pending.cancel():
                        cancelled = True
                        break
                    if pending.done:
                        break
                    deadline_event.wait(0.05)
                assert cancelled, "cancel never landed while in flight"
                outcome = pending.result(timeout=30)
                assert outcome.outcome == "cancelled"
                document = session.trace(pending.request_id)
                assert document["found"]
                assert_closed_tree(document["trace"], "cancelled")

    def test_batch_items_traceable_by_sub_id(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE", "mem")
        with ThreadedService() as address:
            with ServiceClient.connect_tcp(*address) as client:
                request_id = client._send_request(
                    "classify_batch", {"problems": [EASY, "1 : 1 1"]}
                )
                frames = list(client.frames(request_id))
                assert [f["type"] for f in frames] == ["item", "item", "done"]
                for seq in range(2):
                    payload = client.trace(f"{request_id}.{seq}")
                    assert payload["found"], f"item {seq} has no trace"
                    assert_closed_tree(payload["trace"], "ok")


# ----------------------------------------------------------------------
# Scheduler stats snapshot atomicity
# ----------------------------------------------------------------------
class TestAtomicStats:
    def test_conservation_holds_in_every_concurrent_snapshot(self):
        classifier = BatchClassifier(backend="threads", workers=4)
        try:
            scheduler = classifier.scheduler
            violations = []
            stop = threading.Event()

            def observer():
                while not stop.is_set():
                    payload = scheduler.stats_payload()
                    # Both conservation identities hold in *every* snapshot
                    # because counters and gauges are read under one lock:
                    # a torn read could otherwise see `flights` bumped but
                    # not `submitted`'s other addends, or a terminal outcome
                    # counted twice mid-transition.
                    if payload["submitted"] != (
                        payload["flights"]
                        + payload["deduped"]
                        + payload["cache_hits"]
                    ):
                        violations.append(("submitted", dict(payload)))
                    finished = (
                        payload["completed"]
                        + payload["failed"]
                        + payload["cancelled"]
                        + payload["timeouts"]
                    )
                    if finished > payload["flights"]:
                        violations.append(("finished>flights", dict(payload)))

            threads = [threading.Thread(target=observer) for _ in range(2)]
            for thread in threads:
                thread.start()
            from repro.problems.random_problems import random_problem

            pendings = [
                classifier.submit_item(random_problem(2, seed=seed))
                for seed in range(30)
            ]
            for pending in pendings:
                pending.result()
            stop.set()
            for thread in threads:
                thread.join()
            assert not violations, f"torn snapshots observed: {violations[:3]}"
        finally:
            classifier.close()

    def test_gauges_come_from_one_lock_acquisition(self):
        classifier = BatchClassifier(backend="inline")
        try:
            gauges = classifier.scheduler.gauges()
            assert set(gauges) >= {"in_flight", "queued", "slots_in_use"}
        finally:
            classifier.close()


# ----------------------------------------------------------------------
# SearchTimeStats raw export
# ----------------------------------------------------------------------
class TestSearchTimeExport:
    def test_export_shape_and_totals(self):
        stats = SearchTimeStats()
        stats.record("key-a", 0.005)
        stats.record("key-b", 0.050)
        exported = stats.export()
        assert exported["count"] == 2
        assert exported["sum_ms"] == pytest.approx(55.0)
        les = [le for le, _count in exported["buckets"]]
        assert les[-1] is None, "last bucket must be open-ended"
        assert sum(count for _le, count in exported["buckets"]) == 2
