"""Tests for the experiment harness."""

from repro.analysis import (
    classification_timing,
    format_table,
    landscape_census,
    scaling_experiment,
)
from repro.core import ComplexityClass
from repro.distributed import MISSolver
from repro.problems import maximal_independent_set, three_coloring
from repro.trees import complete_tree


def test_scaling_experiment_rows():
    problem = maximal_independent_set()
    rows = scaling_experiment(
        problem, MISSolver(problem), [complete_tree(2, 4), complete_tree(2, 6)]
    )
    assert [row.num_nodes for row in rows] == [31, 127]
    assert all(row.valid for row in rows)
    assert all(row.rounds == 4 for row in rows)
    assert rows[0].as_tuple() == (31, 4, True)


def test_classification_timing():
    rows = classification_timing([three_coloring(), maximal_independent_set()])
    assert len(rows) == 2
    assert rows[0][1] is ComplexityClass.LOGSTAR
    assert all(elapsed >= 0.0 for _n, _c, elapsed in rows)


def test_landscape_census_counts():
    counts = landscape_census(2, density=0.5, count=20)
    assert sum(counts.values()) == 20
    assert all(isinstance(key, ComplexityClass) for key in counts)


def test_format_table_alignment():
    table = format_table(["a", "bb"], [[1, 22], [333, 4]])
    lines = table.splitlines()
    assert len(lines) == 4
    assert lines[0].startswith("a")
    assert "333" in lines[3]
