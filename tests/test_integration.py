"""End-to-end integration tests: classify a problem, then solve it with the matching solver.

These tests exercise the full pipeline the paper describes: the classifier
produces a certificate, the certificate drives a distributed algorithm, and the
resulting labeling is verified against the original problem definition.
"""

import pytest

from repro.core import ComplexityClass, classify_with_certificates
from repro.distributed import ColoringSolver, GlobalSolver, LogSolver, MISSolver, PolynomialSolver
from repro.labeling import is_valid_labeling, verify_labeling
from repro.problems import catalog, maximal_independent_set, pi_k, three_coloring
from repro.trees import complete_tree, hairy_path, random_full_tree


class TestCertificateDrivenPipeline:
    def test_log_certificate_drives_log_solver(self):
        """Any problem whose classifier outcome is at most Θ(log n) is solvable by LogSolver."""
        tree = random_full_tree(2, 300, seed=21)
        for name, (problem, expected) in catalog().items():
            artifacts = classify_with_certificates(problem)
            if artifacts.log_certificate is None or problem.delta != 2:
                continue
            solver = LogSolver(problem, certificate=artifacts.log_certificate)
            result = solver.solve(tree)
            assert is_valid_labeling(problem, tree, result.labeling), name

    def test_log_solver_labels_stay_within_certificate(self):
        artifacts = classify_with_certificates(three_coloring())
        solver = LogSolver(three_coloring(), certificate=artifacts.log_certificate)
        tree = complete_tree(2, 7)
        result = solver.solve(tree)
        used = set(result.labeling.values())
        assert used <= set(artifacts.log_certificate.labels)

    def test_constant_certificate_exists_exactly_for_constant_problems(self):
        for name, (problem, expected) in catalog().items():
            artifacts = classify_with_certificates(problem)
            if expected is ComplexityClass.CONSTANT:
                assert artifacts.constant_certificate is not None, name
                assert artifacts.constant_certificate.validate() == [], name
            else:
                assert artifacts.constant_certificate is None, name

    def test_logstar_certificate_leaf_labels_subset_of_certificate_labels(self):
        for name, (problem, expected) in catalog().items():
            artifacts = classify_with_certificates(problem)
            certificate = artifacts.logstar_certificate
            if certificate is None:
                continue
            assert set(certificate.leaf_labels()) <= set(certificate.labels), name


class TestClassToSolverMapping:
    def test_full_pipeline_per_class(self):
        tree = random_full_tree(2, 200, seed=5)
        cases = [
            (maximal_independent_set(), MISSolver(maximal_independent_set())),
            (three_coloring(), ColoringSolver(three_coloring())),
            (pi_k(2), PolynomialSolver(2)),
        ]
        for problem, solver in cases:
            result = solver.solve(tree)
            report = verify_labeling(problem, tree, result.labeling)
            assert report.valid, (problem.name, report.violations[:2])

    def test_global_solver_handles_every_solvable_catalog_problem(self):
        tree = complete_tree(2, 5)
        for name, (problem, expected) in catalog().items():
            if expected is ComplexityClass.UNSOLVABLE or problem.delta != 2:
                continue
            result = GlobalSolver(problem).solve(tree)
            assert is_valid_labeling(problem, tree, result.labeling), name


class TestRoundComplexityShapes:
    """The empirical shape of the rounds-vs-n curves matches the paper's classes."""

    def test_constant_vs_logstar_vs_log_vs_polynomial(self):
        sizes = [complete_tree(2, depth) for depth in (6, 9, 12)]
        mis_rounds = [MISSolver(maximal_independent_set()).solve(t).rounds for t in sizes]
        coloring_rounds = [ColoringSolver(three_coloring()).solve(t).rounds for t in sizes]
        log_rounds = [LogSolver(three_coloring()).solve(t).rounds for t in sizes]
        poly_rounds = [PolynomialSolver(1).solve(t).rounds for t in sizes]

        # O(1): flat.
        assert len(set(mis_rounds)) == 1
        # Θ(log* n): grows by at most a couple of rounds.
        assert coloring_rounds[-1] - coloring_rounds[0] <= 3
        # Θ(log n): grows, but only linearly in the depth.
        assert log_rounds[0] < log_rounds[-1] <= log_rounds[0] * 4
        # Θ(n): grows roughly like the instance size.
        assert poly_rounds[-1] > poly_rounds[0] * 8

    def test_global_problem_is_cheap_on_balanced_but_expensive_on_hairy_instances(self):
        solver = GlobalSolver(pi_k(1))
        balanced = solver.solve(complete_tree(2, 9)).rounds
        hairy = solver.solve(hairy_path(2, 511)).rounds
        assert hairy > 10 * balanced
