"""Tests for the random problem generators."""

import pytest

from repro.core import classify, ComplexityClass
from repro.problems.random_problems import (
    all_possible_configurations,
    all_problems_with,
    num_possible_configurations,
    random_problem,
    random_problem_stream,
)


class TestUniverse:
    def test_all_possible_configurations_count(self):
        configs = all_possible_configurations(["1", "2"], 2)
        assert len(configs) == 6  # 2 parents x 3 children multisets
        assert len(configs) == num_possible_configurations(2, 2)

    def test_num_possible_configurations_formula(self):
        assert num_possible_configurations(3, 2) == 3 * 6
        assert num_possible_configurations(2, 3) == 2 * 4


class TestRandomProblems:
    def test_reproducibility(self):
        first = random_problem(3, seed=42)
        second = random_problem(3, seed=42)
        assert first.configurations == second.configurations

    def test_density_extremes(self):
        empty = random_problem(3, density=0.0, seed=1)
        full = random_problem(3, density=1.0, seed=1)
        assert empty.num_configurations == 0
        assert full.num_configurations == num_possible_configurations(3, 2)

    def test_invalid_density_rejected(self):
        with pytest.raises(ValueError):
            random_problem(2, density=1.5)

    def test_stream_is_reproducible(self):
        stream_a = random_problem_stream(3, seed=7)
        stream_b = random_problem_stream(3, seed=7)
        for _ in range(5):
            assert next(stream_a).configurations == next(stream_b).configurations

    def test_full_density_problem_is_constant_time(self):
        # The unconstrained problem is trivially zero-round solvable.
        problem = random_problem(2, density=1.0, seed=0)
        result = classify(problem)
        assert result.complexity is ComplexityClass.CONSTANT
        assert result.zero_round_solvable

    def test_random_census_hits_multiple_classes(self):
        """With two labels and moderate density the four-way landscape is populated."""
        seen = set()
        for seed in range(80):
            problem = random_problem(2, density=0.5, seed=seed)
            seen.add(classify(problem).complexity)
        assert ComplexityClass.CONSTANT in seen
        assert ComplexityClass.UNSOLVABLE in seen
        assert len(seen) >= 3


class TestExhaustiveEnumeration:
    def test_enumeration_count_single_label(self):
        problems = list(all_problems_with(1, 2))
        assert len(problems) == 2  # the single configuration is in or out

    def test_single_label_classification(self):
        problems = list(all_problems_with(1, 2))
        classes = {p.num_configurations: classify(p).complexity for p in problems}
        assert classes[0] is ComplexityClass.UNSOLVABLE
        assert classes[1] is ComplexityClass.CONSTANT
