"""Tests for the batch classification engine (canonical forms, cache, batching)."""

import json
import random

import pytest

from repro.core import ComplexityClass, classify, classify_with_certificates
from repro.engine import (
    BatchClassifier,
    ClassificationCache,
    canonical_form,
    canonical_key,
    problem_from_dict,
    problem_to_dict,
    relabel_result,
    result_from_dict,
    result_to_dict,
)
from repro.problems import catalog
from repro.problems.random_problems import random_problem


def _random_relabeling(problem, rng):
    labels = problem.sorted_labels()
    targets = [f"x{index}" for index in range(len(labels))]
    rng.shuffle(targets)
    return dict(zip(labels, targets))


# ----------------------------------------------------------------------
# Canonical forms
# ----------------------------------------------------------------------
class TestCanonicalForm:
    def test_invariant_under_random_permutations(self):
        """Property: relabeling never changes the canonical key."""
        rng = random.Random(7)
        for trial in range(60):
            problem = random_problem(3, density=0.4, seed=trial)
            relabeled = problem.relabel(_random_relabeling(problem, rng))
            assert canonical_key(problem) == canonical_key(relabeled), (
                f"trial {trial}: canonical key not renaming-invariant"
            )

    def test_invariant_on_catalog_problems(self):
        rng = random.Random(11)
        for name, (problem, _expected) in catalog().items():
            relabeled = problem.relabel(_random_relabeling(problem, rng))
            assert canonical_key(problem) == canonical_key(relabeled), name

    def test_different_problems_get_different_keys(self):
        two_coloring = catalog()["2-coloring"][0]
        three_coloring = catalog()["3-coloring"][0]
        assert canonical_key(two_coloring) != canonical_key(three_coloring)

    def test_mappings_are_inverse_bijections(self):
        problem = catalog()["3-coloring"][0]
        form = canonical_form(problem)
        assert set(form.forward) == set(problem.labels)
        for label, canonical in form.forward.items():
            assert form.inverse[canonical] == label
        # Round-tripping the canonical problem through the inverse mapping
        # reproduces the original configurations.
        assert form.canonical_problem.relabel(dict(form.inverse)).configurations == (
            problem.configurations
        )

    def test_canonical_problem_is_classified_identically(self):
        for name, (problem, expected) in catalog().items():
            form = canonical_form(problem)
            assert classify(form.canonical_problem).complexity == expected, name

    def test_alphabet_size_is_part_of_the_key(self):
        base = random_problem(2, density=1.0, seed=0)
        padded = base.create(
            delta=base.delta,
            configurations=[(c.parent, c.children) for c in base.configurations],
            labels=list(base.labels) + ["unused"],
        )
        assert canonical_key(base) != canonical_key(padded)

    def test_digest_is_stable(self):
        problem = catalog()["mis"][0]
        assert canonical_form(problem).digest == canonical_form(problem).digest


# ----------------------------------------------------------------------
# Serialization
# ----------------------------------------------------------------------
class TestSerialization:
    def test_problem_round_trip(self):
        for name, (problem, _expected) in catalog().items():
            payload = json.loads(json.dumps(problem_to_dict(problem)))
            assert problem_from_dict(payload) == problem, name

    def test_result_round_trip(self):
        for name, (problem, _expected) in catalog().items():
            result = classify(problem)
            payload = json.loads(json.dumps(result_to_dict(result)))
            assert result_from_dict(payload) == result, name

    def test_relabel_result_round_trip(self):
        problem = catalog()["mis"][0]
        result = classify(problem)
        mapping = {label: f"y{label}" for label in problem.labels}
        inverse = {value: key for key, value in mapping.items()}
        assert relabel_result(relabel_result(result, mapping), inverse) == result

    def test_relabel_result_translates_certificate_labels(self):
        problem = catalog()["mis"][0]
        result = classify(problem)
        assert result.constant_certificate_labels is not None
        mapping = {label: f"z{label}" for label in problem.labels}
        translated = relabel_result(result, mapping)
        assert translated.constant_certificate_labels == frozenset(
            mapping[label] for label in result.constant_certificate_labels
        )
        assert translated.complexity == result.complexity


# ----------------------------------------------------------------------
# Cache
# ----------------------------------------------------------------------
class TestClassificationCache:
    def test_hit_miss_statistics(self):
        cache = ClassificationCache()
        assert cache.lookup("k") is None
        cache.store("k", {"complexity": "CONSTANT"})
        assert cache.lookup("k") == {"complexity": "CONSTANT"}
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
        assert cache.stats.hit_rate == 0.5

    def test_peek_does_not_touch_stats(self):
        cache = ClassificationCache()
        cache.store("k", {"complexity": "CONSTANT"})
        assert cache.peek("k") is not None
        assert cache.peek("missing") is None
        assert cache.stats.total == 0

    def test_on_disk_round_trip(self, tmp_path):
        path = tmp_path / "cache.json"
        cache = ClassificationCache(path=str(path))
        cache.store("k1", {"complexity": "CONSTANT"})
        cache.store("k2", {"complexity": "LOG"})
        cache.save()

        reloaded = ClassificationCache(path=str(path))
        assert len(reloaded) == 2
        assert reloaded.peek("k1") == {"complexity": "CONSTANT"}
        assert set(reloaded.keys()) == {"k1", "k2"}

    def test_rejects_unknown_schema(self, tmp_path):
        path = tmp_path / "cache.json"
        path.write_text(json.dumps({"schema": 999, "entries": {}}))
        with pytest.raises(ValueError):
            ClassificationCache(path="json:" + str(path))

    def test_save_without_path_fails(self):
        with pytest.raises(ValueError):
            ClassificationCache().save()


# ----------------------------------------------------------------------
# Cache eviction (LRU, max_entries budget, compaction)
# ----------------------------------------------------------------------
class TestCacheEviction:
    @staticmethod
    def _entry(tag):
        return {"complexity": "CONSTANT", "tag": tag}

    def test_budget_is_never_exceeded_in_memory(self):
        cache = ClassificationCache(max_entries=3)
        for index in range(10):
            cache.store(f"k{index}", self._entry(index))
            assert len(cache) <= 3
        assert cache.stats.evictions == 7
        assert list(cache.keys()) == ["k7", "k8", "k9"]

    def test_lookup_refreshes_lru_order(self):
        cache = ClassificationCache(max_entries=3)
        for key in ("a", "b", "c"):
            cache.store(key, self._entry(key))
        assert cache.lookup("a") is not None  # refresh: "b" is now oldest
        cache.store("d", self._entry("d"))
        assert "b" not in cache
        assert set(cache.keys()) == {"a", "c", "d"}

    def test_peek_does_not_refresh_lru_order(self):
        cache = ClassificationCache(max_entries=2)
        cache.store("a", self._entry("a"))
        cache.store("b", self._entry("b"))
        assert cache.peek("a") is not None  # no refresh: "a" stays oldest
        cache.store("c", self._entry("c"))
        assert "a" not in cache
        assert set(cache.keys()) == {"b", "c"}

    def test_restore_refreshes_recency(self):
        cache = ClassificationCache(max_entries=2)
        cache.store("a", self._entry("a"))
        cache.store("b", self._entry("b"))
        cache.store("a", self._entry("a2"))  # overwrite refreshes recency
        cache.store("c", self._entry("c"))
        assert "b" not in cache
        assert cache.peek("a") == self._entry("a2")

    def test_invalid_budget_rejected(self):
        with pytest.raises(ValueError):
            ClassificationCache(max_entries=0)

    def test_max_entries_holds_on_disk_too(self, tmp_path):
        path = tmp_path / "cache.json"
        cache = ClassificationCache(path="json:" + str(path), max_entries=3)
        for index in range(10):
            cache.store(f"k{index}", self._entry(index))
        cache.save()
        payload = json.loads(path.read_text())
        assert payload["schema"] == 2
        assert len(payload["entries"]) == 3

    def test_lru_order_survives_save_load_round_trip(self, tmp_path):
        path = tmp_path / "cache.json"
        cache = ClassificationCache(path=str(path), max_entries=3)
        for key in ("a", "b", "c"):
            cache.store(key, self._entry(key))
        cache.lookup("a")  # order on disk becomes b, c, a
        cache.save()

        reloaded = ClassificationCache(path=str(path), max_entries=3)
        assert list(reloaded.keys()) == ["b", "c", "a"]
        reloaded.store("d", self._entry("d"))  # "b" is still the LRU entry
        assert "b" not in reloaded

    def test_loads_legacy_schema_1_files(self, tmp_path):
        path = tmp_path / "cache.json"
        path.write_text(
            json.dumps(
                {"schema": 1, "entries": {f"k{i}": self._entry(i) for i in range(5)}}
            )
        )
        unbounded = ClassificationCache(path="json:" + str(path))
        assert len(unbounded) == 5

        bounded = ClassificationCache(path="json:" + str(path), max_entries=2)
        assert len(bounded) == 2
        assert bounded.stats.evictions == 3

    def test_compaction_round_trip_shrinks_legacy_files(self, tmp_path):
        path = tmp_path / "cache.json"
        path.write_text(
            json.dumps(
                {"schema": 1, "entries": {f"k{i}": self._entry(i) for i in range(50)}}
            )
        )
        bytes_before = path.stat().st_size

        cache = ClassificationCache(path="json:" + str(path), max_entries=5)
        report = cache.compact()
        assert report["entries"] == 5
        assert report["bytes_before"] == bytes_before
        assert report["bytes_after"] < bytes_before

        reloaded = ClassificationCache(path="json:" + str(path))
        assert len(reloaded) == 5
        assert json.loads(path.read_text())["schema"] == 2

    def test_rejects_malformed_schema_2_entries(self, tmp_path):
        path = tmp_path / "cache.json"
        path.write_text(json.dumps({"schema": 2, "entries": [["k", {}, "extra"]]}))
        with pytest.raises(ValueError):
            ClassificationCache(path="json:" + str(path))

    def test_stats_report_includes_evictions(self):
        cache = ClassificationCache(max_entries=1)
        cache.store("a", self._entry("a"))
        cache.store("b", self._entry("b"))
        assert cache.stats.as_dict()["evictions"] == 1

    def test_bounded_cache_still_answers_whole_batch(self):
        """A budget smaller than the batch's distinct orbits loses no answers."""
        problems = [random_problem(2, density=0.5, seed=seed) for seed in range(40)]
        bounded = BatchClassifier(cache=ClassificationCache(max_entries=2))
        items = bounded.classify_many(problems)
        assert len(bounded.cache) <= 2
        assert [item.result.complexity for item in items] == [
            classify(problem).complexity for problem in problems
        ]


# ----------------------------------------------------------------------
# BatchClassifier
# ----------------------------------------------------------------------
class TestBatchClassifier:
    def test_cache_hit_equals_fresh_classification(self):
        """A hit on the identical problem reproduces the fresh result exactly."""
        for name, (problem, _expected) in catalog().items():
            # One classifier per entry: some catalog entries are isomorphic to
            # each other (pi-1 is a renaming of 2-coloring) and would otherwise
            # already be cached.
            classifier = BatchClassifier()
            fresh = classifier.classify_item(problem)
            hit = classifier.classify_item(problem)
            assert not fresh.from_cache
            assert hit.from_cache
            assert hit.result == fresh.result, name
            assert hit.result == classify_with_certificates(problem).result, name

    def test_isomorphic_hit_is_valid(self):
        """A hit on an isomorphic problem yields a correct, well-formed result."""
        classifier = BatchClassifier()
        rng = random.Random(3)
        for name, (problem, expected) in catalog().items():
            classifier.classify_item(problem)
            relabeled = problem.relabel(_random_relabeling(problem, rng))
            item = classifier.classify_item(relabeled)
            assert item.from_cache, name
            assert item.result.complexity == expected, name
            for labels in (
                item.result.log_certificate_labels,
                item.result.logstar_certificate_labels,
                item.result.constant_certificate_labels,
            ):
                if labels is not None:
                    assert labels <= relabeled.labels, name

    def test_batch_matches_naive_classification(self):
        problems = [random_problem(2, density=0.5, seed=seed) for seed in range(80)]
        classifier = BatchClassifier()
        items = classifier.classify_many(problems)
        assert [item.result.complexity for item in items] == [
            classify(problem).complexity for problem in problems
        ]

    def test_duplicate_heavy_census_amortization(self):
        """Acceptance: >=5x fewer full searches on a 200-draw census."""
        problems = [random_problem(2, density=0.5, seed=seed) for seed in range(200)]
        classifier = BatchClassifier()
        classifier.classify_many(problems)
        stats = classifier.stats
        assert stats.submitted == 200
        assert stats.full_searches * 5 <= stats.submitted, stats.as_dict()
        assert classifier.cache_stats.hit_rate >= 0.8

    def test_batch_results_in_submission_order(self):
        problems = [
            catalog()["mis"][0],
            catalog()["2-coloring"][0],
            catalog()["mis"][0],
        ]
        classifier = BatchClassifier()
        items = classifier.classify_many(problems)
        assert items[0].result.complexity is ComplexityClass.CONSTANT
        assert items[1].result.complexity is ComplexityClass.POLYNOMIAL
        assert items[2].result.complexity is ComplexityClass.CONSTANT
        assert not items[0].from_cache
        assert items[2].from_cache

    def test_multiprocessing_agrees_with_serial(self):
        problems = [random_problem(3, density=0.25, seed=seed) for seed in range(12)]
        serial = BatchClassifier()
        parallel = BatchClassifier(processes=2)
        serial_items = serial.classify_many(problems)
        parallel_items = parallel.classify_many(problems)
        assert [item.result for item in serial_items] == [
            item.result for item in parallel_items
        ]

    def test_persistent_cache_spans_classifier_instances(self, tmp_path):
        path = tmp_path / "results.json"
        problems = [random_problem(2, density=0.5, seed=seed) for seed in range(30)]

        first = BatchClassifier(cache=ClassificationCache(path=str(path)))
        first_items = first.classify_many(problems)
        first.cache.save()
        assert first.stats.full_searches > 0

        second = BatchClassifier(cache=ClassificationCache(path=str(path)))
        second_items = second.classify_many(problems)
        assert second.stats.full_searches == 0
        assert [item.result.complexity for item in first_items] == [
            item.result.complexity for item in second_items
        ]

    def test_stats_report_shape(self):
        classifier = BatchClassifier()
        classifier.classify(catalog()["mis"][0])
        report = classifier.stats_report()
        assert report["batch"]["submitted"] == 1
        assert report["batch"]["full_searches"] == 1
        assert report["cache"]["misses"] == 1
