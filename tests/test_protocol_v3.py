"""Protocol-v3 conformance tests: wire-level transcripts for priorities,
deadlines, ``cancel``, timeout item frames, and v2 backward compatibility."""

import time

import pytest

from repro.core import classify
from repro.engine import problem_to_dict
from repro.problems import hard_problem
from repro.problems.random_problems import random_problem
from repro.service import ServiceClient, ServiceError, ThreadedService
from repro.service.protocol import OPERATIONS, PROTOCOL_VERSION

SOLVABLE_SPECS = ["1 : 1 1", "1 : 2 2\n2 : 1 1", "1 : 1 2"]
"""Problems that always reach the first search checkpoint (solvable)."""


def _wire_frames(client, op, params):
    """Send one request and return its complete frame transcript."""
    request_id = client._send_request(op, params)
    return request_id, list(client.frames(request_id))


# ----------------------------------------------------------------------
# Hello / feature advertisement
# ----------------------------------------------------------------------
class TestHello:
    def test_hello_announces_v3_and_cancel(self):
        with ThreadedService() as address:
            with ServiceClient.connect_tcp(*address) as client:
                hello = client.server_info
        assert hello["protocol"] == PROTOCOL_VERSION == 3
        assert hello["ops"] == list(OPERATIONS)
        assert "cancel" in hello["ops"]


# ----------------------------------------------------------------------
# Deadlines on the wire
# ----------------------------------------------------------------------
class TestDeadlines:
    def test_classify_deadline_yields_timeout_result_frame(self):
        """A blown per-key deadline answers with outcome=timeout quickly."""
        problem = problem_to_dict(hard_problem(12))  # minutes uninterrupted
        with ThreadedService(backend="threads", workers=2) as address:
            with ServiceClient.connect_tcp(*address) as client:
                start = time.monotonic()
                payload = client.classify(problem, deadline_ms=250)
                elapsed = time.monotonic() - start
                stats = client.stats()
        assert payload["outcome"] == "timeout"
        assert payload["complexity"] is None
        assert payload["result"] is None
        assert elapsed < 8.0  # the minutes-long search was truly interrupted
        assert stats["workers"]["timeouts"] >= 1
        # The interrupted search never poisoned the shared cache.
        assert stats["cache"]["entries"] == 0

    def test_batch_deadline_streams_timeout_item_frames(self):
        """An already-expired budget times out every solvable item, on the
        wire as item frames with outcome=timeout and complexity=null."""
        with ThreadedService(backend="threads", workers=2) as address:
            with ServiceClient.connect_tcp(*address) as client:
                _id, frames = _wire_frames(
                    client,
                    "classify_batch",
                    {"problems": SOLVABLE_SPECS, "deadline_ms": 0.001},
                )
        kinds = [frame["type"] for frame in frames]
        assert kinds == ["item"] * len(SOLVABLE_SPECS) + ["done"]
        for frame in frames[:-1]:
            assert frame["data"]["outcome"] == "timeout"
            assert frame["data"]["complexity"] is None
        summary = frames[-1]["data"]
        assert summary["timeouts"] == len(SOLVABLE_SPECS)
        assert summary["cache_hits"] == 0 and summary["cache_misses"] == 0
        assert summary["hit_rate"] == 0.0  # nothing completed
        # One denominator: hits + misses + interrupted == count.
        assert (
            summary["cache_hits"]
            + summary["cache_misses"]
            + summary["timeouts"]
            + summary["cancelled"]
        ) == summary["count"]

    def test_census_with_deadline_tallies_timeouts(self):
        with ThreadedService(backend="threads", workers=2) as address:
            with ServiceClient.connect_tcp(*address) as client:
                summary = client.census(labels=2, count=12, seed=5, deadline_ms=0.001)
        counts = summary["counts"]
        assert sum(counts.values()) == 12
        # An already-expired budget times out deterministically, before any
        # search starts.
        assert counts.get("timeout", 0) == summary["timeouts"] > 0
        non_timeout = sum(
            count for value, count in counts.items() if value != "timeout"
        )
        assert summary["timeouts"] + non_timeout == 12

    def test_bad_deadline_and_priority_are_rejected(self):
        with ThreadedService() as address:
            with ServiceClient.connect_tcp(*address) as client:
                for params in (
                    {"problem": "1 : 1 1", "deadline_ms": -5},
                    {"problem": "1 : 1 1", "deadline_ms": "soon"},
                    {"problem": "1 : 1 1", "deadline_ms": True},
                    {"problem": "1 : 1 1", "priority": "urgent"},
                ):
                    with pytest.raises(ServiceError) as excinfo:
                        client.request("classify", params)
                    assert excinfo.value.code == "bad-request"
                # The connection survives and still serves.
                assert client.classify("1 : 1 1")["complexity"] == "O(1)"

    def test_priorities_are_accepted_on_every_scheduling_op(self):
        with ThreadedService() as address:
            with ServiceClient.connect_tcp(*address) as client:
                assert client.classify("1 : 1 1", priority="interactive")["outcome"] == "ok"
                summary = client.classify_batch(
                    ["1 : 1 1"], priority="batch", deadline_ms=60000
                )
                assert summary["timeouts"] == 0
                census = client.census(labels=2, count=5, priority="warm")
                assert sum(census["counts"].values()) == 5
                warm = client.warm(
                    census={"labels": 2, "count": 5}, wait=True, priority="warm"
                )
                assert warm["waited"] is True


# ----------------------------------------------------------------------
# Cancellation on the wire
# ----------------------------------------------------------------------
def _cancel_until_found(address, request_id, timeout=10.0):
    """Retry ``cancel`` from a second connection until the id is in flight."""
    deadline = time.monotonic() + timeout
    with ServiceClient.connect_tcp(*address) as canceller:
        while time.monotonic() < deadline:
            payload = canceller.cancel(request_id)
            if payload["found"]:
                return payload
            time.sleep(0.02)
    raise AssertionError(f"request {request_id} never became cancellable")


class TestCancel:
    def test_cancel_unknown_request_is_not_found(self):
        with ThreadedService() as address:
            with ServiceClient.connect_tcp(*address) as client:
                payload = client.cancel("no-such-request")
        assert payload == {
            "request_id": "no-such-request",
            "found": False,
            "cancelled": 0,
        }

    def test_cancel_requires_a_request_id(self):
        with ThreadedService() as address:
            with ServiceClient.connect_tcp(*address) as client:
                with pytest.raises(ServiceError) as excinfo:
                    client.request("cancel", {})
                assert excinfo.value.code == "bad-request"

    def test_cancel_interrupts_an_in_flight_classify(self):
        """Transcript: classify of a minutes-long search, cancelled from connection B;
        connection A receives a result frame with outcome=cancelled."""
        spec = problem_to_dict(hard_problem(12))
        with ThreadedService(backend="threads", workers=2) as address:
            with ServiceClient.connect_tcp(*address) as client:
                start = time.monotonic()
                request_id = client._send_request("classify", {"problem": spec})
                cancel_payload = _cancel_until_found(address, request_id)
                frames = list(client.frames(request_id))
                elapsed = time.monotonic() - start
        # `cancelled` counts submissions detached at response time; a cancel
        # racing the fan-out may report 0 yet still take effect below.
        assert cancel_payload["cancelled"] >= 0
        assert [frame["type"] for frame in frames] == ["result"]
        assert frames[0]["data"]["outcome"] == "cancelled"
        assert frames[0]["data"]["complexity"] is None
        assert elapsed < 8.0

    def test_cancel_spares_completed_items_of_a_batch(self):
        """Cancelling a batch kills only the still-running searches: items
        already classified stream as ok, the hard one as cancelled."""
        easy = "1 : 2 2\n2 : 1 1"
        hard = problem_to_dict(hard_problem(12))
        with ThreadedService(backend="threads", workers=2) as address:
            with ServiceClient.connect_tcp(*address) as client:
                request_id = client._send_request(
                    "classify_batch", {"problems": [easy, hard]}
                )
                _cancel_until_found(address, request_id)
                frames = list(client.frames(request_id))
        kinds = [frame["type"] for frame in frames]
        assert kinds == ["item", "item", "done"]
        outcomes = [frame["data"]["outcome"] for frame in frames[:-1]]
        # The hard key is always cancelled; the easy one races the cancel
        # and may land on either side — both are conforming transcripts.
        assert outcomes[1] == "cancelled"
        assert outcomes[0] in ("ok", "cancelled")
        summary = frames[-1]["data"]
        assert summary["cancelled"] == outcomes.count("cancelled")

    def test_workers_stats_report_cancellations(self):
        spec = problem_to_dict(hard_problem(12))
        with ThreadedService(backend="threads", workers=2) as address:
            with ServiceClient.connect_tcp(*address) as client:
                request_id = client._send_request("classify", {"problem": spec})
                _cancel_until_found(address, request_id)
                list(client.frames(request_id))
                stats = client.stats()
        workers = stats["workers"]
        assert workers["cancelled"] >= 1
        assert workers["slots_in_use"] == 0 or workers["in_flight"] >= 0
        assert workers["priorities"] == ["interactive", "batch", "warm"]


# ----------------------------------------------------------------------
# v2 backward compatibility
# ----------------------------------------------------------------------
class TestV2Compatibility:
    """Requests without the v3 fields behave exactly as protocol 2 (PR 3)."""

    V2_ITEM_KEYS = {
        "name",
        "complexity",
        "details",
        "from_cache",
        "canonical_key",
        "result",
        "elapsed_ms",
    }

    def test_plain_batch_transcript_shape_is_unchanged(self):
        problems = [random_problem(2, density=0.5, seed=seed) for seed in range(6)]
        specs = [problem_to_dict(problem) for problem in problems]
        with ThreadedService(backend="threads", workers=2) as address:
            with ServiceClient.connect_tcp(*address) as client:
                request_id, frames = _wire_frames(
                    client, "classify_batch", {"problems": specs}
                )
        kinds = [frame["type"] for frame in frames]
        assert kinds == ["item"] * 6 + ["done"]
        assert [frame["seq"] for frame in frames[:-1]] == list(range(6))
        for frame in frames[:-1]:
            data = frame["data"]
            # Every v2 field is present with its v2 meaning; the additions
            # are purely additive (outcome is always "ok" here).
            assert self.V2_ITEM_KEYS <= set(data)
            assert data["outcome"] == "ok"
            assert frame["id"] == request_id
        assert [frame["data"]["complexity"] for frame in frames[:-1]] == [
            classify(problem).complexity.value for problem in problems
        ]
        summary = frames[-1]["data"]
        for key in ("count", "cache_hits", "cache_misses", "hit_rate", "stats"):
            assert key in summary
        assert summary["timeouts"] == 0 and summary["cancelled"] == 0

    def test_plain_classify_and_census_complete_without_deadlines(self):
        with ThreadedService() as address:
            with ServiceClient.connect_tcp(*address) as client:
                payload = client.classify("1 : 2 2\n2 : 1 1")
                census = client.census(labels=2, count=10, seed=7)
        assert payload["complexity"] == "n^Theta(1)"
        assert payload["outcome"] == "ok"
        assert sum(census["counts"].values()) == 10
        assert "timeout" not in census["counts"]

    def test_warm_without_v3_fields_matches_pr3_summary(self):
        with ThreadedService() as address:
            with ServiceClient.connect_tcp(*address) as client:
                warm = client.warm(census={"labels": 2, "count": 8}, wait=True)
        assert warm["waited"] is True
        assert warm["scheduled"] == warm["unique_keys"] > 0
        assert warm["failed"] == 0
        assert warm["interrupted"] == 0
