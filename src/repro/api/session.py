"""The classification session: one front door over every execution path.

:class:`ClassificationSession` is *the* supported way to classify LCL
problems.  It is constructed from a URL-style endpoint (or a
:class:`~repro.api.config.SessionConfig`) and presents one typed surface —
:meth:`classify`, :meth:`classify_many`, :meth:`submit`, :meth:`census`,
:meth:`warm`, :meth:`stats` — whose behavior is identical whether the work
runs

* inline in the calling thread (``local://inline``),
* on an in-process worker pool through the single-flight scheduler
  (``local://threads``, ``local://processes``), or
* on a remote service over the JSON-lines protocol (``tcp://host:port``,
  ``stdio:``).

Every call returns :class:`~repro.api.outcome.Outcome` objects with the same
fields on every endpoint, and every failure raises the unified
:mod:`repro.api.errors` hierarchy; the endpoint parity tests assert both.

Two interchangeable drivers implement the surface: ``_LocalDriver`` owns a
:class:`~repro.engine.batch.BatchClassifier` (and therefore a scheduler and
cache), ``_RemoteDriver`` owns a :class:`~repro.service.client.ServiceClient`
connection.  The session itself only resolves problems, applies the
config's scheduling defaults, and validates request shape *before* dispatch
— which is what makes local and remote error messages literally equal.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future
from concurrent.futures import TimeoutError as FuturesTimeoutError
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from ..core.cancellation import SearchInterrupted
from ..core.parser import parse_problem
from ..core.problem import LCLError, LCLProblem
from ..engine.batch import BatchClassifier, PendingClassification
from ..engine.cache import ClassificationCache
from ..engine.canonical import canonical_form
from ..engine.serialization import problem_from_dict, problem_to_dict
from ..obs import build_registry, render_prometheus
from ..obs.trace import DISABLED_TRACER, RequestTrace, Tracer
from ..problems.random_problems import random_problem
from ..workers.scheduler import PRIORITIES
from .config import MODE_LOCAL, MODE_TCP, SessionConfig, parse_endpoint
from .errors import (
    InternalError,
    ProblemFormatError,
    RequestError,
    SessionError,
    TransportError,
    UnsupportedOperationError,
    from_service_error,
)
from .outcome import Outcome

ProblemSpec = Union[LCLProblem, str, Mapping[str, Any]]
"""Anything a session accepts as a problem: a parsed :class:`LCLProblem`,
paper-notation text, or a serialized problem dict."""


def resolve_problem(spec: ProblemSpec, default_name: str = "<session>") -> LCLProblem:
    """Turn any accepted problem spec into an :class:`LCLProblem`.

    Mirrors the service's validation (including its message shape,
    ``bad problem: ...``) so a malformed spec fails identically on every
    endpoint — it is rejected *here*, before any dispatch.
    """
    try:
        if isinstance(spec, LCLProblem):
            return spec
        if isinstance(spec, str):
            return parse_problem(spec, name=default_name)
        if isinstance(spec, Mapping):
            return problem_from_dict(spec)
    except (LCLError, ValueError, KeyError, TypeError) as error:
        raise ProblemFormatError(f"bad problem: {error}") from error
    raise ProblemFormatError(
        "a problem must be paper-notation text, a serialized problem object, "
        "or an LCLProblem"
    )


def validate_census_params(params: Mapping[str, Any]) -> Dict[str, Any]:
    """Validate a census parameter object; return its normalized echo form.

    The same validation (and the same messages) as the service's ``census``/
    ``warm`` handlers, applied client-side before any dispatch.
    """
    try:
        labels = int(params.get("labels", 2))
        delta = int(params.get("delta", 2))
        density = float(params.get("density", 0.5))
        count = int(params.get("count", 100))
        seed = int(params.get("seed", 0))
    except (TypeError, ValueError) as error:
        raise RequestError(f"bad census parameter: {error}") from error
    if count < 1:
        raise RequestError("census requires count >= 1")
    return {
        "labels": labels,
        "delta": delta,
        "density": density,
        "count": count,
        "seed": seed,
    }


def census_problems(params: Mapping[str, Any]) -> Tuple[List[LCLProblem], Dict[str, Any]]:
    """A census's problem list from its parameter object, plus the echo.

    The same generation as the service's ``census``/``warm`` handlers:
    ``seed + index`` per draw, so a local census and a remote census of
    equal parameters classify identical problems.  Remote drivers skip this
    and ship only the (validated) parameter object — the server generates
    the identical draws itself.
    """
    echo = validate_census_params(params)
    problems = [
        random_problem(
            echo["labels"],
            delta=echo["delta"],
            density=echo["density"],
            seed=echo["seed"] + index,
        )
        for index in range(echo["count"])
    ]
    return problems, echo


class PendingOutcome:
    """A submitted problem whose classification may still be running.

    Returned by :meth:`ClassificationSession.submit`.  :meth:`result` blocks
    until the :class:`Outcome` is available (an interrupted search resolves
    to an Outcome with ``outcome="timeout"``/``"cancelled"``, it does not
    raise).  :meth:`cancel` detaches this submission from its search when the
    endpoint supports it: local sessions detach in-process, TCP sessions
    open a short-lived second connection and invoke the service's ``cancel``
    operation with this submission's reserved wire id (stdio sessions have
    a single pipe and return ``False``).

    ``request_id`` is the tracing/wire id of this submission — pass it to
    :meth:`ClassificationSession.trace` to fetch the finished span tree.
    ``None`` when the session runs with observability off (``obs=0``, or a
    local session with tracing disabled).
    """

    __slots__ = ("_result", "_done", "_cancel", "request_id")

    def __init__(
        self,
        result: Callable[[Optional[float]], Outcome],
        done: Callable[[], bool],
        cancel: Optional[Callable[[], bool]] = None,
        request_id: Optional[Any] = None,
    ) -> None:
        self._result = result
        self._done = done
        self._cancel = cancel
        self.request_id = request_id

    @property
    def done(self) -> bool:
        return self._done()

    def cancel(self) -> bool:
        """Detach from the search; ``True`` when a live submission was detached."""
        if self._cancel is None:
            return False
        return self._cancel()

    def result(self, timeout: Optional[float] = None) -> Outcome:
        """Block until classified (``timeout`` bounds the *wait*, in seconds).

        A wait that outlasts ``timeout`` raises the standard
        :class:`TimeoutError` (the submission keeps running — call again);
        this is "not ready yet", deliberately distinct from the session's
        :class:`~repro.api.errors.ClassificationTimeout`, which means the
        *search* blew its deadline.
        """
        return self._result(timeout)


# ----------------------------------------------------------------------
# Local driver
# ----------------------------------------------------------------------
class _LocalDriver:
    """Session driver executing in-process through the batch engine."""

    def __init__(self, config: SessionConfig) -> None:
        cache: Optional[ClassificationCache] = None
        if (
            config.cache_path
            or config.cache_max_entries is not None
            or config.cache_ttl is not None
        ):
            cache = ClassificationCache(
                path=config.cache_path,
                max_entries=config.cache_max_entries,
                ttl_seconds=config.cache_ttl,
                flush_interval=config.cache_flush_interval,
                flush_max_dirty=config.cache_flush_count,
            )
        self.classifier = BatchClassifier(
            cache=cache, backend=config.backend, workers=config.workers
        )
        # Observability: one env-gated tracer plus one metrics registry per
        # driver, mirroring exactly what the service wires up — the registry
        # is built by the same `build_registry`, which is what makes the
        # local-vs-remote metrics parity structural rather than tested-for.
        # `obs=0` skips all of it; `self.tracer.start()` then returns None
        # and every trace branch below is dead.
        self._obs = config.obs
        self.tracer = Tracer.from_env() if config.obs else DISABLED_TRACER
        self._served = 0
        self._served_lock = threading.Lock()
        self._started_at = time.time()
        self.registry = (
            build_registry(
                self.classifier,
                self.tracer,
                lambda: self._served,
                self._started_at,
            )
            if config.obs
            else None
        )

    def _start_trace(self, op: str) -> Optional[RequestTrace]:
        with self._served_lock:
            self._served += 1
        return self.tracer.start(op)

    def _resolve(
        self,
        pending: PendingClassification,
        trace: Optional[RequestTrace] = None,
    ) -> Outcome:
        try:
            item = pending.result()
        except SearchInterrupted:  # pragma: no cover - normally pre-converted
            if trace is not None:
                trace.finish("error")
            raise
        except SessionError:
            if trace is not None:
                trace.finish("error")
            raise
        except Exception as error:  # noqa: BLE001 - one internal-error surface
            if trace is not None:
                trace.finish("error")
            raise InternalError(f"{type(error).__name__}: {error}") from error
        if trace is not None:
            trace.finish(item.outcome)
        return Outcome.from_batch_item(
            item, request_id=trace.request_id if trace is not None else None
        )

    def submit(
        self, problem: LCLProblem, priority: str, deadline: Optional[float]
    ) -> PendingOutcome:
        trace = self._start_trace("submit")
        pending = self.classifier.submit_item(
            problem, priority=priority, deadline=deadline, trace=trace
        )
        return PendingOutcome(
            result=lambda timeout=None: self._resolve_with_timeout(
                pending, timeout, trace
            ),
            done=lambda: pending.done,
            cancel=lambda: self._cancel_pending(pending, trace),
            request_id=trace.request_id if trace is not None else None,
        )

    @staticmethod
    def _cancel_pending(
        pending: PendingClassification, trace: Optional[RequestTrace]
    ) -> bool:
        detached = pending.cancel()
        # A detached submission may never be result()ed again; close its
        # trace now so cancelled span trees are complete (finish is
        # idempotent, so a later result() call is harmless).
        if detached and trace is not None:
            trace.finish("cancelled")
        return detached

    def _resolve_with_timeout(
        self,
        pending: PendingClassification,
        timeout: Optional[float],
        trace: Optional[RequestTrace] = None,
    ) -> Outcome:
        try:
            item = pending.result(timeout=timeout)
        except FuturesTimeoutError:
            # "Not ready within the wait" is not an engine failure: let the
            # standard TimeoutError through, identically to remote pendings.
            # The submission (and its trace) keeps running — don't finish.
            raise
        except SessionError:
            if trace is not None:
                trace.finish("error")
            raise
        except Exception as error:  # noqa: BLE001
            if trace is not None:
                trace.finish("error")
            raise InternalError(f"{type(error).__name__}: {error}") from error
        if trace is not None:
            trace.finish(item.outcome)
        return Outcome.from_batch_item(
            item, request_id=trace.request_id if trace is not None else None
        )

    def classify(
        self, problem: LCLProblem, priority: str, deadline: Optional[float]
    ) -> Outcome:
        trace = self._start_trace("classify")
        pending = self.classifier.submit_item(
            problem, priority=priority, deadline=deadline, trace=trace
        )
        return self._resolve(pending, trace)

    def iter_outcomes(
        self,
        problems: Sequence[LCLProblem],
        priority: str,
        deadline: Optional[float],
    ) -> Iterator[Outcome]:
        # Fan everything out up front (the pooled backends overlap searches),
        # then stream outcomes in submission order as each future resolves.
        # One trace per item, like the service's per-item sub-traces.
        submissions = []
        for problem in problems:
            trace = self._start_trace("classify_batch")
            submissions.append(
                (
                    self.classifier.submit_item(
                        problem, priority=priority, deadline=deadline, trace=trace
                    ),
                    trace,
                )
            )

        def generate() -> Iterator[Outcome]:
            for pending, trace in submissions:
                yield self._resolve(pending, trace)

        return generate()

    def warm(
        self,
        problems: Sequence[LCLProblem],
        census: Optional[Mapping[str, Any]],
        wait: bool,
        priority: str,
        deadline: Optional[float],
        budget: Optional[float],
    ) -> Dict[str, Any]:
        workload = list(problems)
        if census is not None:
            census_list, _echo = census_problems(census)
            workload.extend(census_list)
        forms = [canonical_form(problem) for problem in workload]
        summary = self.classifier.scheduler.warm(
            forms, wait=wait, priority=priority, deadline=deadline, budget=budget
        )
        summary["count"] = len(workload)
        return summary

    def stats(self) -> Dict[str, Any]:
        payload = {
            # cache.info() is the one source of the cache-section shape, so
            # local and remote stats expose identical fields by construction.
            "cache": self.classifier.cache.info(),
            "batch": self.classifier.stats.as_dict(),
            "workers": self.classifier.scheduler.stats_payload(),
        }
        if self._obs:
            payload["trace"] = self.tracer.as_dict()
        return payload

    def metrics(self) -> Dict[str, Any]:
        if self.registry is None:
            raise UnsupportedOperationError(
                "observability is disabled on this session (obs=0)"
            )
        snapshot = self.registry.snapshot()
        return {"snapshot": snapshot, "text": render_prometheus(snapshot)}

    def trace(self, request_id: Any) -> Dict[str, Any]:
        if not self._obs:
            raise UnsupportedOperationError(
                "observability is disabled on this session (obs=0)"
            )
        document = self.tracer.get(request_id)
        return {
            "request_id": request_id,
            "found": document is not None,
            "trace": document,
        }

    def cancel(self, request_id: Any) -> Dict[str, Any]:
        raise UnsupportedOperationError(
            "local sessions have no request ids; cancel a PendingOutcome instead"
        )

    def shutdown(self) -> Dict[str, Any]:
        raise UnsupportedOperationError(
            "local sessions have no remote service to shut down; close() the session"
        )

    def close(self) -> None:
        cache = self.classifier.cache
        self.classifier.close()
        # cache.close() persists everything outstanding (full snapshot when
        # a durable path is configured) and stops the write-behind flusher.
        cache.close()
        self.tracer.close()


# ----------------------------------------------------------------------
# Remote driver
# ----------------------------------------------------------------------
class _RemoteDriver:
    """Session driver speaking the service protocol over TCP or stdio pipes.

    One connection, used sequentially: an internal lock serializes requests,
    so :meth:`submit`'s background thread and direct calls never interleave
    frames.
    """

    def __init__(self, config: SessionConfig) -> None:
        # Imported lazily so `import repro.api` works (and local sessions
        # run) even where the service subpackage's asyncio machinery is
        # unwanted; only remote sessions pay for it.
        from ..service.client import ServiceClient, ServiceError

        self.config = config
        self._service_client = ServiceClient
        self._service_error = ServiceError
        try:
            if config.mode == MODE_TCP:
                self.client = ServiceClient.connect_tcp(
                    config.host, config.port, retries=config.retries
                )
            else:
                self.client = ServiceClient.spawn_stdio(
                    cache=config.cache_path,
                    cache_max_entries=config.cache_max_entries,
                )
        except OSError as error:
            raise TransportError(
                f"cannot reach service at {config.endpoint()}: {error}"
            ) from error
        except ServiceError as error:
            raise from_service_error(error) from error
        # One connection, used sequentially.  The lock serializes requests
        # across threads; `_stream_owner` additionally catches the same
        # thread issuing a call while one of its own streaming iterators is
        # still live — without it that call would self-deadlock on the
        # non-reentrant lock (and with a reentrant one it would eat the
        # stream's frames), so it raises a clear error instead.
        self._io = threading.Lock()
        self._stream_owner: Optional[threading.Thread] = None

    def _acquire(self) -> None:
        if self._stream_owner is threading.current_thread():
            raise RequestError(
                "a streaming request is still being consumed on this session; "
                "exhaust the iterator (or open a second session) before "
                "issuing another call"
            )
        self._io.acquire()

    def _call(self, operation: Callable[[], Any]) -> Any:
        self._acquire()
        try:
            return operation()
        except self._service_error as error:
            raise from_service_error(error) from error
        finally:
            self._io.release()

    @staticmethod
    def _deadline_ms(deadline: Optional[float]) -> Optional[float]:
        return deadline * 1000.0 if deadline is not None else None

    def classify(
        self,
        problem: LCLProblem,
        priority: str,
        deadline: Optional[float],
        request_id: Optional[Any] = None,
    ) -> Outcome:
        # Reserve the wire id up front (when observability is on) so the
        # outcome can carry it — that id is what `trace`/`cancel` address.
        if request_id is None and self.config.obs:
            request_id = self.client.reserve_request_id()
        payload = self._call(
            lambda: self.client.classify(
                problem_to_dict(problem),
                priority=priority,
                deadline_ms=self._deadline_ms(deadline),
                request_id=request_id,
            )
        )
        return Outcome.from_payload(payload, problem, request_id=request_id)

    def submit(
        self, problem: LCLProblem, priority: str, deadline: Optional[float]
    ) -> PendingOutcome:
        # The wire id is minted *before* the background thread sends the
        # request: it is the handle a concurrent `cancel` (below) or `trace`
        # addresses.  itertools.count makes reservation thread-safe.
        request_id: Optional[Any] = None
        cancel: Optional[Callable[[], bool]] = None
        if self.config.obs:
            request_id = self.client.reserve_request_id()
            if self.config.mode == MODE_TCP:
                # The session's own connection is busy carrying this very
                # request, so cancellation travels on a short-lived second
                # connection — exactly how the protocol intends `cancel`
                # ("necessarily from another client").  stdio services have
                # a single pipe pair: no second connection, no remote cancel.
                reserved = request_id
                cancel = lambda: self._cancel_over_second_connection(reserved)
        future: "Future[Outcome]" = Future()

        def run() -> None:
            try:
                future.set_result(
                    self.classify(problem, priority, deadline, request_id)
                )
            except BaseException as error:  # noqa: BLE001 - ferried to waiter
                future.set_exception(error)

        threading.Thread(target=run, daemon=True, name="repro-session-submit").start()
        return PendingOutcome(
            result=lambda timeout=None: future.result(timeout),
            done=future.done,
            cancel=cancel,
            request_id=request_id,
        )

    def _cancel_over_second_connection(self, request_id: Any) -> bool:
        try:
            client = self._service_client.connect_tcp(
                self.config.host, self.config.port
            )
        except OSError:
            return False
        try:
            payload = client.cancel(request_id)
        except (OSError, self._service_error):
            return False
        finally:
            client.close()
        # `found` — not the detach count — is the delivery signal: a cancel
        # racing the target's fan-out can detach 0 submissions at response
        # time yet still take effect (the server handles the late ones).
        return bool(payload.get("found"))

    def iter_outcomes(
        self,
        problems: Sequence[LCLProblem],
        priority: str,
        deadline: Optional[float],
    ) -> Iterator[Outcome]:
        specs = [problem_to_dict(problem) for problem in problems]
        params: Dict[str, Any] = {"problems": specs, "priority": priority}
        if deadline is not None:
            params["deadline_ms"] = self._deadline_ms(deadline)
        return self._stream("classify_batch", params, problems)

    def iter_census(
        self,
        echo: Mapping[str, Any],
        priority: str,
        deadline: Optional[float],
    ) -> Iterator[Outcome]:
        # Only the five census parameters travel; the server generates the
        # identical `seed + index` draws itself.
        params: Dict[str, Any] = {**echo, "priority": priority}
        if deadline is not None:
            params["deadline_ms"] = self._deadline_ms(deadline)
        return self._stream("census", params, None)

    def _stream(
        self,
        op: str,
        params: Dict[str, Any],
        problems: Optional[Sequence[LCLProblem]],
    ) -> Iterator[Outcome]:
        def generate() -> Iterator[Outcome]:
            self._acquire()
            self._stream_owner = threading.current_thread()
            try:
                for index, payload in enumerate(self.client.stream(op, params)):
                    problem = problems[index] if problems is not None else None
                    yield Outcome.from_payload(payload, problem)
            except self._service_error as error:
                raise from_service_error(error) from error
            finally:
                self._stream_owner = None
                self._io.release()

        return generate()

    def warm(
        self,
        problems: Sequence[LCLProblem],
        census: Optional[Mapping[str, Any]],
        wait: bool,
        priority: str,
        deadline: Optional[float],
        budget: Optional[float],
    ) -> Dict[str, Any]:
        # Explicit problems serialize; a census travels as its compact
        # parameter object — the server expands it to the identical draws.
        return self._call(
            lambda: self.client.warm(
                problems=(
                    [problem_to_dict(problem) for problem in problems]
                    if problems
                    else None
                ),
                census=dict(census) if census is not None else None,
                wait=wait,
                priority=priority,
                deadline_ms=self._deadline_ms(deadline),
                budget_ms=self._deadline_ms(budget),
            )
        )

    def stats(self) -> Dict[str, Any]:
        return self._call(self.client.stats)

    def metrics(self) -> Dict[str, Any]:
        return self._call(self.client.metrics)

    def trace(self, request_id: Any) -> Dict[str, Any]:
        return self._call(lambda: self.client.trace(request_id))

    def cancel(self, request_id: Any) -> Dict[str, Any]:
        return self._call(lambda: self.client.cancel(request_id))

    def shutdown(self) -> Dict[str, Any]:
        return self._call(self.client.shutdown)

    def close(self) -> None:
        self.client.close()


# ----------------------------------------------------------------------
# The facade
# ----------------------------------------------------------------------
class ClassificationSession:
    """One typed handle on a classification engine, wherever it runs.

    Construct with :meth:`open` (or the module-level
    :func:`repro.api.connect`) from an endpoint URL or a
    :class:`SessionConfig`::

        with ClassificationSession.open("local://threads?workers=4") as session:
            outcome = session.classify("1 : 2 2\\n2 : 1 1")
            print(outcome.complexity)

    Sessions are context managers; :meth:`close` tears down whatever the
    session owns (worker pools, connections, a spawned stdio service) and
    persists a configured cache file.

    Scheduling defaults: each call's ``priority``/``deadline`` falls back to
    the config's ``default_priority``/``default_deadline``, then to the
    operation's own class — ``interactive`` for :meth:`classify`/
    :meth:`submit`, ``batch`` for :meth:`classify_many`, ``warm`` for
    :meth:`census` and :meth:`warm` — the same defaults the service applies
    on the wire.
    """

    def __init__(self, config: SessionConfig) -> None:
        self.config = config
        if config.mode == MODE_LOCAL:
            self._driver: Union[_LocalDriver, _RemoteDriver] = _LocalDriver(config)
        else:
            self._driver = _RemoteDriver(config)
        self._closed = False

    @classmethod
    def open(
        cls,
        endpoint: Union[str, SessionConfig] = "local://inline",
        **overrides: Any,
    ) -> "ClassificationSession":
        """Open a session on an endpoint URL or an explicit config.

        Keyword overrides patch individual :class:`SessionConfig` fields on
        top of whatever the URL specified.
        """
        if isinstance(endpoint, SessionConfig):
            config = endpoint
            if overrides:
                from dataclasses import replace

                config = replace(config, **overrides)
        else:
            config = SessionConfig.from_endpoint(endpoint, **overrides)
        return cls(config)

    # ------------------------------------------------------------------
    # Request shaping
    # ------------------------------------------------------------------
    @property
    def endpoint(self) -> str:
        """The canonical URL of this session's configuration."""
        return self.config.endpoint()

    @property
    def is_local(self) -> bool:
        return self.config.mode == MODE_LOCAL

    def _scheduling(
        self, priority: Optional[str], deadline: Optional[float], op_default: str
    ) -> Tuple[str, Optional[float]]:
        """Apply config defaults and validate — before any dispatch."""
        priority = priority or self.config.default_priority or op_default
        if priority not in PRIORITIES:
            raise RequestError(
                f"bad priority {priority!r} (known: {', '.join(PRIORITIES)})"
            )
        if deadline is None:
            deadline = self.config.default_deadline
        if deadline is not None and deadline <= 0:
            raise RequestError("deadline must be positive seconds")
        return priority, deadline

    # ------------------------------------------------------------------
    # Classification
    # ------------------------------------------------------------------
    def classify(
        self,
        problem: ProblemSpec,
        *,
        name: str = "<session>",
        priority: Optional[str] = None,
        deadline: Optional[float] = None,
    ) -> Outcome:
        """Classify one problem; return its :class:`Outcome`.

        An interrupted search returns an Outcome with ``outcome="timeout"``/
        ``"cancelled"`` (call :meth:`Outcome.require` to raise instead);
        malformed problems raise :class:`ProblemFormatError` before any work
        is scheduled.
        """
        priority, deadline = self._scheduling(priority, deadline, "interactive")
        resolved = resolve_problem(problem, default_name=name)
        return self._driver.classify(resolved, priority, deadline)

    def submit(
        self,
        problem: ProblemSpec,
        *,
        name: str = "<session>",
        priority: Optional[str] = None,
        deadline: Optional[float] = None,
    ) -> PendingOutcome:
        """Submit one problem without waiting; collect via the pending handle."""
        priority, deadline = self._scheduling(priority, deadline, "interactive")
        resolved = resolve_problem(problem, default_name=name)
        return self._driver.submit(resolved, priority, deadline)

    def classify_many(
        self,
        problems: Iterable[ProblemSpec],
        *,
        priority: Optional[str] = None,
        deadline: Optional[float] = None,
    ) -> Iterator[Outcome]:
        """Classify a stream of problems; yield outcomes in submission order.

        All problems are resolved and submitted up front (so pooled and
        remote endpoints overlap the searches), then outcomes stream as each
        resolves.  ``deadline`` is a per-canonical-key search budget: a blown
        key yields ``outcome="timeout"`` items while the rest completes.
        """
        priority, deadline = self._scheduling(priority, deadline, "batch")
        resolved = [
            resolve_problem(problem, default_name=f"<session>#{index + 1}")
            for index, problem in enumerate(problems)
        ]
        return self._driver.iter_outcomes(resolved, priority, deadline)

    def census(
        self,
        labels: int = 2,
        delta: int = 2,
        density: float = 0.5,
        count: int = 100,
        seed: int = 0,
        *,
        priority: Optional[str] = None,
        deadline: Optional[float] = None,
    ) -> Iterator[Outcome]:
        """Classify a seeded random-problem sweep; yield outcomes in order.

        Local sessions generate the problems in-process; remote sessions run
        the server-side ``census`` operation — the draws are identical
        (``seed + index``), so the outcomes are too.  Defaults to ``warm``
        priority: a census is bulk work and must never starve an interactive
        classify sharing the engine.
        """
        priority, deadline = self._scheduling(priority, deadline, "warm")
        echo = validate_census_params(
            {
                "labels": labels,
                "delta": delta,
                "density": density,
                "count": count,
                "seed": seed,
            }
        )
        if isinstance(self._driver, _RemoteDriver):
            # Only the parameters travel; the server generates the draws.
            return self._driver.iter_census(echo, priority, deadline)
        problems, _echo = census_problems(echo)
        return self._driver.iter_outcomes(problems, priority, deadline)

    # ------------------------------------------------------------------
    # Cache warming
    # ------------------------------------------------------------------
    def warm(
        self,
        problems: Optional[Iterable[ProblemSpec]] = None,
        census: Optional[Mapping[str, Any]] = None,
        *,
        wait: bool = False,
        priority: Optional[str] = None,
        deadline: Optional[float] = None,
        budget: Optional[float] = None,
    ) -> Dict[str, Any]:
        """Pre-populate the engine's cache ahead of a batch or census.

        Name the workload as a list of problems, a census parameter object,
        or both.  ``deadline`` bounds each key's search; ``budget`` is a
        *wall-clock* budget in seconds spread best-effort across the whole
        sweep — when it expires, unfinished searches are cancelled and the
        summary reports ``within_budget``/``interrupted`` so a census can be
        warmed with "spend at most N seconds" semantics (implies waiting).
        """
        priority, deadline = self._scheduling(priority, deadline, "warm")
        if budget is not None and budget < 0:
            raise RequestError("budget must be non-negative seconds")
        if problems is None and census is None:
            raise RequestError("warm requires problems and/or census parameters")
        resolved: List[LCLProblem] = []
        if problems is not None:
            resolved.extend(
                resolve_problem(problem, default_name=f"<warm>#{index + 1}")
                for index, problem in enumerate(problems)
            )
        census_echo = validate_census_params(census) if census is not None else None
        return self._driver.warm(
            resolved, census_echo, wait, priority, deadline, budget
        )

    # ------------------------------------------------------------------
    # Introspection / control
    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, Any]:
        """Uniform statistics: ``cache``, ``batch``, and ``workers`` sections.

        The ``workers`` section includes the scheduler's ``search_times``
        histogram, which is how operators pick deadlines from data.  Remote
        sessions additionally carry the server's ``service`` section.  The
        session's own endpoint is echoed under ``endpoint``.
        """
        payload = self._driver.stats()
        payload["endpoint"] = self.endpoint
        return payload

    def metrics(self) -> Dict[str, Any]:
        """The engine's metrics as a ``repro.metrics/1`` snapshot.

        Local and remote sessions expose the *same* metric families (names,
        types, labels) because both registries are built by the same
        :func:`repro.obs.build_registry` — the parity tests assert the
        fingerprints are equal.  Raises
        :class:`~repro.api.errors.UnsupportedOperationError` on a local
        session opened with ``obs=0``.
        """
        return self._driver.metrics()["snapshot"]

    def metrics_text(self) -> str:
        """The metrics rendered in the Prometheus text exposition format."""
        return self._driver.metrics()["text"]

    def trace(self, request_id: Any) -> Dict[str, Any]:
        """Fetch a finished request's span tree by its request id.

        Returns ``{"request_id", "found", "trace"}`` — ``found`` is false
        when tracing is off (``REPRO_TRACE`` unset) or the retention ring
        has evicted the id.  Request ids come from
        :attr:`PendingOutcome.request_id` / :attr:`Outcome.request_id`.
        """
        return self._driver.trace(request_id)

    def cancel(self, request_id: Any) -> Dict[str, Any]:
        """Cancel an in-flight *remote* request by its id (remote sessions)."""
        return self._driver.cancel(request_id)

    def shutdown(self) -> Dict[str, Any]:
        """Ask a remote service to persist its cache and exit."""
        return self._driver.shutdown()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Tear down owned resources; persist a configured local cache."""
        if self._closed:
            return
        self._closed = True
        self._driver.close()

    def __enter__(self) -> "ClassificationSession":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def __repr__(self) -> str:
        state = "closed" if self._closed else "open"
        return f"<ClassificationSession {self.endpoint} ({state})>"


def connect(
    endpoint: Union[str, SessionConfig] = "local://inline", **overrides: Any
) -> ClassificationSession:
    """Open a :class:`ClassificationSession` — the package's front door."""
    return ClassificationSession.open(endpoint, **overrides)


__all__ = [
    "ClassificationSession",
    "PendingOutcome",
    "ProblemSpec",
    "census_problems",
    "connect",
    "resolve_problem",
    "validate_census_params",
]
