"""One error surface for every classification path.

Before this module existed each entry point failed in its own dialect: the
local scheduler raised :class:`~repro.core.cancellation.SearchTimeout` /
:class:`SearchCancelled`, the service client raised
:class:`~repro.service.client.ServiceError` carrying a wire code, and the
parser raised :class:`~repro.core.problem.LCLError` — three unrelated types
with three message styles for the same underlying conditions.  The session
facade (:mod:`repro.api.session`) maps *all* of them onto the hierarchy
below, so callers write one ``except`` clause per condition regardless of
whether the work ran inline, on a worker pool, or across a socket.

Every exception carries a machine-readable :attr:`SessionError.code` using
the service protocol's spelling (``bad-problem``, ``timeout``, ...), and the
``str()`` form is always ``"<code>: <message>"`` — identical for the same
condition on every endpoint, which the parity tests in ``tests/test_api.py``
assert literally.
"""

from __future__ import annotations

from typing import Optional

from ..core.cancellation import (
    CANCELLED,
    SearchInterrupted,
    TIMEOUT,
)


class SessionError(Exception):
    """Base of every error raised by :class:`~repro.api.ClassificationSession`.

    ``code`` is the machine-readable condition (the service protocol's error
    spelling); ``message`` the human half.  ``str(error)`` is always
    ``"<code>: <message>"``.
    """

    code = "error"

    def __init__(self, message: str, code: Optional[str] = None) -> None:
        if code is not None:
            self.code = code
        self.message = message
        super().__init__(f"{self.code}: {message}")


class EndpointError(SessionError):
    """A session endpoint URL or :class:`SessionConfig` is malformed."""

    code = "bad-endpoint"


class ProblemFormatError(SessionError):
    """A problem spec (text, dict, or object) failed to parse or validate."""

    code = "bad-problem"


class RequestError(SessionError):
    """A request was structurally invalid (bad priority, bad parameters...)."""

    code = "bad-request"


class TransportError(SessionError):
    """The remote service connection failed, closed, or spoke garbage."""

    code = "connection-closed"


class InternalError(SessionError):
    """The engine or remote service failed internally while classifying."""

    code = "internal"


class UnsupportedOperationError(SessionError):
    """The operation does not exist on this endpoint kind (e.g. local cancel)."""

    code = "unsupported"


class ClassificationTimeout(SessionError):
    """A classification's search exceeded its deadline or budget."""

    code = TIMEOUT


class ClassificationCancelled(SessionError):
    """A classification's search was cancelled before completing."""

    code = CANCELLED


_REMOTE_CODE_MAP = {
    "bad-problem": ProblemFormatError,
    "bad-request": RequestError,
    "parse-error": RequestError,
    "unknown-op": UnsupportedOperationError,
    "internal": InternalError,
    "connection-closed": TransportError,
    "bad-hello": TransportError,
    TIMEOUT: ClassificationTimeout,
    CANCELLED: ClassificationCancelled,
}


def from_service_error(error: Exception) -> SessionError:
    """Map a :class:`~repro.service.client.ServiceError` into this hierarchy.

    The wire code picks the exception type (unknown codes fall back to
    :class:`RemoteServiceError`) and is preserved verbatim on ``.code``, so
    ``str()`` of the mapped error equals ``str()`` of the original.
    """
    code = getattr(error, "code", "internal")
    message = getattr(error, "message", str(error))
    exc_type = _REMOTE_CODE_MAP.get(code, InternalError)
    return exc_type(message, code=code)


def from_interruption(error: SearchInterrupted) -> SessionError:
    """Map a local :class:`SearchTimeout`/:class:`SearchCancelled`."""
    return interruption_error(error.outcome, key=error.key)


def interruption_error(outcome: str, key: Optional[str] = None) -> SessionError:
    """The unified exception for an interrupted search, local or remote.

    Both drivers build the message from the same two ingredients — the
    outcome and the canonical key — so a blown deadline reads identically
    whether the search ran in-process or behind a socket.
    """
    subject = f"search for {key}" if key else "search"
    exc_type = ClassificationTimeout if outcome == TIMEOUT else ClassificationCancelled
    if outcome == TIMEOUT:
        return exc_type(f"{subject} exceeded its deadline")
    return exc_type(f"{subject} was cancelled")


__all__ = [
    "ClassificationCancelled",
    "ClassificationTimeout",
    "EndpointError",
    "InternalError",
    "ProblemFormatError",
    "RequestError",
    "SessionError",
    "TransportError",
    "UnsupportedOperationError",
    "from_interruption",
    "from_service_error",
    "interruption_error",
]
