"""The one result type of the session facade.

An :class:`Outcome` is what every classification call returns — whether the
search ran inline, on a worker pool, or on a remote service.  It unifies the
two result shapes that grew over the first four PRs:

* the local :class:`~repro.engine.batch.BatchItem` (a live
  :class:`~repro.core.complexity.ClassificationResult` plus provenance), and
* the service protocol's item payload (a JSON dict with ``outcome``/
  ``complexity``/``result`` fields).

``Outcome.as_dict()`` emits exactly the protocol item shape and
``Outcome.from_payload()`` reads it back, so a classification serializes
identically on every path — the endpoint parity tests compare these dicts
field by field across ``local://`` and ``tcp://`` sessions.

``outcome`` is one of :data:`OUTCOMES`: ``"ok"`` (the classification exists),
``"timeout"``/``"cancelled"`` (the search was interrupted; ``result`` is
``None``), or ``"error"`` (a structured failure surfaced as data rather than
an exception, carrying ``error_code``/``error_message``).  Callers that
prefer exceptions call :meth:`Outcome.require` and get the unified
:mod:`repro.api.errors` hierarchy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Mapping, Optional

from ..core.complexity import ClassificationResult
from ..core.problem import LCLProblem
from ..engine.batch import BatchItem
from ..engine.serialization import result_from_dict, result_to_dict
from .errors import SessionError, interruption_error

OUTCOME_OK = "ok"
OUTCOME_TIMEOUT = "timeout"
OUTCOME_CANCELLED = "cancelled"
OUTCOME_ERROR = "error"
OUTCOMES = (OUTCOME_OK, OUTCOME_TIMEOUT, OUTCOME_CANCELLED, OUTCOME_ERROR)
"""Every way a classification can resolve, identical on all endpoints."""


@dataclass(frozen=True)
class Outcome:
    """The classification of one problem through a session.

    ``result`` is the full :class:`ClassificationResult` (certificate label
    sets included) when ``outcome == "ok"``, else ``None``.  ``complexity``
    and ``details`` are its human-readable projections, pre-extracted so
    remote payloads and local results read the same.  ``problem`` is the
    submitted :class:`LCLProblem` when the session still holds it (local
    submissions and session-parsed text); payloads read off the wire carry
    only ``name``.
    """

    name: str
    outcome: str
    complexity: Optional[str] = None
    details: Optional[str] = None
    result: Optional[ClassificationResult] = None
    canonical_key: Optional[str] = None
    from_cache: bool = False
    elapsed_ms: float = 0.0
    error_code: Optional[str] = None
    error_message: Optional[str] = None
    problem: Optional[LCLProblem] = None
    # The tracing request id of the call that produced this outcome (None
    # when tracing was off).  Deliberately NOT part of as_dict(): the item
    # payload shape is pinned to the wire format, and the id already travels
    # as the protocol frame id / PendingOutcome.request_id.
    request_id: Optional[Any] = None

    @property
    def ok(self) -> bool:
        """Whether the classification completed (``result`` is present)."""
        return self.outcome == OUTCOME_OK

    def require(self) -> "Outcome":
        """Return ``self`` when ok; raise the unified error otherwise.

        A ``timeout``/``cancelled`` outcome raises
        :class:`~repro.api.errors.ClassificationTimeout` /
        :class:`ClassificationCancelled`; an ``error`` outcome raises
        :class:`SessionError` with the carried code.  The message is built
        from fields that are identical across endpoints, so the raised
        error is too.
        """
        if self.ok:
            return self
        if self.outcome in (OUTCOME_TIMEOUT, OUTCOME_CANCELLED):
            raise interruption_error(self.outcome, key=self.canonical_key)
        raise SessionError(
            self.error_message or f"classification of {self.name} failed",
            code=self.error_code or "error",
        )

    # ------------------------------------------------------------------
    # Conversions
    # ------------------------------------------------------------------
    def as_dict(self) -> Dict[str, Any]:
        """The protocol item payload of this outcome (JSON-friendly).

        Matches :func:`repro.service.server.item_payload` exactly, which a
        unit test asserts — the wire shape and the facade shape must never
        drift apart.
        """
        payload: Dict[str, Any] = {
            "name": self.name,
            "outcome": self.outcome,
            "complexity": self.complexity,
            "details": self.details,
            "from_cache": self.from_cache,
            "canonical_key": self.canonical_key,
            "result": result_to_dict(self.result) if self.result is not None else None,
            "elapsed_ms": self.elapsed_ms,
        }
        if self.outcome == OUTCOME_ERROR:
            payload["error"] = {
                "code": self.error_code,
                "message": self.error_message,
            }
        return payload

    @classmethod
    def from_batch_item(
        cls, item: BatchItem, request_id: Optional[Any] = None
    ) -> "Outcome":
        """Lift a local :class:`BatchItem` into the unified shape."""
        result = item.result
        return cls(
            name=item.problem.name,
            outcome=item.outcome,
            complexity=result.complexity.value if result is not None else None,
            details=result.describe() if result is not None else None,
            result=result,
            canonical_key=item.canonical_key,
            from_cache=item.from_cache,
            elapsed_ms=item.elapsed_seconds * 1000.0,
            problem=item.problem,
            request_id=request_id,
        )

    @classmethod
    def from_payload(
        cls,
        payload: Mapping[str, Any],
        problem: Optional[LCLProblem] = None,
        request_id: Optional[Any] = None,
    ) -> "Outcome":
        """Read a protocol item/result payload back into an :class:`Outcome`."""
        result_dict = payload.get("result")
        result = result_from_dict(result_dict) if result_dict else None
        error = payload.get("error") or {}
        return cls(
            name=payload.get("name", "<unnamed>"),
            outcome=payload.get("outcome", OUTCOME_OK),
            complexity=payload.get("complexity"),
            details=payload.get("details"),
            result=result,
            canonical_key=payload.get("canonical_key"),
            from_cache=bool(payload.get("from_cache", False)),
            elapsed_ms=float(payload.get("elapsed_ms", 0.0)),
            error_code=error.get("code"),
            error_message=error.get("message"),
            problem=problem,
            request_id=request_id,
        )


__all__ = [
    "OUTCOMES",
    "OUTCOME_CANCELLED",
    "OUTCOME_ERROR",
    "OUTCOME_OK",
    "OUTCOME_TIMEOUT",
    "Outcome",
]
