"""repro.api — the unified classification front door.

Four PRs of growth left the package with four divergent entry points for the
same operation (``repro.classify``, ``BatchClassifier``,
``ClassificationScheduler.submit``, ``ServiceClient.classify``), each with
its own kwargs, errors, and result shape.  This package is the single seam
on top of them:

* :class:`ClassificationSession` — the one supported way to classify,
  constructed from a URL-style endpoint: ``local://inline``,
  ``local://threads?workers=8``, ``local://processes``, ``tcp://host:port``,
  or ``stdio:`` (see :mod:`repro.api.config`),
* :class:`SessionConfig` — the typed form of those endpoints, absorbing the
  previously scattered cache/worker/priority/deadline kwargs,
* :class:`Outcome` — the one result type, carrying ``ok``/``timeout``/
  ``cancelled``/``error`` identically for in-process and remote execution,
* :mod:`repro.api.errors` — the one exception hierarchy, mapping service
  error codes and local search interruptions onto shared types with
  identical messages.

Quick start::

    from repro.api import connect

    with connect("local://threads?workers=4") as session:
        outcome = session.classify("1 : 2 2\\n2 : 1 1")
        print(outcome.complexity)           # "n^Theta(1)"
        for outcome in session.census(labels=2, count=100):
            ...
        print(session.stats()["workers"]["search_times"]["p99_ms"])

The legacy constructors (``BatchClassifier``, ``ServiceClient``,
``ClassificationScheduler``) remain as the implementation layer and for
backwards compatibility, but new code — and everything in ``repro.cli``,
``examples/`` and the census benchmarks — goes through sessions.
"""

from . import errors
from .config import (
    DEFAULT_TCP_PORT,
    MODES,
    MODE_LOCAL,
    MODE_STDIO,
    MODE_TCP,
    SessionConfig,
    parse_endpoint,
)
from .errors import (
    ClassificationCancelled,
    ClassificationTimeout,
    EndpointError,
    InternalError,
    ProblemFormatError,
    RequestError,
    SessionError,
    TransportError,
    UnsupportedOperationError,
)
from .outcome import (
    OUTCOMES,
    OUTCOME_CANCELLED,
    OUTCOME_ERROR,
    OUTCOME_OK,
    OUTCOME_TIMEOUT,
    Outcome,
)
from .session import (
    ClassificationSession,
    PendingOutcome,
    ProblemSpec,
    census_problems,
    connect,
    resolve_problem,
)

__all__ = [
    "ClassificationCancelled",
    "ClassificationSession",
    "ClassificationTimeout",
    "DEFAULT_TCP_PORT",
    "EndpointError",
    "InternalError",
    "MODES",
    "MODE_LOCAL",
    "MODE_STDIO",
    "MODE_TCP",
    "OUTCOMES",
    "OUTCOME_CANCELLED",
    "OUTCOME_ERROR",
    "OUTCOME_OK",
    "OUTCOME_TIMEOUT",
    "Outcome",
    "PendingOutcome",
    "ProblemFormatError",
    "ProblemSpec",
    "RequestError",
    "SessionConfig",
    "SessionError",
    "TransportError",
    "UnsupportedOperationError",
    "census_problems",
    "connect",
    "errors",
    "parse_endpoint",
    "resolve_problem",
]
