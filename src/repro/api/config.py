"""Typed session configuration and URL-style endpoint parsing.

A :class:`SessionConfig` absorbs the kwargs that used to be scattered across
``BatchClassifier(cache=..., backend=..., workers=...)``,
``ClassificationScheduler(...)`` and ``ServiceClient.connect_tcp(...)`` into
one frozen dataclass, and every config has a canonical URL spelling so
endpoints travel well through CLIs, env vars, and config files:

``local://inline``
    Synchronous in-process classification (the zero-dependency default).
``local://threads?workers=8``
    In-process classification on a thread pool (concurrency, streaming).
``local://processes?workers=4``
    CPU-parallel classification on a process pool.
``tcp://host:port?retries=20``
    A running ``python -m repro serve`` service over TCP.
``stdio:``
    A private ``python -m repro serve --stdio`` subprocess over its pipes.

Cache query parameters (shared by every mode — on ``tcp`` they configure
the *server* when the endpoint is handed to ``repro serve``):

``cache=URL``
    Persistent result cache.  The value is a cache URL selecting the
    durable backend (:mod:`repro.engine.backends`): a bare path or
    ``json:path`` for the single-file JSON format, ``sqlite:path`` for the
    WAL-mode SQLite store, ``memory:`` for none.
``cache_max_entries=N``
    LRU budget.
``cache_ttl=SECONDS``
    Entry time-to-live; expired entries count as misses.
``cache_flush_interval=SECONDS`` / ``cache_flush_count=N``
    Write-behind thresholds: dirty entries are persisted in the background
    once ``N`` keys are pending or ``SECONDS`` have elapsed, instead of on
    every store.

All modes accept ``priority`` and ``deadline`` (seconds) as session-wide
scheduling defaults, and ``obs=0`` to bypass the observability layer
(request ids, metrics registry, tracer) entirely.  Anything unrecognized
raises
:class:`~repro.api.errors.EndpointError` — a typo in an endpoint should
never be silently ignored.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Dict, Optional
from urllib.parse import parse_qsl, urlsplit

from ..engine.backends import parse_cache_url
from ..workers.backends import BACKEND_NAMES
from ..workers.scheduler import PRIORITIES
from .errors import EndpointError

MODE_LOCAL = "local"
MODE_TCP = "tcp"
MODE_STDIO = "stdio"
MODES = (MODE_LOCAL, MODE_TCP, MODE_STDIO)

DEFAULT_TCP_PORT = 8765
"""Port assumed by ``tcp://host`` endpoints, matching ``repro serve``."""

_COMMON_QUERY_KEYS = ("priority", "deadline", "obs")
# tcp endpoints accept cache parameters too: when a tcp endpoint is handed
# to `repro serve` it describes the *server*, whose cache they configure.
# A connecting session ignores them (the cache lives server-side).
_CACHE_QUERY_KEYS = (
    "cache",
    "cache_max_entries",
    "cache_ttl",
    "cache_flush_interval",
    "cache_flush_count",
)
_QUERY_KEYS = {
    MODE_LOCAL: ("workers",) + _CACHE_QUERY_KEYS + _COMMON_QUERY_KEYS,
    MODE_TCP: ("retries",) + _CACHE_QUERY_KEYS + _COMMON_QUERY_KEYS,
    MODE_STDIO: _CACHE_QUERY_KEYS + _COMMON_QUERY_KEYS,
}


@dataclass(frozen=True)
class SessionConfig:
    """Everything a :class:`~repro.api.ClassificationSession` needs to exist.

    Parameters
    ----------
    mode:
        ``"local"`` (in-process engine), ``"tcp"`` (remote service), or
        ``"stdio"`` (private spawned service).
    backend:
        Local mode only: the worker backend name (``inline``/``threads``/
        ``processes``).
    workers:
        Pool size for ``threads``/``processes`` backends (default CPU count).
    host, port:
        TCP mode only: the service address.
    retries:
        TCP mode: connection attempts before giving up (0.25 s apart).
    cache_path, cache_max_entries:
        Persistent result cache URL (bare path / ``json:`` / ``sqlite:`` /
        ``memory:``) and LRU budget.
    cache_ttl:
        Optional entry time-to-live in seconds.
    cache_flush_interval, cache_flush_count:
        Optional write-behind thresholds (seconds between background
        flushes / pending dirty keys that trigger one).
    default_priority, default_deadline:
        Session-wide scheduling defaults applied when a call does not pass
        its own ``priority``/``deadline``.
    obs:
        Whether the observability layer (request ids, the metrics registry,
        the env-gated tracer) is wired up at all.  ``obs=False`` (``?obs=0``)
        bypasses it completely — the baseline configuration the
        ``BENCH_obs.json`` overhead gate compares against.  Note tracing
        itself is additionally opt-in via ``REPRO_TRACE`` even when ``True``.
    """

    mode: str = MODE_LOCAL
    backend: str = "inline"
    workers: Optional[int] = None
    host: Optional[str] = None
    port: Optional[int] = None
    retries: int = 0
    cache_path: Optional[str] = None
    cache_max_entries: Optional[int] = None
    cache_ttl: Optional[float] = None
    cache_flush_interval: Optional[float] = None
    cache_flush_count: Optional[int] = None
    default_priority: Optional[str] = None
    default_deadline: Optional[float] = None
    obs: bool = True

    def __post_init__(self) -> None:
        if self.mode not in MODES:
            raise EndpointError(
                f"unknown session mode {self.mode!r} (known: {', '.join(MODES)})"
            )
        if self.mode == MODE_LOCAL and self.backend not in BACKEND_NAMES:
            raise EndpointError(
                f"unknown local backend {self.backend!r} "
                f"(known: {', '.join(BACKEND_NAMES)})"
            )
        if self.mode == MODE_TCP and not self.host:
            raise EndpointError("tcp sessions require a host")
        if self.workers is not None and self.workers < 1:
            raise EndpointError("workers must be >= 1")
        if self.default_priority is not None and self.default_priority not in PRIORITIES:
            raise EndpointError(
                f"unknown priority {self.default_priority!r} "
                f"(known: {', '.join(PRIORITIES)})"
            )
        if self.default_deadline is not None and self.default_deadline <= 0:
            raise EndpointError("deadline must be positive seconds")
        if self.cache_path is not None:
            try:
                parse_cache_url(self.cache_path)
            except ValueError as error:
                raise EndpointError(f"bad cache URL: {error}") from None
        if self.cache_ttl is not None and self.cache_ttl <= 0:
            raise EndpointError("cache_ttl must be positive seconds")
        if self.cache_flush_interval is not None and self.cache_flush_interval <= 0:
            raise EndpointError("cache_flush_interval must be positive seconds")
        if self.cache_flush_count is not None and self.cache_flush_count < 1:
            raise EndpointError("cache_flush_count must be >= 1")

    # ------------------------------------------------------------------
    # URL form
    # ------------------------------------------------------------------
    def endpoint(self) -> str:
        """The canonical URL spelling of this configuration."""
        query: Dict[str, Any] = {}
        if self.mode == MODE_LOCAL:
            base = f"local://{self.backend}"
            if self.workers is not None:
                query["workers"] = self.workers
        elif self.mode == MODE_TCP:
            base = f"tcp://{self.host}:{self.port or DEFAULT_TCP_PORT}"
            if self.retries:
                query["retries"] = self.retries
        else:
            base = "stdio:"
        if self.cache_path:
            query["cache"] = self.cache_path
        if self.cache_max_entries is not None:
            query["cache_max_entries"] = self.cache_max_entries
        if self.cache_ttl is not None:
            query["cache_ttl"] = self.cache_ttl
        if self.cache_flush_interval is not None:
            query["cache_flush_interval"] = self.cache_flush_interval
        if self.cache_flush_count is not None:
            query["cache_flush_count"] = self.cache_flush_count
        if self.default_priority is not None:
            query["priority"] = self.default_priority
        if self.default_deadline is not None:
            query["deadline"] = self.default_deadline
        if not self.obs:
            query["obs"] = 0
        if not query:
            return base
        encoded = "&".join(f"{key}={value}" for key, value in query.items())
        return f"{base}?{encoded}"

    @classmethod
    def from_endpoint(cls, endpoint: str, **overrides: Any) -> "SessionConfig":
        """Parse a URL-style endpoint; keyword overrides win over the URL."""
        config = parse_endpoint(endpoint)
        return replace(config, **overrides) if overrides else config


def _int_param(params: Dict[str, str], key: str, endpoint: str) -> Optional[int]:
    if key not in params:
        return None
    try:
        return int(params[key])
    except ValueError:
        raise EndpointError(
            f"{key} must be an integer in endpoint {endpoint!r}, "
            f"got {params[key]!r}"
        ) from None


def _float_param(params: Dict[str, str], key: str, endpoint: str) -> Optional[float]:
    if key not in params:
        return None
    try:
        return float(params[key])
    except ValueError:
        raise EndpointError(
            f"{key} must be a number in endpoint {endpoint!r}, got {params[key]!r}"
        ) from None


def _bool_param(
    params: Dict[str, str], key: str, endpoint: str, default: bool
) -> bool:
    if key not in params:
        return default
    value = params[key].strip().lower()
    if value in ("0", "false", "off", "no"):
        return False
    if value in ("", "1", "true", "on", "yes"):
        return True
    raise EndpointError(
        f"{key} must be a boolean (0/1) in endpoint {endpoint!r}, "
        f"got {params[key]!r}"
    )


def parse_endpoint(endpoint: str) -> SessionConfig:
    """Turn an endpoint URL into a validated :class:`SessionConfig`.

    Raises :class:`~repro.api.errors.EndpointError` on unknown schemes,
    backends, or query parameters.
    """
    if not isinstance(endpoint, str) or not endpoint.strip():
        raise EndpointError("endpoint must be a non-empty URL string")
    parts = urlsplit(endpoint.strip())
    scheme = parts.scheme
    if not scheme:
        raise EndpointError(
            f"endpoint {endpoint!r} has no scheme "
            "(expected local://, tcp://, or stdio:)"
        )
    if scheme == MODE_STDIO:
        mode = MODE_STDIO
    elif scheme == MODE_LOCAL:
        mode = MODE_LOCAL
    elif scheme == MODE_TCP:
        mode = MODE_TCP
    else:
        raise EndpointError(
            f"unknown endpoint scheme {scheme!r} in {endpoint!r} "
            "(expected local://, tcp://, or stdio:)"
        )

    params: Dict[str, str] = {}
    for key, value in parse_qsl(parts.query, keep_blank_values=True):
        if key in params:
            raise EndpointError(f"duplicate query parameter {key!r} in {endpoint!r}")
        params[key] = value
    unknown = set(params) - set(_QUERY_KEYS[mode])
    if unknown:
        raise EndpointError(
            f"unknown query parameter(s) {', '.join(sorted(unknown))} "
            f"for a {mode} endpoint ({endpoint!r})"
        )

    common = {
        "default_priority": params.get("priority"),
        "default_deadline": _float_param(params, "deadline", endpoint),
        "obs": _bool_param(params, "obs", endpoint, default=True),
        "cache_path": params.get("cache"),
        "cache_max_entries": _int_param(params, "cache_max_entries", endpoint),
        "cache_ttl": _float_param(params, "cache_ttl", endpoint),
        "cache_flush_interval": _float_param(
            params, "cache_flush_interval", endpoint
        ),
        "cache_flush_count": _int_param(params, "cache_flush_count", endpoint),
    }
    if mode == MODE_LOCAL:
        backend = parts.netloc or parts.path.strip("/")
        if not backend:
            raise EndpointError(
                f"local endpoint {endpoint!r} must name a backend "
                f"(local://{'|'.join(BACKEND_NAMES)})"
            )
        return SessionConfig(
            mode=MODE_LOCAL,
            backend=backend,
            workers=_int_param(params, "workers", endpoint),
            **common,
        )
    if mode == MODE_TCP:
        if not parts.hostname:
            raise EndpointError(f"tcp endpoint {endpoint!r} must name a host")
        try:
            port = parts.port
        except ValueError as error:
            raise EndpointError(f"bad port in endpoint {endpoint!r}: {error}") from None
        return SessionConfig(
            mode=MODE_TCP,
            host=parts.hostname,
            port=port if port is not None else DEFAULT_TCP_PORT,
            retries=_int_param(params, "retries", endpoint) or 0,
            **common,
        )
    # stdio: — tolerate both "stdio:" and "stdio://" spellings.
    return SessionConfig(mode=MODE_STDIO, **common)


__all__ = [
    "DEFAULT_TCP_PORT",
    "MODES",
    "MODE_LOCAL",
    "MODE_STDIO",
    "MODE_TCP",
    "SessionConfig",
    "parse_endpoint",
]
