"""Command-line interface: classify LCL problems from the terminal.

Usage::

    python -m repro classify path/to/problem.txt        # classify a problem file
    python -m repro classify --json path/to/problem.txt # machine-readable output
    python -m repro classify --catalog                  # classify the paper's samples
    echo "1 : 2 2 ; 2 : 1 1" | python -m repro classify -
    python -m repro classify-batch problems/            # every *.txt in a directory
    python -m repro classify-batch many.txt             # '---'-separated problem blocks
    python -m repro census --labels 2 --count 200       # random-problem sweep
    python -m repro census --count 200 --worker-backend processes --workers 4
    python -m repro warm --census --count 200 --cache results.json --budget 10
    python -m repro loadgen local://threads --workload zipf --duration 10 --seed 7
    python -m repro loadgen tcp://127.0.0.1:8765 --slo slo.json --connections 4
    python -m repro cache stats --cache results.json    # on-disk cache maintenance
    python -m repro cache compact --cache results.json --cache-max-entries 500
    python -m repro serve tcp://127.0.0.1:8765          # long-running service (TCP)
    python -m repro serve stdio:                        # service over stdin/stdout
    python -m repro client --connect localhost:8765 classify problem.txt
    python -m repro client --connect localhost:8765 warm --census --count 200 --wait
    python -m repro metrics tcp://127.0.0.1:8765        # Prometheus text exposition
    python -m repro client --connect localhost:8765 trace 17   # span tree by id

Every subcommand is a thin user of :mod:`repro.api`: it opens a
:class:`~repro.api.ClassificationSession` on an endpoint —
``local://inline`` by default, ``local://threads``/``local://processes``
under the worker flags, ``tcp://host:port`` for the ``client`` subcommands —
and renders the uniform :class:`~repro.api.Outcome` objects the session
returns.  The classify/batch/census output is therefore *identical* in
shape whether the searches ran in this process or on a remote service.

A problem file contains one configuration per line in the paper's notation
(``parent : child child ...``); blank lines and ``#`` comments are ignored
(see :mod:`repro.core.parser` for the full grammar).  A *batch* file holds
several such problems separated by lines containing only ``---``; a comment
of the form ``# name: some-name`` inside a block names that problem.

Batch work is deduplicated by a renaming-invariant canonical form and can
persist across runs with ``--cache FILE`` (bounded with
``--cache-max-entries N``).  Uncached representatives execute on a worker
backend selected with ``--worker-backend {inline,threads,processes}`` and
sized with ``--workers N`` (``--processes N`` remains as the legacy
spelling).  Because the certificate searches are exponential in the worst
case, every classification command accepts ``--deadline SECONDS`` (per-
canonical-key search budget; blown budgets report outcome ``timeout`` —
exit code 124 for single classifies) and ``--priority
{interactive,batch,warm}``.  ``warm`` additionally accepts ``--budget
SECONDS``, a wall-clock budget spread best-effort across the whole sweep.

``loadgen`` replays a seeded synthetic workload (Zipf-skewed duplicate-heavy
keys, Poisson/burst arrivals, mixed priorities — see :mod:`repro.loadgen`)
against any endpoint and emits an SLO report (latency percentiles per
priority class, throughput, dedup ratio); with ``--slo spec.json`` a
violated objective exits nonzero, making latency guarantees CI-assertable.

``serve`` runs the long-running classification service of
:mod:`repro.service` on a ``tcp://`` or ``stdio:`` endpoint (spec:
``docs/service_protocol.md``); ``client`` is its command-line counterpart,
exposing the same classify/batch/census surface plus ``warm``, ``cancel``,
``stats`` and ``shutdown`` through a ``tcp://`` session.
"""

from __future__ import annotations

import argparse
import asyncio
import glob
import json
import os
import sys
from typing import Any, Dict, List, Optional, Sequence

from .api import (
    ClassificationSession,
    Outcome,
    SessionConfig,
    SessionError,
    parse_endpoint,
)
from .api.config import MODE_STDIO, MODE_TCP
from .core.classifier import classify_with_certificates
from .core.parser import parse_problem
from .core.problem import LCLError, LCLProblem
from .engine.backends import parse_cache_url, parse_snapshot_text
from .engine.cache import ClassificationCache
from .engine.serialization import problem_to_dict
from .loadgen.driver import DEFAULT_MAX_IN_FLIGHT
from .loadgen.driver import MODES as LOADGEN_MODES
from .loadgen.workload import WORKLOADS
from .problems.catalog import catalog
from .service.server import ClassificationService
from .workers.backends import BACKEND_NAMES
from .workers.scheduler import PRIORITIES

BATCH_SEPARATOR = "---"
"""Line separating problem blocks inside a multi-problem batch file."""

TIMEOUT_EXIT_CODE = 124
"""Exit status when a requested classification blew its ``--deadline``
(matching the convention of GNU ``timeout``)."""


def _read_problem(source: str) -> LCLProblem:
    """Read a problem description from a file path or ``-`` for standard input."""
    if source == "-":
        text = sys.stdin.read()
        name = "<stdin>"
    else:
        with open(source, "r", encoding="utf-8") as handle:
            text = handle.read()
        name = source
    return parse_problem(text, name=name)


def _parse_batch_text(text: str, default_name: str) -> List[LCLProblem]:
    """Split a multi-problem file into blocks and parse each one.

    Blocks are separated by lines consisting solely of ``---``.  Inside a
    block a comment of the form ``# name: foo`` names the problem; otherwise
    blocks are named ``<default_name>#<index>``.
    """
    blocks: List[List[str]] = [[]]
    for line in text.splitlines():
        if line.strip() == BATCH_SEPARATOR:
            blocks.append([])
        else:
            blocks[-1].append(line)
    problems: List[LCLProblem] = []
    index = 0
    for block in blocks:
        body = "\n".join(block)
        if not any(
            line.strip() and not line.strip().startswith("#") for line in block
        ):
            continue  # empty or comment-only block
        index += 1
        name = f"{default_name}#{index}"
        for line in block:
            stripped = line.strip()
            if stripped.lower().startswith("# name:"):
                name = stripped.split(":", 1)[1].strip()
                break
        problems.append(parse_problem(body, name=name))
    return problems


def _read_batch(source: str) -> List[LCLProblem]:
    """Read problems from a directory of ``*.txt`` files or one batch file."""
    if os.path.isdir(source):
        paths = sorted(glob.glob(os.path.join(source, "*.txt")))
        if not paths:
            raise LCLError(f"directory {source!r} contains no *.txt problem files")
        problems = []
        for path in paths:
            with open(path, "r", encoding="utf-8") as handle:
                problems.extend(
                    _parse_batch_text(handle.read(), os.path.basename(path))
                )
        return problems
    if source == "-":
        return _parse_batch_text(sys.stdin.read(), "<stdin>")
    with open(source, "r", encoding="utf-8") as handle:
        return _parse_batch_text(handle.read(), os.path.basename(source))


# ----------------------------------------------------------------------
# The session factory — the only place the CLI decides *where* work runs
# ----------------------------------------------------------------------
def _local_config(args: argparse.Namespace) -> SessionConfig:
    """The engine/worker/cache flags as a local session configuration."""
    backend = getattr(args, "worker_backend", None)
    workers = getattr(args, "workers", None)
    processes = getattr(args, "processes", None)
    if backend is None and processes is not None and processes > 1:
        backend, workers = "processes", workers or processes
    return SessionConfig(
        mode="local",
        backend=backend or "inline",
        workers=workers,
        cache_path=getattr(args, "cache", None),
        cache_max_entries=getattr(args, "cache_max_entries", None),
        cache_ttl=getattr(args, "cache_ttl", None),
        cache_flush_interval=getattr(args, "cache_flush_interval", None),
        cache_flush_count=getattr(args, "cache_flush_count", None),
    )


def _open_local_session(args: argparse.Namespace) -> ClassificationSession:
    return ClassificationSession.open(_local_config(args))


def _open_client_session(args: argparse.Namespace) -> ClassificationSession:
    host, port = _parse_connect(args.connect)
    return ClassificationSession.open(
        SessionConfig(mode="tcp", host=host, port=port, retries=args.retries)
    )


# ----------------------------------------------------------------------
# Shared rendering of outcomes and summaries
# ----------------------------------------------------------------------
def _print_item_line(item: Dict[str, Any]) -> None:
    if item.get("outcome", "ok") != "ok":
        print(
            f"[{item['outcome']}] {item['name']:28s} ({item['outcome']})", flush=True
        )
        return
    origin = "cached" if item["from_cache"] else "search"
    print(f"[{origin}] {item['name']:28s} {item['complexity']:16s}", flush=True)


def _summarize_outcomes(outcomes: Sequence[Outcome]) -> Dict[str, Any]:
    """The stream summary (hit/miss/interruption tallies) of a batch.

    Computed from the same item fields the service's ``done`` frame is
    computed from, so local and remote runs summarize identically: completed
    items are the one denominator (hits + misses == completed).
    """
    count = len(outcomes)
    timeouts = sum(1 for outcome in outcomes if outcome.outcome == "timeout")
    cancelled = sum(1 for outcome in outcomes if outcome.outcome == "cancelled")
    completed = count - timeouts - cancelled
    hits = sum(1 for outcome in outcomes if outcome.ok and outcome.from_cache)
    return {
        "count": count,
        "cache_hits": hits,
        "cache_misses": completed - hits,
        "hit_rate": hits / completed if completed else 0.0,
        "timeouts": timeouts,
        "cancelled": cancelled,
    }


def _print_stream_summary(summary: Dict[str, Any]) -> None:
    interrupted = summary.get("timeouts", 0) + summary.get("cancelled", 0)
    suffix = f", {interrupted} timed out/cancelled" if interrupted else ""
    print(
        f"\n{summary['count']} problem(s): {summary['cache_hits']} cache hit(s), "
        f"{summary['cache_misses']} miss(es) (hit rate {summary['hit_rate']:.0%})"
        f"{suffix}"
    )


def _tally_counts(outcomes: Sequence[Outcome]) -> Dict[str, int]:
    """Census tally: complexity class per completed item, outcome otherwise."""
    counts: Dict[str, int] = {}
    for outcome in outcomes:
        value = outcome.complexity if outcome.ok else outcome.outcome
        counts[value] = counts.get(value, 0) + 1
    return counts


# ----------------------------------------------------------------------
# classify
# ----------------------------------------------------------------------
def _report_outcome(outcome: Outcome) -> str:
    name = outcome.problem.summary() if outcome.problem else outcome.name
    lines = [
        f"problem:    {name}",
        f"complexity: {outcome.complexity}",
        f"details:    {outcome.details}",
        f"time:       {outcome.elapsed_ms:.2f} ms",
    ]
    return "\n".join(lines)


def _run_classify(args: argparse.Namespace) -> int:
    if args.catalog and (args.deadline is not None or args.priority is not None):
        # The catalog path classifies directly (no scheduler), so silently
        # ignoring the flags would fake a safety net that is not there.
        print(
            "error: --deadline/--priority cannot be combined with --catalog",
            file=sys.stderr,
        )
        return 2
    if args.catalog:
        rows = []
        for name, (problem, expected) in catalog().items():
            artifacts = classify_with_certificates(problem)
            rows.append((name, artifacts, expected))
        if args.json:
            payload = [
                {
                    "name": name,
                    "complexity": artifacts.result.complexity.value,
                    "expected": expected.value,
                    "ok": artifacts.result.complexity == expected,
                    "elapsed_ms": artifacts.elapsed_seconds * 1000.0,
                }
                for name, artifacts, expected in rows
            ]
            print(json.dumps(payload, indent=2))
            return 0
        for name, artifacts, expected in rows:
            marker = "ok" if artifacts.result.complexity == expected else "UNEXPECTED"
            print(
                f"[{marker}] {name:22s} {artifacts.result.complexity.value:16s} "
                f"({artifacts.elapsed_seconds * 1000:.1f} ms)"
            )
        return 0
    if not args.problem:
        print("error: provide a problem file, '-' for stdin, or --catalog", file=sys.stderr)
        return 2
    problem = _read_problem(args.problem)
    with ClassificationSession.open("local://inline") as session:
        outcome = session.classify(
            problem, priority=args.priority or "interactive", deadline=args.deadline
        )
    if args.json:
        payload: Dict[str, Any] = {
            "problem": problem_to_dict(problem),
            **outcome.as_dict(),
        }
        print(json.dumps(payload, indent=2))
    elif outcome.ok:
        print(_report_outcome(outcome))
    else:
        print(f"problem:    {problem.summary()}")
        print(f"outcome:    {outcome.outcome} (deadline {args.deadline}s)")
    return 0 if outcome.ok else TIMEOUT_EXIT_CODE


# ----------------------------------------------------------------------
# classify-batch
# ----------------------------------------------------------------------
def _print_batch_report(outcomes: List[Outcome], stats: Dict[str, Any]) -> None:
    for outcome in outcomes:
        _print_item_line(outcome.as_dict())
    batch, cache = stats["batch"], stats["cache"]
    interrupted = sum(1 for outcome in outcomes if not outcome.ok)
    suffix = f"; {interrupted} timed out/cancelled" if interrupted else ""
    print(
        f"\n{batch['submitted']} problem(s), {batch['full_searches']} full search(es), "
        f"{batch['amortized']} amortized ({batch['speedup']:.1f}x); "
        f"cache hit rate {cache['hit_rate']:.0%}{suffix}"
    )


def _run_classify_batch(args: argparse.Namespace) -> int:
    problems = _read_batch(args.source)
    with _open_local_session(args) as session:
        outcomes = list(
            session.classify_many(
                problems, priority=args.priority or "batch", deadline=args.deadline
            )
        )
        stats = session.stats()
    if args.json:
        payload = {
            "items": [outcome.as_dict() for outcome in outcomes],
            "stats": stats,
        }
        print(json.dumps(payload, indent=2))
        return 0
    _print_batch_report(outcomes, stats)
    return 0


# ----------------------------------------------------------------------
# census
# ----------------------------------------------------------------------
def _census_params(args: argparse.Namespace) -> Dict[str, Any]:
    return {
        "labels": args.labels,
        "delta": args.delta,
        "density": args.density,
        "count": args.count,
        "seed": args.seed,
    }


def _run_census(args: argparse.Namespace) -> int:
    params = _census_params(args)
    with _open_local_session(args) as session:
        # A census is bulk work: schedule it at the lowest class by default
        # so an interactive classify sharing the scheduler overtakes it.
        outcomes = list(
            session.census(
                **params, priority=args.priority or "warm", deadline=args.deadline
            )
        )
        stats = session.stats()
    counts = _tally_counts(outcomes)
    if args.json:
        payload = {"params": params, "counts": counts, "stats": stats}
        print(json.dumps(payload, indent=2))
        return 0
    print(
        f"Random census: {args.count} problems, {args.labels} labels, "
        f"delta={args.delta}, density={args.density}"
    )
    for value, count in sorted(counts.items(), key=lambda pair: -pair[1]):
        print(f"  {value:16s} {count:5d}")
    batch = stats["batch"]
    print(
        f"\n{batch['full_searches']} full search(es) for {batch['submitted']} "
        f"problem(s) ({batch['speedup']:.1f}x amortization)"
    )
    return 0


# ----------------------------------------------------------------------
# warm (local cache warming, incl. wall-clock budgets)
# ----------------------------------------------------------------------
def _warm_workload(args: argparse.Namespace):
    problems = None
    if args.source is not None:
        problems = _read_batch(args.source)
    census = _census_params(args) if args.census else None
    return problems, census


def _print_warm_summary(summary: Dict[str, Any]) -> None:
    mode = "waited for" if summary.get("waited") else "scheduled in background:"
    print(
        f"warm: {summary['count']} problem(s), {summary['unique_keys']} unique "
        f"orbit(s); {summary['already_cached']} already cached, "
        f"{mode} {summary['scheduled']} search(es)"
    )
    if "within_budget" in summary:
        state = "exhausted" if summary.get("budget_exhausted") else "sufficient"
        print(
            f"budget: {summary['budget_seconds']}s ({state}); "
            f"{summary['within_budget']} completed within it, "
            f"{summary.get('interrupted', 0)} interrupted"
        )


def _run_warm(args: argparse.Namespace) -> int:
    problems, census = _warm_workload(args)
    if problems is None and census is None:
        print(
            "error: provide a batch source and/or --census parameters to warm",
            file=sys.stderr,
        )
        return 2
    with _open_local_session(args) as session:
        summary = session.warm(
            problems=problems,
            census=census,
            wait=args.wait,
            priority=args.priority,
            deadline=args.deadline,
            budget=args.budget,
        )
    if args.json:
        print(json.dumps(summary, indent=2))
        return 0
    _print_warm_summary(summary)
    return 0


# ----------------------------------------------------------------------
# loadgen (synthetic traffic + SLO verdict)
# ----------------------------------------------------------------------
SLO_EXIT_CODE = 3
"""Exit status when a load run violated its ``--slo`` spec (the run itself
succeeded — the *guarantee* failed)."""


def _run_loadgen(args: argparse.Namespace) -> int:
    from .loadgen import (
        LoadDriver,
        SLOSpec,
        build_report,
        build_workload,
        summarize_report,
    )

    spec = build_workload(
        args.workload,
        seed=args.seed,
        duration=args.duration,
        rate=args.rate,
        pool_size=args.pool_size,
        zipf_s=args.zipf_s,
        adversarial_rate=args.adversarial_rate,
    )
    slo = SLOSpec.from_file(args.slo) if args.slo else None
    plan = spec.plan()
    sessions = [
        ClassificationSession.open(args.endpoint) for _ in range(args.connections)
    ]
    try:
        driver = LoadDriver(
            sessions,
            mode=args.mode,
            concurrency=args.concurrency,
            max_in_flight=args.max_in_flight,
        )
        result = driver.run(plan)
    finally:
        for session in sessions:
            session.close()
    report = build_report(args.endpoint, spec, plan, result, slo)
    if args.report:
        with open(args.report, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
            handle.write("\n")
    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True))
    else:
        print(summarize_report(report))
    verdict = report.get("slo")
    if verdict is not None and not verdict["passed"]:
        for violation in verdict["violations"]:
            print(f"slo violation: {violation}", file=sys.stderr)
        return SLO_EXIT_CODE
    return 0


# ----------------------------------------------------------------------
# metrics (Prometheus text exposition of any endpoint)
# ----------------------------------------------------------------------
def _print_metrics(session: ClassificationSession, as_json: bool) -> int:
    if as_json:
        print(json.dumps(session.metrics(), indent=2, sort_keys=True))
        return 0
    text = session.metrics_text()
    sys.stdout.write(text if text.endswith("\n") else text + "\n")
    return 0


def _run_metrics(args: argparse.Namespace) -> int:
    with ClassificationSession.open(args.endpoint) as session:
        return _print_metrics(session, args.json)


# ----------------------------------------------------------------------
# cache maintenance
# ----------------------------------------------------------------------
def _open_cache(
    args: argparse.Namespace, require_exists: bool = True
) -> ClassificationCache:
    """Open ``--cache`` for maintenance: no quarantine, clear errors.

    ``--cache`` is a cache URL (bare path, ``json:FILE``, ``sqlite:FILE``).
    A corrupt store surfaces as a one-line ``error:`` via
    :class:`~repro.engine.backends.CacheCorruptionError` (a ``ValueError``)
    instead of being quarantined — inspection commands must never move the
    file they were pointed at.
    """
    _, location = parse_cache_url(args.cache)
    if location is None:
        raise LCLError(
            f"cache URL {args.cache!r} has no durable store to operate on"
        )
    if require_exists and not os.path.exists(location):
        raise LCLError(f"cache file {location!r} does not exist")
    return ClassificationCache(
        path=args.cache, max_entries=args.cache_max_entries, quarantine=False
    )


def _run_cache_stats(args: argparse.Namespace) -> int:
    cache = _open_cache(args)
    payload = {
        "path": cache.path,
        "backend": cache.backend_name,
        "entries": len(cache),
        "max_entries": cache.max_entries,
        "file_bytes": cache.backend.file_size(),
        "evicted_on_load": cache.stats.evictions,
    }
    cache.close(save=False)
    if args.json:
        print(json.dumps(payload, indent=2))
        return 0
    budget = "unbounded" if cache.max_entries is None else str(cache.max_entries)
    print(f"cache:    {cache.path}")
    print(f"backend:  {payload['backend']}")
    print(f"entries:  {payload['entries']} (budget {budget})")
    print(f"size:     {payload['file_bytes']} bytes on disk")
    if payload["evicted_on_load"]:
        print(
            f"note:     {payload['evicted_on_load']} entr(ies) over budget were "
            f"evicted on load; run 'cache compact' to shrink the file"
        )
    return 0


def _run_cache_compact(args: argparse.Namespace) -> int:
    cache = _open_cache(args)
    report = cache.compact()
    cache.close(save=False)
    if args.json:
        print(json.dumps(report, indent=2))
        return 0
    reclaimed = report["bytes_before"] - report["bytes_after"]
    print(
        f"compacted {args.cache}: {report['entries']} entr(ies), "
        f"{report['bytes_before']} -> {report['bytes_after']} bytes "
        f"({reclaimed} reclaimed)"
    )
    return 0


def _run_cache_export(args: argparse.Namespace) -> int:
    """Write a cache's content as a schema-2 JSON snapshot (any backend)."""
    cache = _open_cache(args)
    text = cache.export_text() + "\n"
    entries = len(cache)
    cache.close(save=False)
    if args.output and args.output != "-":
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(text)
        print(
            f"exported {entries} entr(ies) from {args.cache} to {args.output}",
            file=sys.stderr,
        )
    else:
        sys.stdout.write(text)
    return 0


def _run_cache_import(args: argparse.Namespace) -> int:
    """Load a schema-1/2 JSON snapshot into a cache (any backend)."""
    if args.snapshot == "-":
        text = sys.stdin.read()
        source = "<stdin>"
    else:
        if not os.path.exists(args.snapshot):
            raise LCLError(f"snapshot file {args.snapshot!r} does not exist")
        with open(args.snapshot, "r", encoding="utf-8") as handle:
            text = handle.read()
        source = args.snapshot
    pairs = parse_snapshot_text(text, source)
    cache = _open_cache(args, require_exists=False)
    if args.replace:
        cache.clear()
    for key, entry in pairs:
        cache.store(key, entry)
    cache.save()
    imported = len(pairs)
    total = len(cache)
    cache.close(save=False)
    print(
        f"imported {imported} entr(ies) into {args.cache} "
        f"({total} total after load)"
    )
    return 0


# ----------------------------------------------------------------------
# serve
# ----------------------------------------------------------------------
def _serve_settings(args: argparse.Namespace) -> argparse.Namespace:
    """Fold an optional ``serve ENDPOINT`` positional into the legacy flags."""
    if not args.endpoint:
        return args
    config = parse_endpoint(args.endpoint)
    if config.mode == MODE_TCP:
        args.host = config.host
        args.port = config.port
    elif config.mode == MODE_STDIO:
        args.stdio = True
    else:
        raise LCLError(
            f"serve expects a tcp:// or stdio: endpoint, got {args.endpoint!r} "
            "(local:// endpoints need no server — open a session on them directly)"
        )
    if config.cache_path:
        args.cache = config.cache_path
    if config.cache_max_entries is not None:
        args.cache_max_entries = config.cache_max_entries
    if config.cache_ttl is not None:
        args.cache_ttl = config.cache_ttl
    if config.cache_flush_interval is not None:
        args.cache_flush_interval = config.cache_flush_interval
    if config.cache_flush_count is not None:
        args.cache_flush_count = config.cache_flush_count
    return args


def _run_serve(args: argparse.Namespace) -> int:
    args = _serve_settings(args)
    cache = None
    if args.cache or args.cache_max_entries is not None:
        cache = ClassificationCache(
            path=args.cache,
            max_entries=args.cache_max_entries,
            ttl_seconds=args.cache_ttl,
            flush_interval=args.cache_flush_interval,
            flush_max_dirty=args.cache_flush_count,
        )
    service = ClassificationService(
        cache=cache,
        backend=args.worker_backend,
        workers=args.workers,
    )

    def ready(address) -> None:
        print(
            f"repro service listening on {address[0]}:{address[1]}",
            file=sys.stderr,
            flush=True,
        )

    try:
        if args.stdio:
            asyncio.run(service.serve_stdio())
        else:
            asyncio.run(service.serve_tcp(args.host, args.port, ready))
    except KeyboardInterrupt:  # pragma: no cover - interactive teardown
        pass
    return 0


# ----------------------------------------------------------------------
# client
# ----------------------------------------------------------------------
def _parse_connect(value: str) -> tuple:
    host, separator, port_text = value.rpartition(":")
    if not separator or not host or not port_text.isdigit():
        raise LCLError(f"--connect expects HOST:PORT, got {value!r}")
    return host, int(port_text)


def _client_classify(args: argparse.Namespace, session: ClassificationSession) -> int:
    problem = _read_problem(args.problem)
    outcome = session.classify(
        problem, priority=args.priority, deadline=args.deadline
    )
    payload = outcome.as_dict()
    if args.json:
        print(json.dumps(payload, indent=2))
        return 0 if outcome.ok else TIMEOUT_EXIT_CODE
    if not outcome.ok:
        print(f"problem:    {payload['name']}")
        print(f"outcome:    {payload['outcome']}")
        return TIMEOUT_EXIT_CODE
    print(f"problem:    {payload['name']}")
    print(f"complexity: {payload['complexity']}")
    print(f"details:    {payload['details']}")
    print(f"cached:     {'yes' if payload['from_cache'] else 'no'}")
    return 0


def _client_batch(args: argparse.Namespace, session: ClassificationSession) -> int:
    problems = _read_batch(args.source)
    stream = session.classify_many(
        problems, priority=args.priority, deadline=args.deadline
    )
    outcomes: List[Outcome] = []
    if args.json:
        outcomes = list(stream)
    else:
        for outcome in stream:
            _print_item_line(outcome.as_dict())
            outcomes.append(outcome)
    summary = _summarize_outcomes(outcomes)
    summary["stats"] = session.stats()
    if args.json:
        items = [outcome.as_dict() for outcome in outcomes]
        print(json.dumps({"items": items, "summary": summary}, indent=2))
        return 0
    _print_stream_summary(summary)
    return 0


def _client_census(args: argparse.Namespace, session: ClassificationSession) -> int:
    stream = session.census(
        **_census_params(args), priority=args.priority, deadline=args.deadline
    )
    outcomes: List[Outcome] = []
    for outcome in stream:
        if not args.json:
            _print_item_line(outcome.as_dict())
        outcomes.append(outcome)
    summary = _summarize_outcomes(outcomes)
    summary["counts"] = _tally_counts(outcomes)
    summary["params"] = _census_params(args)
    summary["stats"] = session.stats()
    if args.json:
        print(json.dumps(summary, indent=2))
        return 0
    print("\nCensus tally:")
    for value, count in sorted(summary["counts"].items(), key=lambda pair: -pair[1]):
        print(f"  {value:16s} {count:5d}")
    _print_stream_summary(summary)
    return 0


def _client_cancel(args: argparse.Namespace, session: ClassificationSession) -> int:
    request_id = int(args.request_id) if args.request_id.isdigit() else args.request_id
    payload = session.cancel(request_id)
    if args.json:
        print(json.dumps(payload, indent=2))
        return 0
    if payload["found"]:
        print(
            f"cancelled request {payload['request_id']}: "
            f"{payload['cancelled']} search(es) detached"
        )
        return 0
    print(f"request {payload['request_id']} is not in flight (already done?)")
    return 1


def _client_warm(args: argparse.Namespace, session: ClassificationSession) -> int:
    problems, census = _warm_workload(args)
    if problems is None and census is None:
        print(
            "error: provide a batch source and/or --census parameters to warm",
            file=sys.stderr,
        )
        return 2
    summary = session.warm(
        problems=problems, census=census, wait=args.wait, budget=args.budget
    )
    if args.json:
        print(json.dumps(summary, indent=2))
        return 0
    _print_warm_summary(summary)
    return 0


def _client_stats(args: argparse.Namespace, session: ClassificationSession) -> int:
    payload = session.stats()
    if args.json:
        print(json.dumps(payload, indent=2))
        return 0
    service, cache, batch = payload["service"], payload["cache"], payload["batch"]
    print(
        f"service:  {service['requests_served']} request(s) served, "
        f"up {service['uptime_seconds']:.0f}s"
    )
    budget = "unbounded" if cache["max_entries"] is None else str(cache["max_entries"])
    print(
        f"cache:    {cache['entries']} entries (budget {budget}), "
        f"hit rate {cache['hit_rate']:.0%}, {cache['evictions']} eviction(s)"
    )
    print(
        f"engine:   {batch['submitted']} submitted, {batch['full_searches']} full "
        f"search(es) ({batch['speedup']:.1f}x amortization)"
    )
    workers = payload.get("workers")
    if workers:
        print(
            f"workers:  {workers['backend']} x{workers['workers']}, "
            f"{workers['scheduled']} scheduled, {workers['deduped']} deduped, "
            f"{workers['in_flight']} in flight"
        )
        search_times = workers.get("search_times") or {}
        if search_times.get("count"):
            print(
                f"searches: {search_times['count']} completed, "
                f"p50 {search_times['p50_ms']:.1f} ms, "
                f"p99 {search_times['p99_ms']:.1f} ms, "
                f"max {search_times['max_ms']:.1f} ms"
            )
    return 0


def _client_metrics(args: argparse.Namespace, session: ClassificationSession) -> int:
    return _print_metrics(session, args.json)


def _client_trace(args: argparse.Namespace, session: ClassificationSession) -> int:
    request_id = int(args.request_id) if args.request_id.isdigit() else args.request_id
    payload = session.trace(request_id)
    if args.json:
        print(json.dumps(payload, indent=2))
        return 0 if payload["found"] else 1
    if not payload["found"]:
        print(
            f"no finished trace for request {payload['request_id']} "
            "(tracing off, still running, or evicted from the ring)"
        )
        return 1
    trace = payload["trace"]
    print(
        f"request {trace['request_id']} ({trace['op']}): "
        f"outcome {trace['outcome']}, {trace['duration_ms']:.1f} ms"
    )
    for span in trace["spans"]:
        duration = span["duration_ms"]
        length = "-" if duration is None else f"{duration:.1f} ms"
        print(
            f"  {span['name']:12s} [{span['stage']:9s}] "
            f"{span['start_ms']:8.1f} ms  {length:>10s}  {span['status']}"
        )
    return 0


def _client_shutdown(args: argparse.Namespace, session: ClassificationSession) -> int:
    payload = session.shutdown()
    if args.json:
        print(json.dumps(payload, indent=2))
        return 0
    saved = "cache saved" if payload.get("cache_saved") else "no cache file"
    print(f"service shut down ({saved})")
    return 0


def _run_client(args: argparse.Namespace) -> int:
    try:
        with _open_client_session(args) as session:
            return args.client_handler(args, session)
    except SessionError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


# ----------------------------------------------------------------------
# argument parser
# ----------------------------------------------------------------------
def _add_engine_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--json", action="store_true", help="emit machine-readable JSON output"
    )
    parser.add_argument(
        "--processes",
        type=int,
        default=None,
        metavar="N",
        help="legacy alias for --worker-backend processes --workers N",
    )
    _add_worker_flags(parser)
    _add_scheduling_flags(parser)
    _add_cache_flags(parser)


def _add_scheduling_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--priority",
        choices=PRIORITIES,
        default=None,
        help=(
            "scheduling class for the searches (interactive > batch > warm; "
            "default: interactive for classify, batch for batches, warm for censuses)"
        ),
    )
    parser.add_argument(
        "--deadline",
        type=float,
        default=None,
        metavar="SECONDS",
        help=(
            "per-canonical-key search budget; a key whose search exceeds it "
            "reports outcome 'timeout' instead of blocking everything behind it"
        ),
    )


def _add_worker_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--worker-backend",
        choices=BACKEND_NAMES,
        default=None,
        help=(
            "where uncached certificate searches run: inline (serial), "
            "threads (concurrent in-process), or processes (CPU-parallel)"
        ),
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="worker pool size for threads/processes backends (default: CPU count)",
    )


def _add_cache_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--cache",
        default=None,
        metavar="URL",
        help=(
            "persist classification results to a cache: a file path or "
            "json:FILE (single JSON file), sqlite:FILE (WAL-mode SQLite, "
            "safe for concurrent processes), or memory: (none)"
        ),
    )
    parser.add_argument(
        "--cache-max-entries",
        type=int,
        default=None,
        metavar="N",
        help="bound the cache to N entries, evicting least recently used results",
    )
    parser.add_argument(
        "--cache-ttl",
        type=float,
        default=None,
        metavar="SECONDS",
        help="drop cached results older than SECONDS (expired entries miss)",
    )
    parser.add_argument(
        "--cache-flush-interval",
        type=float,
        default=None,
        metavar="SECONDS",
        help=(
            "write-behind: persist dirty entries in the background every "
            "SECONDS instead of on demand"
        ),
    )
    parser.add_argument(
        "--cache-flush-count",
        type=int,
        default=None,
        metavar="N",
        help="write-behind: persist once N dirty entries are pending",
    )


def _add_census_params(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--labels", type=int, default=2, help="alphabet size (default: 2)"
    )
    parser.add_argument(
        "--delta", type=int, default=2, help="children per internal node (default: 2)"
    )
    parser.add_argument(
        "--density",
        type=float,
        default=0.5,
        help="probability of keeping each configuration (default: 0.5)",
    )
    parser.add_argument(
        "--count", type=int, default=100, help="number of random draws (default: 100)"
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="base random seed (default: 0)"
    )


def _add_warm_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "source",
        nargs="?",
        default=None,
        help="optional batch source (directory, '---'-separated file, or '-')",
    )
    parser.add_argument(
        "--census",
        action="store_true",
        help="warm the canonical keys of a random census instead of (or besides) a batch",
    )
    _add_census_params(parser)
    parser.add_argument(
        "--wait",
        action="store_true",
        help="block until the scheduled searches finish (default: background)",
    )
    parser.add_argument(
        "--budget",
        type=float,
        default=None,
        metavar="SECONDS",
        help=(
            "wall-clock budget spread best-effort across the whole sweep; "
            "unfinished searches are cancelled when it expires (implies waiting)"
        ),
    )
    parser.add_argument("--json", action="store_true")


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Classifier for locally checkable problems in rooted regular trees (PODC 2021).",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    classify_parser = subparsers.add_parser(
        "classify", help="classify a problem given as a configuration list"
    )
    classify_parser.add_argument(
        "problem", nargs="?", help="path to a problem file, or '-' to read standard input"
    )
    classify_parser.add_argument(
        "--catalog", action="store_true", help="classify the paper's sample problems instead"
    )
    classify_parser.add_argument(
        "--json", action="store_true", help="emit machine-readable JSON output"
    )
    _add_scheduling_flags(classify_parser)
    classify_parser.set_defaults(handler=_run_classify)

    batch_parser = subparsers.add_parser(
        "classify-batch",
        help="classify many problems at once, deduplicating by canonical form",
    )
    batch_parser.add_argument(
        "source",
        help="directory of *.txt problem files, a '---'-separated batch file, or '-'",
    )
    _add_engine_flags(batch_parser)
    batch_parser.set_defaults(handler=_run_classify_batch)

    census_parser = subparsers.add_parser(
        "census", help="classify a sweep of random problems and tally the classes"
    )
    _add_census_params(census_parser)
    _add_engine_flags(census_parser)
    census_parser.set_defaults(handler=_run_census)

    warm_parser = subparsers.add_parser(
        "warm",
        help="pre-populate a local classification cache, optionally on a time budget",
    )
    _add_warm_arguments(warm_parser)
    warm_parser.add_argument(
        "--processes",
        type=int,
        default=None,
        metavar="N",
        help="legacy alias for --worker-backend processes --workers N",
    )
    _add_worker_flags(warm_parser)
    _add_scheduling_flags(warm_parser)
    _add_cache_flags(warm_parser)
    warm_parser.set_defaults(handler=_run_warm)

    loadgen_parser = subparsers.add_parser(
        "loadgen",
        help="drive synthetic traffic at an endpoint and assert SLOs",
    )
    loadgen_parser.add_argument(
        "endpoint",
        help=(
            "session endpoint to load (local://inline|threads|processes, "
            "tcp://HOST:PORT, stdio:)"
        ),
    )
    loadgen_parser.add_argument(
        "--workload",
        choices=sorted(WORKLOADS),
        default="zipf",
        help="traffic model (default: zipf — skewed keys, Poisson arrivals)",
    )
    loadgen_parser.add_argument(
        "--duration",
        type=float,
        default=10.0,
        metavar="SECONDS",
        help="seconds of traffic the stream covers (default: 10)",
    )
    loadgen_parser.add_argument(
        "--seed", type=int, default=0, help="workload seed (default: 0)"
    )
    loadgen_parser.add_argument(
        "--rate",
        type=float,
        default=None,
        metavar="RPS",
        help="arrival rate in requests/second (default: the workload's own)",
    )
    loadgen_parser.add_argument(
        "--pool-size",
        type=int,
        default=None,
        metavar="N",
        help="distinct canonical keys in the problem pool (default: the workload's own)",
    )
    loadgen_parser.add_argument(
        "--zipf-s",
        type=float,
        default=None,
        metavar="S",
        help="Zipf skew exponent over the pool, 0 = uniform (default: the workload's own)",
    )
    loadgen_parser.add_argument(
        "--adversarial-rate",
        type=float,
        default=None,
        metavar="P",
        help="probability a request carries the adversarial poison-pill problem",
    )
    loadgen_parser.add_argument(
        "--mode",
        choices=LOADGEN_MODES,
        default="open",
        help=(
            "open: issue at planned arrival offsets (latency includes queueing); "
            "closed: --concurrency workers issue as fast as completions allow"
        ),
    )
    loadgen_parser.add_argument(
        "--concurrency",
        type=int,
        default=8,
        metavar="N",
        help="closed-loop worker count (default: 8)",
    )
    loadgen_parser.add_argument(
        "--connections",
        type=int,
        default=1,
        metavar="N",
        help="sessions to spread requests across, round-robin (default: 1)",
    )
    loadgen_parser.add_argument(
        "--max-in-flight",
        type=int,
        default=DEFAULT_MAX_IN_FLIGHT,
        metavar="N",
        help="open-loop backpressure cap on outstanding requests (default: 256)",
    )
    loadgen_parser.add_argument(
        "--slo",
        default=None,
        metavar="FILE",
        help=(
            "JSON SLO spec to assert (e.g. p99_interactive_ms, max_timeout_rate); "
            f"violations exit {SLO_EXIT_CODE}"
        ),
    )
    loadgen_parser.add_argument(
        "--report",
        default=None,
        metavar="FILE",
        help="also write the JSON report to FILE (the BENCH_loadgen.json format)",
    )
    loadgen_parser.add_argument(
        "--json", action="store_true", help="print the full JSON report to stdout"
    )
    loadgen_parser.set_defaults(handler=_run_loadgen)

    metrics_parser = subparsers.add_parser(
        "metrics",
        help="print an endpoint's metrics in the Prometheus text format",
    )
    metrics_parser.add_argument(
        "endpoint",
        help=(
            "session endpoint to scrape (tcp://HOST:PORT for a running "
            "service; local:// endpoints report a fresh engine)"
        ),
    )
    metrics_parser.add_argument(
        "--json",
        action="store_true",
        help="emit the repro.metrics/1 snapshot instead of the text format",
    )
    metrics_parser.set_defaults(handler=_run_metrics)

    cache_parser = subparsers.add_parser(
        "cache", help="inspect and maintain an on-disk classification cache"
    )
    cache_sub = cache_parser.add_subparsers(dest="cache_command", required=True)

    def _cache_command(name: str, handler, help_text: str):
        cache_cmd = cache_sub.add_parser(name, help=help_text)
        cache_cmd.add_argument(
            "--cache",
            required=True,
            metavar="URL",
            help=(
                "cache to operate on: a file path, json:FILE, or sqlite:FILE"
            ),
        )
        cache_cmd.add_argument(
            "--cache-max-entries",
            type=int,
            default=None,
            metavar="N",
            help="apply an LRU budget of N entries while loading",
        )
        cache_cmd.set_defaults(handler=handler)
        return cache_cmd

    for name, handler, help_text in (
        ("stats", _run_cache_stats, "report entry count and file size of a cache"),
        (
            "compact",
            _run_cache_compact,
            "rewrite a cache file from its (optionally re-bounded) entries",
        ),
    ):
        cache_cmd = _cache_command(name, handler, help_text)
        cache_cmd.add_argument("--json", action="store_true")

    cache_export = _cache_command(
        "export",
        _run_cache_export,
        "write a cache's content as a schema-2 JSON snapshot (any backend)",
    )
    cache_export.add_argument(
        "--output",
        "-o",
        default=None,
        metavar="FILE",
        help="write the snapshot to FILE instead of stdout ('-' for stdout)",
    )

    cache_import = _cache_command(
        "import",
        _run_cache_import,
        "load a schema-1/2 JSON snapshot into a cache (any backend) for warm-starts",
    )
    cache_import.add_argument(
        "snapshot",
        help="snapshot file from 'cache export' (or a cache file), '-' for stdin",
    )
    cache_import.add_argument(
        "--replace",
        action="store_true",
        help="drop existing entries first instead of merging over them",
    )

    serve_parser = subparsers.add_parser(
        "serve",
        help="run the long-running classification service (JSON-lines protocol)",
    )
    serve_parser.add_argument(
        "endpoint",
        nargs="?",
        default=None,
        help=(
            "service endpoint: tcp://HOST:PORT or stdio: "
            "(overrides --host/--port/--stdio; query parameters may set "
            "cache=URL (json:/sqlite:/memory:), cache_max_entries=N, "
            "cache_ttl, cache_flush_interval, and cache_flush_count)"
        ),
    )
    serve_parser.add_argument(
        "--stdio",
        action="store_true",
        help="serve one connection on stdin/stdout instead of TCP",
    )
    serve_parser.add_argument(
        "--host", default="127.0.0.1", help="TCP bind address (default: 127.0.0.1)"
    )
    serve_parser.add_argument(
        "--port",
        type=int,
        default=8765,
        help="TCP port; 0 binds an ephemeral port (default: 8765)",
    )
    _add_worker_flags(serve_parser)
    _add_cache_flags(serve_parser)
    serve_parser.set_defaults(handler=_run_serve)

    client_parser = subparsers.add_parser(
        "client", help="talk to a running classification service"
    )
    client_parser.add_argument(
        "--connect",
        required=True,
        metavar="HOST:PORT",
        help="address of a 'repro serve' TCP service",
    )
    client_parser.add_argument(
        "--retries",
        type=int,
        default=20,
        metavar="N",
        help="connection attempts before giving up (default: 20, 0.25s apart)",
    )
    client_sub = client_parser.add_subparsers(dest="client_command", required=True)

    client_classify = client_sub.add_parser(
        "classify", help="classify one problem file ('-' for stdin) via the service"
    )
    client_classify.add_argument(
        "problem", help="path to a problem file, or '-' to read standard input"
    )
    client_classify.add_argument("--json", action="store_true")
    _add_scheduling_flags(client_classify)
    client_classify.set_defaults(client_handler=_client_classify)

    client_batch = client_sub.add_parser(
        "batch", help="stream a batch through the service, printing items as they finish"
    )
    client_batch.add_argument(
        "source",
        help="directory of *.txt problem files, a '---'-separated batch file, or '-'",
    )
    client_batch.add_argument("--json", action="store_true")
    _add_scheduling_flags(client_batch)
    client_batch.set_defaults(client_handler=_client_batch)

    client_census = client_sub.add_parser(
        "census", help="run a server-side random census, streaming results"
    )
    _add_census_params(client_census)
    client_census.add_argument("--json", action="store_true")
    _add_scheduling_flags(client_census)
    client_census.set_defaults(client_handler=_client_census)

    client_cancel = client_sub.add_parser(
        "cancel",
        help="cancel an in-flight request by its id (use a second connection)",
    )
    client_cancel.add_argument(
        "request_id",
        help="id of the in-flight request (numeric ids are matched as integers)",
    )
    client_cancel.add_argument("--json", action="store_true")
    client_cancel.set_defaults(client_handler=_client_cancel)

    client_warm = client_sub.add_parser(
        "warm",
        help="pre-populate the service cache ahead of a batch or census",
    )
    _add_warm_arguments(client_warm)
    client_warm.set_defaults(client_handler=_client_warm)

    client_stats = client_sub.add_parser(
        "stats", help="print the service's cache, engine, and worker statistics"
    )
    client_stats.add_argument("--json", action="store_true")
    client_stats.set_defaults(client_handler=_client_stats)

    client_metrics = client_sub.add_parser(
        "metrics", help="print the service's metrics in the Prometheus text format"
    )
    client_metrics.add_argument(
        "--json",
        action="store_true",
        help="emit the repro.metrics/1 snapshot instead of the text format",
    )
    client_metrics.set_defaults(client_handler=_client_metrics)

    client_trace = client_sub.add_parser(
        "trace",
        help="fetch a finished request's span tree by its wire request id",
    )
    client_trace.add_argument(
        "request_id",
        help="id of the finished request (numeric ids are matched as integers)",
    )
    client_trace.add_argument("--json", action="store_true")
    client_trace.set_defaults(client_handler=_client_trace)

    client_shutdown = client_sub.add_parser(
        "shutdown", help="persist the service cache and stop the service"
    )
    client_shutdown.add_argument("--json", action="store_true")
    client_shutdown.set_defaults(client_handler=_client_shutdown)

    client_parser.set_defaults(handler=_run_client)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point used by ``python -m repro``."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.handler(args)
    except (ValueError, OSError, SessionError) as error:
        # LCLError (malformed problems), JSONDecodeError (corrupt caches),
        # file-system errors, and session/endpoint errors all surface as
        # one-line CLI errors, not tracebacks.
        print(f"error: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
