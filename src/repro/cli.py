"""Command-line interface: classify LCL problems from the terminal.

Usage::

    python -m repro classify path/to/problem.txt      # classify a problem file
    python -m repro classify --catalog                # classify the paper's samples
    echo "1 : 2 2 ; 2 : 1 1" | python -m repro classify -

A problem file contains one configuration per line in the paper's notation
(``parent : child child ...``); blank lines and ``#`` comments are ignored.
The output reports the complexity class, the certificate label sets and, for
``n^{Θ(1)}`` problems, the ``Ω(n^{1/k})`` lower-bound exponent.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .core.classifier import classify_with_certificates
from .core.parser import parse_problem
from .core.problem import LCLProblem
from .problems.catalog import catalog


def _read_problem(source: str) -> LCLProblem:
    """Read a problem description from a file path or ``-`` for standard input."""
    if source == "-":
        text = sys.stdin.read()
        name = "<stdin>"
    else:
        with open(source, "r", encoding="utf-8") as handle:
            text = handle.read()
        name = source
    return parse_problem(text, name=name)


def _report(problem: LCLProblem) -> str:
    artifacts = classify_with_certificates(problem)
    result = artifacts.result
    lines = [
        f"problem:    {problem.summary()}",
        f"complexity: {result.complexity.value}",
        f"details:    {result.describe()}",
        f"time:       {artifacts.elapsed_seconds * 1000:.2f} ms",
    ]
    return "\n".join(lines)


def _run_classify(args: argparse.Namespace) -> int:
    if args.catalog:
        for name, (problem, expected) in catalog().items():
            artifacts = classify_with_certificates(problem)
            marker = "ok" if artifacts.result.complexity == expected else "UNEXPECTED"
            print(
                f"[{marker}] {name:22s} {artifacts.result.complexity.value:16s} "
                f"({artifacts.elapsed_seconds * 1000:.1f} ms)"
            )
        return 0
    if not args.problem:
        print("error: provide a problem file, '-' for stdin, or --catalog", file=sys.stderr)
        return 2
    print(_report(_read_problem(args.problem)))
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Classifier for locally checkable problems in rooted regular trees (PODC 2021).",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)
    classify_parser = subparsers.add_parser(
        "classify", help="classify a problem given as a configuration list"
    )
    classify_parser.add_argument(
        "problem", nargs="?", help="path to a problem file, or '-' to read standard input"
    )
    classify_parser.add_argument(
        "--catalog", action="store_true", help="classify the paper's sample problems instead"
    )
    classify_parser.set_defaults(handler=_run_classify)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point used by ``python -m repro``."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
