"""Certificates for ``O(1)`` solvability (Section 7, Algorithm 5).

A problem is constant-time solvable iff it admits a certificate for
``O(log* n)`` solvability together with a *special configuration*
``(a : b_1, ..., a, ..., b_δ)`` such that all labels of the configuration belong
to the certificate labels and ``a`` occurs at a certificate leaf
(Definition 7.1, Theorems 7.2 and 7.7).

Algorithm 5 searches, for every label subset and every special configuration of
the restricted problem, for a certificate builder whose designated leaf label is
the repeated label of the configuration.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Tuple

from .cancellation import checkpoint
from .configuration import Configuration, Label
from .problem import LCLProblem
from .logstar_certificate import (
    CertificateBuilder,
    candidate_label_subsets,
    find_unrestricted_certificate,
)


def special_configurations_of(problem: LCLProblem) -> List[Configuration]:
    """All special configurations ``(a : ..., a, ...)`` of the problem (sorted)."""
    return problem.special_configurations()


def find_constant_certificate_builder(
    problem: LCLProblem,
) -> Optional[Tuple[CertificateBuilder, Configuration]]:
    """Algorithm 5: find a builder witnessing ``O(1)`` solvability.

    Returns a pair ``(builder, special configuration)`` or ``None``.  The builder
    is computed by Algorithm 3 with the repeated label of the special
    configuration as the required leaf label.
    """
    from . import kernel

    if kernel.use_bitmask_kernel():
        return kernel.find_constant_certificate_builder(problem)

    for subset in candidate_label_subsets(problem):
        checkpoint()
        restricted = problem.restrict(subset)
        specials = special_configurations_of(restricted)
        if not specials:
            continue
        for config in specials:
            builder = find_unrestricted_certificate(restricted, special_label=config.parent)
            if builder is not None:
                return builder, config
    return None


def has_constant_certificate(problem: LCLProblem) -> bool:
    """Decision version: is the round complexity ``O(1)`` (Theorem 7.10)?"""
    return find_constant_certificate_builder(problem) is not None
