"""Complexity classes of LCL problems on rooted regular trees.

The main theorem of the paper states that every LCL problem on rooted regular
trees has one of exactly four round complexities, in every one of the four
standard models (det/rand LOCAL, det/rand CONGEST):

* ``O(1)``,
* ``Θ(log* n)``,
* ``Θ(log n)``,
* ``Θ(n^{1/k})`` for some integer ``k >= 1``.

We additionally report ``UNSOLVABLE`` for problems that admit no valid labeling
of sufficiently deep complete trees at all (the paper implicitly excludes these).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional, Sequence, Tuple

from .configuration import Label


class ComplexityClass(enum.Enum):
    """The possible distributed round complexities (Theorem of Section 3)."""

    UNSOLVABLE = "unsolvable"
    CONSTANT = "O(1)"
    LOGSTAR = "Theta(log* n)"
    LOG = "Theta(log n)"
    POLYNOMIAL = "n^Theta(1)"

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.value

    @property
    def order(self) -> int:
        """A total order from easiest (0) to hardest (4)."""
        ordering = {
            ComplexityClass.CONSTANT: 0,
            ComplexityClass.LOGSTAR: 1,
            ComplexityClass.LOG: 2,
            ComplexityClass.POLYNOMIAL: 3,
            ComplexityClass.UNSOLVABLE: 4,
        }
        return ordering[self]

    def __lt__(self, other: "ComplexityClass") -> bool:
        if not isinstance(other, ComplexityClass):
            return NotImplemented
        return self.order < other.order

    def __le__(self, other: "ComplexityClass") -> bool:
        if not isinstance(other, ComplexityClass):
            return NotImplemented
        return self.order <= other.order


@dataclass(frozen=True)
class ClassificationResult:
    """Full output of the classifier for a single problem.

    Attributes
    ----------
    complexity:
        The complexity class of the problem.
    polynomial_exponent_bound:
        For ``POLYNOMIAL`` problems, the number ``k`` of pruning iterations of
        Algorithm 2; the problem requires ``Ω(n^{1/k})`` rounds (Theorem 5.2).
        The paper's algorithm does not pin down the exact exponent except when
        ``k = 1`` (then the complexity is ``Θ(n)``).
    zero_round_solvable:
        Whether all nodes may output a single fixed label with no communication.
    log_certificate_labels:
        Label set of the certificate for ``O(log n)`` solvability (if any).
    logstar_certificate_labels:
        Label set of the uniform certificate for ``O(log* n)`` solvability (if any).
    constant_certificate_labels:
        Label set of the certificate for ``O(1)`` solvability (if any).
    special_configuration:
        The special configuration used by the ``O(1)`` certificate (if any).
    pruning_sets:
        The sequence ``Σ_1, Σ_2, ...`` of path-inflexible label sets removed by
        Algorithm 2 (possibly empty).
    notes:
        Free-form diagnostic notes.
    """

    complexity: ComplexityClass
    polynomial_exponent_bound: Optional[int] = None
    zero_round_solvable: bool = False
    log_certificate_labels: Optional[frozenset] = None
    logstar_certificate_labels: Optional[frozenset] = None
    constant_certificate_labels: Optional[frozenset] = None
    special_configuration: Optional[object] = None
    pruning_sets: Tuple[frozenset, ...] = field(default_factory=tuple)
    notes: Tuple[str, ...] = field(default_factory=tuple)

    def describe(self) -> str:
        """Human readable description of the classification."""
        parts = [f"complexity: {self.complexity.value}"]
        if self.complexity is ComplexityClass.POLYNOMIAL:
            k = self.polynomial_exponent_bound or 1
            if k == 1:
                parts.append("exact bound: Theta(n)")
            else:
                parts.append(f"lower bound: Omega(n^(1/{k}))")
        if self.zero_round_solvable:
            parts.append("zero-round solvable")
        if self.log_certificate_labels is not None:
            parts.append(
                "log-certificate labels: {" + ", ".join(sorted(self.log_certificate_labels)) + "}"
            )
        if self.logstar_certificate_labels is not None:
            parts.append(
                "log*-certificate labels: {"
                + ", ".join(sorted(self.logstar_certificate_labels))
                + "}"
            )
        if self.constant_certificate_labels is not None:
            parts.append(
                "O(1)-certificate labels: {"
                + ", ".join(sorted(self.constant_certificate_labels))
                + "}"
            )
        if self.special_configuration is not None:
            parts.append(f"special configuration: {self.special_configuration}")
        return "; ".join(parts)

    def is_solvable(self) -> bool:
        """Whether the problem is solvable at all."""
        return self.complexity is not ComplexityClass.UNSOLVABLE

    def randomized_complexity(self) -> ComplexityClass:
        """The randomized complexity — identical to the deterministic one (Section 1.5)."""
        return self.complexity

    def congest_complexity(self) -> ComplexityClass:
        """The CONGEST complexity — identical to the LOCAL one (Section 1.5)."""
        return self.complexity
