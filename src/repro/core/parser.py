"""Parsing and formatting of LCL problem descriptions.

The textual format mirrors the paper's notation and the authors' classifier tool:
one configuration per line, parent first, then the children, e.g. the 3-coloring
problem of Section 1.2 is written as::

    1 : 2 2
    1 : 2 3
    1 : 3 3
    2 : 1 1
    2 : 1 3
    2 : 3 3
    3 : 1 1
    3 : 1 2
    3 : 2 2

Both ``:`` separated and whitespace-only lines are accepted; when no ``:`` is
present the first token is the parent.  Compact single-character notation such as
``"1 : 22"`` (as used in the paper for binary trees) is also accepted: a children
token longer than one character that is not a declared multi-character label is
split into its characters.

Problem-file grammar
--------------------
This is the authoritative description of the format consumed by
:func:`parse_problem` (and therefore by ``python -m repro classify``)::

    problem        ::= line*
    line           ::= comment | blank | configuration
    comment        ::= "#" <anything up to end of line>
    blank          ::=                               (ignored)
    configuration  ::= parent ":" children | parent children
    parent         ::= LABEL
    children       ::= (LABEL | GLUED)+              (exactly delta labels)
    LABEL          ::= any non-whitespace token
    GLUED          ::= multi-character token split into single-character
                      labels, unless declared as a label itself

Semicolons (``;``) are treated as line separators, so several configurations
may share one physical line.  Every configuration must have the same number of
children ``delta`` (inferred from the first configuration when not given
explicitly); children are unordered, so ``1 : 2 3`` and ``1 : 3 2`` denote the
same configuration.  Multi-problem *batch* files additionally separate problem
blocks with ``---`` lines; that outer layer is handled by ``repro.cli``, each
block is parsed with the grammar above.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple

from .configuration import Configuration, Label
from .problem import LCLError, LCLProblem


def _split_children_token(token: str, known_labels: Optional[Iterable[Label]]) -> List[Label]:
    """Split a children token into labels.

    Tokens are normally whitespace separated, but the paper's compact notation
    glues single-character labels together (``"22"`` means two children labeled
    ``2``).  A token is split into characters when it is not itself a known
    label.
    """
    known = set(known_labels) if known_labels is not None else set()
    if token in known or len(token) == 1:
        return [token]
    return list(token)


def parse_configuration(line: str, known_labels: Optional[Iterable[Label]] = None) -> Configuration:
    """Parse a single configuration line such as ``"1 : 2 3"`` or ``"1:23"``."""
    text = line.strip()
    if not text:
        raise LCLError("cannot parse an empty configuration line")
    if ":" in text:
        parent_text, children_text = text.split(":", 1)
        parent_tokens = parent_text.split()
        if len(parent_tokens) != 1:
            raise LCLError(f"expected exactly one parent label in {line!r}")
        parent = parent_tokens[0]
        child_tokens = children_text.split()
    else:
        tokens = text.split()
        parent, child_tokens = tokens[0], tokens[1:]
    children: List[Label] = []
    for token in child_tokens:
        children.extend(_split_children_token(token, known_labels))
    if not children:
        raise LCLError(f"configuration {line!r} has no children")
    return Configuration(parent, tuple(children))


def parse_problem(
    text: str,
    delta: Optional[int] = None,
    labels: Optional[Iterable[Label]] = None,
    name: str = "",
) -> LCLProblem:
    """Parse a whole problem description.

    Parameters
    ----------
    text:
        Configuration lines separated by newlines or semicolons.  Blank lines and
        lines starting with ``#`` are ignored.
    delta:
        Expected number of children; inferred from the first configuration when
        omitted.
    labels:
        Optional explicit alphabet (useful when some labels never occur in a
        configuration, or when labels have more than one character).
    name:
        Optional problem name.
    """
    lines: List[str] = []
    for raw_line in text.replace(";", "\n").splitlines():
        stripped = raw_line.strip()
        if stripped and not stripped.startswith("#"):
            lines.append(stripped)
    if not lines:
        raise LCLError("problem description contains no configurations")
    configurations = [parse_configuration(line, labels) for line in lines]
    inferred_delta = configurations[0].delta
    if delta is None:
        delta = inferred_delta
    for config in configurations:
        if config.delta != delta:
            raise LCLError(
                f"configuration {config} has {config.delta} children, expected {delta}"
            )
    return LCLProblem.create(
        delta=delta,
        configurations=[(c.parent, c.children) for c in configurations],
        labels=labels,
        name=name,
    )


def format_problem(problem: LCLProblem, compact: bool = False) -> str:
    """Render a problem back to its textual form.

    ``compact=True`` uses the paper's glued notation (only valid when every label
    is a single character).
    """
    lines: List[str] = []
    for config in problem.sorted_configurations():
        if compact and all(len(label) == 1 for label in config.labels):
            lines.append(f"{config.parent} : {''.join(config.children)}")
        else:
            lines.append(config.to_text())
    return "\n".join(lines)


def parse_problem_lines(
    lines: Sequence[str],
    delta: Optional[int] = None,
    labels: Optional[Iterable[Label]] = None,
    name: str = "",
) -> LCLProblem:
    """Parse a problem given as a sequence of configuration lines."""
    return parse_problem("\n".join(lines), delta=delta, labels=labels, name=name)


def round_trip(problem: LCLProblem) -> LCLProblem:
    """Format then re-parse a problem (used by tests to check parser fidelity)."""
    return parse_problem(
        format_problem(problem),
        delta=problem.delta,
        labels=problem.labels,
        name=problem.name,
    )
