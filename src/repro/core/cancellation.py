"""Cooperative cancellation and deadlines for the certificate searches.

The decision procedures of Sections 6 and 7 are exponential in the worst
case, and a single adversarial problem can otherwise pin a worker (or the
whole process) for minutes.  This module provides the primitive that makes
such searches interruptible without killing anything:

* a :class:`CancelToken` — a cancel flag plus an optional absolute deadline —
  that callers arm before starting a search, and
* a per-thread *cancel scope* installed with :func:`cancel_scope`, polled by
  the search loops through :func:`checkpoint`.

The certificate searches (:mod:`repro.core.log_certificate`,
:mod:`repro.core.logstar_certificate`, :mod:`repro.core.constant_certificate`)
call :func:`checkpoint` once per iteration of their outer loops.  When no
scope is installed the call is a single thread-local attribute read, so the
serial fast path stays unmeasurably cheap; when a scope is installed and its
token is cancelled or past its deadline, the checkpoint raises
:class:`SearchCancelled` or :class:`SearchTimeout` and the search unwinds
immediately, releasing its worker.

The flag object of a token only needs ``is_set()``/``set()``.  It defaults to
a :class:`threading.Event`, but a ``multiprocessing.Event`` works equally
well, which is how the process worker backend forwards hard-cancellation into
child processes (see :mod:`repro.workers.backends`).

This module is deliberately dependency-free (standard library only) so the
core decision procedures can poll it without importing the worker subsystem.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Any, Iterator, Optional

CANCELLED = "cancelled"
TIMEOUT = "timeout"
OUTCOMES = (CANCELLED, TIMEOUT)
"""The two ways a search can be interrupted (also used as wire outcomes)."""


class SearchInterrupted(RuntimeError):
    """A certificate search was stopped before completing.

    ``outcome`` is ``"cancelled"`` or ``"timeout"`` (the wire spelling used in
    protocol item frames and scheduler statistics); ``key`` names the
    canonical key of the interrupted search when known.
    """

    outcome = CANCELLED

    def __init__(self, message: str = "", key: Optional[str] = None) -> None:
        super().__init__(message or f"search {self.outcome}")
        self.key = key


class SearchCancelled(SearchInterrupted):
    """The search's cancel token was triggered explicitly."""

    outcome = CANCELLED


class SearchTimeout(SearchInterrupted):
    """The search ran past its deadline."""

    outcome = TIMEOUT


class CancelToken:
    """A cancel flag plus an optional deadline, shared by everyone involved.

    Parameters
    ----------
    deadline:
        Absolute :func:`time.monotonic` timestamp after which the token is
        expired.  ``None`` means no time limit.
    flag:
        The shared cancellation flag; any object with ``is_set()`` and
        ``set()`` (default: a fresh :class:`threading.Event`, replaceable
        with a ``multiprocessing.Event`` for cross-process tokens).
    """

    __slots__ = ("deadline", "_flag", "reason", "checkpoints", "started_at")

    def __init__(self, deadline: Optional[float] = None, flag: Any = None) -> None:
        self.deadline = deadline
        self._flag = flag if flag is not None else threading.Event()
        self.reason: Optional[str] = None
        # Observability piggyback: the searches already poll this token at
        # every checkpoint, so counting polls here gives the tracing layer a
        # progress signal with **zero** new kernel plumbing.  `checkpoints`
        # is bumped by the search thread only (exact per token, no lock);
        # `started_at` is stamped by the worker backend when the search
        # actually begins running (None until then, and it stays None inside
        # a process backend's child — the parent token never sees the
        # child's copy back).
        self.checkpoints = 0
        self.started_at: Optional[float] = None

    @classmethod
    def with_budget(cls, seconds: Optional[float]) -> "CancelToken":
        """A token expiring ``seconds`` from now (no deadline when ``None``)."""
        deadline = time.monotonic() + seconds if seconds is not None else None
        return cls(deadline=deadline)

    def cancel(self, reason: str = CANCELLED) -> None:
        """Trigger the flag; every checkpoint under this token raises next."""
        if self.reason is None:
            self.reason = reason
        self._flag.set()

    @property
    def cancelled(self) -> bool:
        """Whether :meth:`cancel` has been called (deadline not considered)."""
        return self._flag.is_set()

    @property
    def expired(self) -> bool:
        """Whether the deadline (if any) has passed."""
        return self.deadline is not None and time.monotonic() >= self.deadline

    def remaining(self) -> Optional[float]:
        """Seconds until the deadline (``None`` without one, floored at 0)."""
        if self.deadline is None:
            return None
        return max(0.0, self.deadline - time.monotonic())

    def check(self, key: Optional[str] = None) -> None:
        """Raise :class:`SearchCancelled`/:class:`SearchTimeout` when triggered.

        An explicit :meth:`cancel` wins over an expired deadline when both
        hold, except when the cancel itself recorded a timeout reason.
        """
        self.checkpoints += 1
        if self._flag.is_set():
            if self.reason == TIMEOUT:
                raise SearchTimeout(key=key)
            raise SearchCancelled(key=key)
        if self.expired:
            raise SearchTimeout(key=key)


_scope = threading.local()


def current_token() -> Optional[CancelToken]:
    """The innermost token installed on this thread (``None`` outside scopes)."""
    return getattr(_scope, "token", None)


@contextmanager
def cancel_scope(token: Optional[CancelToken]) -> Iterator[Optional[CancelToken]]:
    """Install ``token`` as this thread's active cancel scope.

    Scopes nest: the innermost token wins, and the previous one is restored
    on exit.  ``cancel_scope(None)`` is a no-op scope, which lets callers
    write one ``with`` statement for both the bounded and unbounded cases.
    """
    previous = current_token()
    _scope.token = token if token is not None else previous
    try:
        yield token
    finally:
        _scope.token = previous


def checkpoint(key: Optional[str] = None) -> None:
    """Poll the active cancel scope; raise when cancelled or past deadline.

    This is the single call sprinkled through the certificate search loops.
    Without an installed scope it reduces to one thread-local read.
    """
    token = getattr(_scope, "token", None)
    if token is not None:
        token.check(key)
