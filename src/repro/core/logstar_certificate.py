"""Certificate builders for ``O(log* n)`` solvability (Section 6, Algorithms 3 and 4).

Algorithm 3 (:func:`find_unrestricted_certificate`) performs a fixed-point
computation over *sets of possible root labels*: starting from the singletons,
a new set ``r_n`` is derived from a ``δ``-tuple of existing sets
``(r_1, ..., r_δ)`` by collecting every label ``σ`` that admits a configuration
whose children can be assigned to the sets ``r_1, ..., r_δ``.  Each derived set is
recorded in a *certificate builder* together with the tuple it was derived from;
when the full label set of the (restricted) problem is derived, a uniform
certificate for ``O(log* n)`` solvability exists (Theorem 6.8) and can be
materialized from the builder (Lemma 6.9, implemented in
:mod:`repro.core.certificates`).

Algorithm 4 (:func:`find_certificate_builder`) simply tries Algorithm 3 on the
restriction of the problem to every subset of labels.

The pairs carry a boolean flag tracking whether a designated *special* label can
appear at a leaf of the certificate; this is only needed for the constant-time
certificates of Section 7.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import combinations, product
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from .cancellation import checkpoint
from .configuration import Configuration, Label
from .problem import LCLProblem

RootSet = FrozenSet[Label]
BuilderKey = Tuple[RootSet, bool]


def assign_children_to_sets(
    config: Configuration, sets: Sequence[FrozenSet[Label]]
) -> Optional[Tuple[Label, ...]]:
    """Assign the children of ``config`` to the given label sets, if possible.

    Returns a tuple ``(x_1, ..., x_δ)`` that is a permutation of the
    configuration's children with ``x_i ∈ sets[i]`` for every ``i``, or ``None``
    when no such assignment exists.  A simple backtracking search is used; ``δ``
    is a small constant in all problems of interest.
    """
    children = list(config.children)
    assignment: List[Optional[Label]] = [None] * len(sets)
    used = [False] * len(children)

    def backtrack(position: int) -> bool:
        if position == len(sets):
            return True
        tried: Set[Label] = set()
        for index, child in enumerate(children):
            if used[index] or child in tried:
                continue
            tried.add(child)
            if child in sets[position]:
                used[index] = True
                assignment[position] = child
                if backtrack(position + 1):
                    return True
                used[index] = False
                assignment[position] = None
        return False

    if len(children) != len(sets):
        return None
    if backtrack(0):
        return tuple(label for label in assignment if label is not None)
    return None


@dataclass(frozen=True)
class CertificateBuilder:
    """The output of Algorithm 3: a recipe for building a uniform certificate.

    Attributes
    ----------
    problem:
        The restricted problem ``Π'`` the builder was computed for.
    label_set:
        The certificate label set ``Σ_T`` (the alphabet of ``problem``).
    special_label:
        The designated leaf label ``a`` (``None`` when no leaf requirement).
    entries:
        For every derived pair ``(root set, flag)`` the ``δ``-tuple of pairs it
        was derived from.
    root:
        The pair ``(Σ_T, special_label is not None)``; guaranteed to be either a
        singleton (initial pair) or to have an entry.
    """

    problem: LCLProblem
    label_set: RootSet
    special_label: Optional[Label]
    entries: Dict[BuilderKey, Tuple[BuilderKey, ...]] = field(default_factory=dict)
    root: BuilderKey = field(default=(frozenset(), False))

    def derivation_depth(self, key: Optional[BuilderKey] = None, _seen: int = 0) -> int:
        """Depth of the derivation tree below ``key`` (0 for initial singletons)."""
        key = key if key is not None else self.root
        if key not in self.entries:
            return 0
        return 1 + max(self.derivation_depth(child) for child in self.entries[key])


def _derive(
    problem: LCLProblem, pairs: Sequence[BuilderKey]
) -> Tuple[RootSet, bool]:
    """One derivation step of Algorithm 3 for a fixed ``δ``-tuple of pairs."""
    sets = [pair[0] for pair in pairs]
    flag = any(pair[1] for pair in pairs)
    roots: Set[Label] = set()
    for config in problem.configurations:
        if assign_children_to_sets(config, sets) is not None:
            roots.add(config.parent)
    return frozenset(roots), flag


def find_unrestricted_certificate(
    problem: LCLProblem, special_label: Optional[Label] = None
) -> Optional[CertificateBuilder]:
    """Algorithm 3: find a certificate builder for the (already restricted) problem.

    Returns ``None`` (the paper's ``ε``) when no certificate whose label set is
    exactly ``Σ(problem)`` exists, and a :class:`CertificateBuilder` otherwise.
    When ``special_label`` is given, the certificate is additionally required to
    have that label at one of its leaves.
    """
    from . import kernel

    if kernel.use_bitmask_kernel():
        return kernel.find_unrestricted_certificate(problem, special_label)

    labels = frozenset(problem.labels)
    if not labels or not problem.configurations:
        return None
    if special_label is not None and special_label not in labels:
        return None

    initial: Set[BuilderKey] = {
        (frozenset({label}), label == special_label) for label in labels
    }
    known: Set[BuilderKey] = set(initial)
    entries: Dict[BuilderKey, Tuple[BuilderKey, ...]] = {}
    newly: Set[BuilderKey] = set(initial)

    def sort_key(pair: BuilderKey) -> Tuple[Tuple[Label, ...], bool]:
        return (tuple(sorted(pair[0])), pair[1])

    while newly:
        added: Set[BuilderKey] = set()
        all_pairs = sorted(known, key=sort_key)
        new_pairs = sorted(newly, key=sort_key)
        for tuple_of_pairs in product(all_pairs, repeat=problem.delta):
            # The |known|^delta tuple sweep is the exponential heart of
            # Algorithm 3; poll the cancel scope so a deadline or an explicit
            # cancellation interrupts the search mid-iteration.
            checkpoint()
            if not any(pair in newly for pair in tuple_of_pairs):
                continue
            roots, flag = _derive(problem, tuple_of_pairs)
            key = (roots, flag)
            if roots and key not in known and key not in added:
                entries[key] = tuple(tuple_of_pairs)
                added.add(key)
        known |= added
        newly = added
        del new_pairs  # kept for clarity; the "touch a new pair" filter is above

    root_key: BuilderKey = (labels, special_label is not None)
    if root_key not in known:
        return None
    return CertificateBuilder(
        problem=problem,
        label_set=labels,
        special_label=special_label,
        entries=entries,
        root=root_key,
    )


def candidate_label_subsets(problem: LCLProblem) -> Iterator[FrozenSet[Label]]:
    """Subsets of labels worth trying in Algorithm 4, lazily.

    Any certificate label set ``Σ_T`` must be a subset of the greatest fixed point
    of "has a continuation below within the set" (every certificate label occurs
    as a root, hence needs a continuation using certificate labels only), so
    subsets outside that fixed point are skipped.  Subsets are enumerated in
    increasing size so that the cheapest candidates are tried first.  The
    enumeration is a generator: on wide alphabets there are ``2^|Σ|``
    candidates, and the sweep's per-subset ``checkpoint()`` can only interrupt
    an abandoned search early if the candidates are produced on demand.
    """
    universe = sorted(problem.infinite_continuation_labels())
    for size in range(1, len(universe) + 1):
        for combo in combinations(universe, size):
            yield frozenset(combo)


def find_certificate_builder(problem: LCLProblem) -> Optional[CertificateBuilder]:
    """Algorithm 4: find a certificate builder for ``O(log* n)`` solvability.

    Tries Algorithm 3 on the restriction of the problem to every candidate subset
    of labels and returns the first builder found (or ``None``).  The running
    time is exponential in the problem description in the worst case
    (Theorem 6.10), but small in practice.
    """
    from . import kernel

    if kernel.use_bitmask_kernel():
        return kernel.find_certificate_builder(problem)

    for subset in candidate_label_subsets(problem):
        checkpoint()
        restricted = problem.restrict(subset)
        builder = find_unrestricted_certificate(restricted, special_label=None)
        if builder is not None:
            return builder
    return None


def has_logstar_certificate(problem: LCLProblem) -> bool:
    """Decision version: is the round complexity ``O(log* n)`` (Theorem 6.11)?"""
    return find_certificate_builder(problem) is not None
