"""Node configurations of LCL problems on rooted regular trees.

A configuration ``x : y1 y2 ... yδ`` (Definition 4.1 of the paper) states that an
internal node labeled ``x`` may have children labeled ``y1, ..., yδ`` *in some
order*.  The order of the children is irrelevant, so a configuration is a pair
``(parent, multiset of children)``.  We store the children as a sorted tuple,
which gives every configuration a unique canonical form and makes configurations
hashable and comparable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import permutations
from typing import Iterable, Iterator, Mapping, Sequence, Tuple

Label = str
"""Type alias for node labels.  Labels are short strings such as ``"1"`` or ``"a"``."""


@dataclass(frozen=True, order=True)
class Configuration:
    """A single allowed configuration ``parent : children``.

    Parameters
    ----------
    parent:
        The label of the internal node.
    children:
        The labels of its ``δ`` children.  The tuple is canonicalized (sorted) on
        construction, so ``Configuration("1", ("2", "3"))`` and
        ``Configuration("1", ("3", "2"))`` compare equal.
    """

    parent: Label
    children: Tuple[Label, ...] = field(default=())

    def __post_init__(self) -> None:
        object.__setattr__(self, "children", tuple(sorted(self.children)))

    @property
    def delta(self) -> int:
        """The number of children in this configuration."""
        return len(self.children)

    @property
    def labels(self) -> frozenset:
        """The set of labels used by this configuration (parent and children)."""
        return frozenset((self.parent,) + self.children)

    def uses_only(self, allowed: Iterable[Label]) -> bool:
        """Return ``True`` iff every label of the configuration is in ``allowed``."""
        allowed_set = frozenset(allowed)
        return self.labels <= allowed_set

    def child_multiset(self) -> Mapping[Label, int]:
        """Return the multiset of children labels as a ``{label: count}`` mapping."""
        counts: dict = {}
        for child in self.children:
            counts[child] = counts.get(child, 0) + 1
        return counts

    def contains_child(self, label: Label) -> bool:
        """Return ``True`` iff some child carries ``label``."""
        return label in self.children

    def is_special(self) -> bool:
        """Return ``True`` iff this is a *special* configuration (Definition 7.1).

        A configuration is special when the parent label also appears among the
        children, i.e. it has the form ``(a : b1, ..., a, ..., bδ)``.  Special
        configurations are the key ingredient of constant-time solvability.
        """
        return self.parent in self.children

    def matches_children(self, assignment: Sequence[Label]) -> bool:
        """Check whether ``assignment`` is a permutation of this configuration's children."""
        return tuple(sorted(assignment)) == self.children

    def child_orderings(self) -> Iterator[Tuple[Label, ...]]:
        """Iterate over the distinct ordered arrangements of the children labels."""
        seen = set()
        for ordering in permutations(self.children):
            if ordering not in seen:
                seen.add(ordering)
                yield ordering

    def replace_one_child(self, old: Label, new: Label) -> "Configuration":
        """Return a configuration with one occurrence of ``old`` replaced by ``new``.

        Raises ``ValueError`` if ``old`` does not occur among the children.
        """
        children = list(self.children)
        try:
            index = children.index(old)
        except ValueError as exc:
            raise ValueError(f"label {old!r} is not a child of {self}") from exc
        children[index] = new
        return Configuration(self.parent, tuple(children))

    def to_text(self) -> str:
        """Render the configuration in the paper's notation, e.g. ``"1 : 2 3"``."""
        return f"{self.parent} : {' '.join(self.children)}"

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.to_text()


def configuration(parent: Label, *children: Label) -> Configuration:
    """Convenience constructor: ``configuration("1", "2", "3")``."""
    return Configuration(parent, tuple(children))


def configurations_from_pairs(
    pairs: Iterable[Tuple[Label, Sequence[Label]]]
) -> frozenset:
    """Build a frozenset of :class:`Configuration` from ``(parent, children)`` pairs."""
    return frozenset(Configuration(parent, tuple(children)) for parent, children in pairs)
