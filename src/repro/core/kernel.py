"""Bitmask certificate-search kernel: the hot path of the decision procedure.

The exponential parts of the classifier — the label-subset sweep of
Algorithm 4, the root-set fixed point of Algorithm 3, and the special-leaf
variants of Algorithm 5 — spend all of their time on tiny sets: sets of
labels and sets of root labels, each of size at most ``|Σ|``.  The reference
implementation (:mod:`repro.core.log_certificate`,
:mod:`repro.core.logstar_certificate`, :mod:`repro.core.constant_certificate`)
represents those as ``frozenset``/:class:`~repro.core.configuration.Configuration`
objects, which costs an allocation and a hash per elementary step.  This
module interns every label of a problem to a bit position and re-runs the
same algorithms over plain Python ints:

* a **label set** is an int (bit ``i`` set ⟺ label ``i`` in the set),
* a **configuration** is a ``(parent index, children index tuple, mask)``
  triple computed once per problem,
* **subset enumeration** (Algorithm 4) is integer counting over
  ``itertools.combinations`` of bit positions,
* **restriction** / ``uses_only`` / continuation checks are single
  ``mask & ~allowed == 0`` tests,
* **flexibility** (Algorithm 1) is a reachability/period computation over
  successor masks.

Equivalence contract
--------------------
The kernel is *pinned* to the reference implementation: for every problem it
must return results equal to the frozenset path — the same complexity class,
the same pruning sets, the same certificate problems, and byte-identical
:class:`~repro.core.logstar_certificate.CertificateBuilder` entries.  That is
possible because every pruning shortcut below is order-preserving:

* Candidate subsets are enumerated in exactly the reference order
  (increasing size, lexicographic within a size over the sorted alphabet) —
  only *provably fruitless* subsets are discarded early, by the support
  test: a subset whose labels do not all parent an in-subset configuration
  can never derive its full label set (`Algorithm 3`'s root), so the
  reference would return ``ε`` for it too.
* Algorithm 3 enumerates ``δ``-tuples of root-set pairs as sorted
  multisets (``combinations_with_replacement``) instead of the reference's
  full ``product``.  Because one derivation step is invariant under
  permuting the tuple — the child-to-set assignment is a matching — the
  lexicographically first *deriving* tuple in product order is always
  sorted, so the recorded ``entries`` are identical.
* Algorithm 5 skips the flagged (special-leaf) searches of a subset whose
  *plain* Algorithm 3 sweep already failed: the set-projection of every
  derivable flagged pair is derivable in the plain sweep, so a flagged root
  cannot exist where the plain root does not.  Subsets and special
  configurations are otherwise visited in the reference order.

The sweeps poll :func:`repro.core.cancellation.checkpoint` at least once per
candidate subset and once per ``δ``-tuple, exactly like the reference loops,
so deadlines and cancellation (PR 4) interrupt the kernel with the same
latency bound.

Memoization
-----------
A :class:`KernelState` carries the memo tables shared by one classification:
the interned encoding, the child-multiset ↔ set-tuple matching cache, and
the per-subset outcome of the plain Algorithm 3 sweep (reused verbatim by
Algorithm 5, so one classification never repeats a sweep).  The state lives
in a thread-local scope installed by
:func:`repro.core.classifier.classify_with_certificates`; it is dropped when
the classification returns *or unwinds*, so an interrupted search never
leaks partial results into a later one ("interrupted searches cache
nothing").  Only the pure structural encoding is cached across
classifications (:func:`problem_encoding`, a bounded LRU).

Selecting the kernel
--------------------
``REPRO_KERNEL=bitmask`` (the default) routes the module-level search
functions through this kernel; ``REPRO_KERNEL=reference`` keeps the
original frozenset path, which the differential oracle suite
(``tests/test_kernel_differential.py``) runs against the kernel on every
input.  :func:`kernel_override` forces a kernel for the current thread in
tests and benchmarks.
"""

from __future__ import annotations

import os
import threading
from contextlib import contextmanager
from functools import lru_cache
from itertools import combinations, combinations_with_replacement
from math import gcd
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Set, Tuple

from ..automata.flexibility import automaton_of
from .cancellation import checkpoint
from .configuration import Configuration, Label
from .log_certificate import LogCertificate, LogCertificateAbsence
from .logstar_certificate import BuilderKey, CertificateBuilder
from .problem import LCLProblem

BITMASK = "bitmask"
REFERENCE = "reference"
KERNELS = (BITMASK, REFERENCE)
ENV_VAR = "REPRO_KERNEL"

_override = threading.local()


def active_kernel() -> str:
    """The kernel name in effect: thread override > ``REPRO_KERNEL`` > bitmask."""
    name = getattr(_override, "name", None)
    if name is None:
        name = os.environ.get(ENV_VAR, "").strip() or BITMASK
    if name not in KERNELS:
        raise ValueError(
            f"unknown {ENV_VAR} value {name!r} (known: {', '.join(KERNELS)})"
        )
    return name


def use_bitmask_kernel() -> bool:
    """Whether the module-level search functions should route through here."""
    return active_kernel() == BITMASK


@contextmanager
def kernel_override(name: str) -> Iterator[str]:
    """Force ``name`` as the active kernel for the current thread.

    Only affects searches running *on this thread* (the ``inline`` backend
    and direct calls); worker threads and processes read ``REPRO_KERNEL``
    from the environment instead.
    """
    if name not in KERNELS:
        raise ValueError(f"unknown kernel {name!r} (known: {', '.join(KERNELS)})")
    previous = getattr(_override, "name", None)
    _override.name = name
    try:
        yield name
    finally:
        _override.name = previous


def _iter_bits(mask: int) -> Iterator[int]:
    """Yield the set bit positions of ``mask`` in ascending order."""
    while mask:
        low = mask & -mask
        yield low.bit_length() - 1
        mask ^= low


def _bit_tuple(mask: int) -> Tuple[int, ...]:
    """The set bit positions of ``mask`` as an ascending tuple."""
    return tuple(_iter_bits(mask))


class ProblemEncoding:
    """The bitmask view of one problem: labels interned to bit positions.

    Bit ``i`` stands for the ``i``-th label of the *sorted* alphabet, so
    comparing two masks by their ascending bit tuples reproduces the
    lexicographic order of sorted label tuples — the order every reference
    loop sorts by.
    """

    __slots__ = (
        "problem",
        "delta",
        "labels",
        "index_of",
        "num_labels",
        "full_mask",
        "configs",
        "configs_by_parent",
        "groups",
        "specials",
    )

    def __init__(self, problem: LCLProblem) -> None:
        self.problem = problem
        self.delta = problem.delta
        self.labels: List[Label] = problem.sorted_labels()
        self.index_of: Dict[Label, int] = {
            label: index for index, label in enumerate(self.labels)
        }
        self.num_labels = len(self.labels)
        self.full_mask = (1 << self.num_labels) - 1

        # One (parent index, config mask, distinct-children bits) triple per
        # configuration, in the deterministic sorted order.
        self.configs: List[Tuple[int, int, int]] = []
        self.configs_by_parent: List[List[int]] = [[] for _ in range(self.num_labels)]
        group_map: Dict[Tuple[int, ...], int] = {}
        self.specials: List[Tuple[Configuration, int, int]] = []
        for config in problem.sorted_configurations():
            parent = self.index_of[config.parent]
            children = tuple(self.index_of[child] for child in config.children)
            child_bits = 0
            for child in children:
                child_bits |= 1 << child
            mask = (1 << parent) | child_bits
            self.configs.append((parent, mask, child_bits))
            self.configs_by_parent[parent].append(mask)
            group_map[children] = group_map.get(children, 0) | (1 << parent)
            if config.is_special():
                self.specials.append((config, parent, mask))

        # Configurations grouped by children multiset: the child-to-set
        # matching of a derivation step only depends on the multiset, so one
        # matching decision covers every parent sharing it.
        self.groups: List[Tuple[Tuple[int, ...], int]] = sorted(group_map.items())

    # ------------------------------------------------------------------
    # Encode / decode
    # ------------------------------------------------------------------
    def mask_of(self, labels: Iterable[Label]) -> int:
        """Encode an iterable of labels as a bitmask."""
        mask = 0
        for label in labels:
            mask |= 1 << self.index_of[label]
        return mask

    def labels_of(self, mask: int) -> FrozenSet[Label]:
        """Decode a bitmask back to the label set it stands for."""
        return frozenset(self.labels[index] for index in _iter_bits(mask))

    # ------------------------------------------------------------------
    # Elementary set operations (all single mask tests)
    # ------------------------------------------------------------------
    def config_masks(self) -> List[int]:
        """The label mask of every configuration (sorted configuration order)."""
        return [mask for _parent, mask, _bits in self.configs]

    def allowed_config_count(self, allowed: int) -> int:
        """``|C|`` of the restriction to ``allowed`` (Definition 4.3)."""
        return sum(1 for _p, mask, _b in self.configs if mask & ~allowed == 0)

    def restricted_groups(self, allowed: int) -> List[Tuple[Tuple[int, ...], int]]:
        """Children groups of the restriction: ``(children, parents mask)``."""
        out: List[Tuple[Tuple[int, ...], int]] = []
        append = out.append
        for children, parents in self.groups:
            child_bits = 0
            for child in children:
                child_bits |= 1 << child
            if child_bits & ~allowed:
                continue
            keep = parents & allowed
            if keep:
                append((children, keep))
        return out

    def all_labels_supported(self, allowed: int) -> bool:
        """Whether every label of ``allowed`` parents an in-``allowed`` config.

        A label failing this test cannot occur in any derived root set of the
        restriction, so Algorithm 3's root (the full subset) is underivable
        and the sweep may skip the subset without running it.
        """
        probe = allowed
        configs_by_parent = self.configs_by_parent
        while probe:
            low = probe & -probe
            probe ^= low
            for mask in configs_by_parent[low.bit_length() - 1]:
                if mask & ~allowed == 0:
                    break
            else:
                return False
        return True

    # ------------------------------------------------------------------
    # Continuation fixed point (solvability / Algorithm 4 universe)
    # ------------------------------------------------------------------
    def infinite_continuation_mask(self) -> int:
        """Greatest fixed point of "has a continuation below within the set"."""
        current = self.full_mask
        while True:
            nxt = 0
            for index in _iter_bits(current):
                for mask in self.configs_by_parent[index]:
                    if mask & ~current == 0:
                        nxt |= 1 << index
                        break
            if nxt == current:
                return current
            current = nxt

    # ------------------------------------------------------------------
    # Path-flexibility (Algorithm 1's inner loop)
    # ------------------------------------------------------------------
    def successor_masks(self, allowed: int) -> List[int]:
        """Successor masks of ``M(Π|allowed)``: bit ``j`` of ``succ[i]`` ⟺ edge ``i→j``."""
        succ = [0] * self.num_labels
        for parent, mask, child_bits in self.configs:
            if mask & ~allowed == 0:
                succ[parent] |= child_bits
        return succ

    def flexible_mask(self, allowed: int) -> int:
        """Path-flexible labels of the restriction to ``allowed`` (Definition 4.9).

        A label is flexible iff its SCC in the automaton of the restriction
        contains an edge and has period 1 — the exact criterion of
        :meth:`repro.automata.semiautomaton.PathAutomaton.flexibility`.
        """
        succ = self.successor_masks(allowed)

        # Forward reachability closure per state (length >= 1 walks).
        reach: Dict[int, int] = {}
        for index in _iter_bits(allowed):
            frontier = succ[index] & allowed
            seen = frontier
            while frontier:
                grown = 0
                for node in _iter_bits(frontier):
                    grown |= succ[node]
                grown &= allowed & ~seen
                seen |= grown
                frontier = grown
            reach[index] = seen

        flexible = 0
        visited = 0
        for index in _iter_bits(allowed):
            if (visited >> index) & 1:
                continue
            scc = 1 << index
            for other in _iter_bits(reach[index]):
                if other != index and (reach[other] >> index) & 1:
                    scc |= 1 << other
            visited |= scc

            if not any(succ[node] & scc for node in _iter_bits(scc)):
                continue  # trivial SCC without a self-loop: inflexible
            # Period via BFS levels: gcd of level(u) + 1 - level(v) over edges.
            start = (scc & -scc).bit_length() - 1
            level = {start: 0}
            frontier_nodes = [start]
            while frontier_nodes:
                nxt_nodes: List[int] = []
                for node in frontier_nodes:
                    for succ_node in _iter_bits(succ[node] & scc):
                        if succ_node not in level:
                            level[succ_node] = level[node] + 1
                            nxt_nodes.append(succ_node)
                frontier_nodes = nxt_nodes
            period = 0
            for node in _iter_bits(scc):
                for succ_node in _iter_bits(succ[node] & scc):
                    period = gcd(period, level[node] + 1 - level[succ_node])
            if abs(period) == 1:
                flexible |= scc
        return flexible


@lru_cache(maxsize=256)
def problem_encoding(problem: LCLProblem) -> ProblemEncoding:
    """The (cached) bitmask encoding of ``problem``; pure and structural."""
    return ProblemEncoding(problem)


# ----------------------------------------------------------------------
# Child-multiset to set-tuple matching (Algorithm 3's elementary step)
# ----------------------------------------------------------------------
def match_children_to_sets(children: Tuple[int, ...], sets: Tuple[int, ...]) -> bool:
    """Whether ``children`` can be assigned bijectively to ``sets``.

    The bitmask twin of
    :func:`repro.core.logstar_certificate.assign_children_to_sets`:
    ``children`` is a multiset of label indices and ``sets`` a tuple of label
    masks; the answer is invariant under permuting ``sets``.
    """
    size = len(children)
    if size != len(sets):
        return False
    if size == 0:
        return True
    if size == 1:
        return bool((sets[0] >> children[0]) & 1)
    if size == 2:
        first, second = children
        set_a, set_b = sets
        return bool(
            ((set_a >> first) & 1 and (set_b >> second) & 1)
            or ((set_a >> second) & 1 and (set_b >> first) & 1)
        )
    counts: Dict[int, int] = {}
    for child in children:
        counts[child] = counts.get(child, 0) + 1
    distinct = list(counts.items())

    def backtrack(position: int) -> bool:
        if position == size:
            return True
        mask = sets[position]
        for slot, (child, remaining) in enumerate(distinct):
            if remaining and (mask >> child) & 1:
                distinct[slot] = (child, remaining - 1)
                if backtrack(position + 1):
                    distinct[slot] = (child, remaining)
                    return True
                distinct[slot] = (child, remaining)
        return False

    return backtrack(0)


# ----------------------------------------------------------------------
# Algorithm 3 over masks
# ----------------------------------------------------------------------
def _unrestricted_search(
    enc: ProblemEncoding,
    labels_mask: int,
    groups: List[Tuple[Tuple[int, ...], int]],
    special_index: Optional[int],
    match_memo: Dict[Tuple[Tuple[int, ...], Tuple[int, ...]], bool],
    sort_key_cache: Dict[int, Tuple[Tuple[int, ...], int]],
) -> Optional[Tuple[Dict[int, Tuple[int, ...]], int]]:
    """The fixed point of Algorithm 3 over pair codes ``(mask << 1) | flag``.

    Returns ``(entries, root code)`` when the full ``labels_mask`` (with the
    special flag, if any) is derivable, ``None`` otherwise.  Entries map each
    derived pair code to the δ-tuple of pair codes it was derived from —
    the exact analogue of the reference builder's ``entries``.
    """
    if not labels_mask or not groups:
        return None
    delta = enc.delta

    known: Set[int] = {
        ((1 << index) << 1) | (1 if index == special_index else 0)
        for index in _iter_bits(labels_mask)
    }
    entries: Dict[int, Tuple[int, ...]] = {}
    newly: Set[int] = set(known)

    def sort_key(code: int) -> Tuple[Tuple[int, ...], int]:
        cached = sort_key_cache.get(code)
        if cached is None:
            cached = (_bit_tuple(code >> 1), code & 1)
            sort_key_cache[code] = cached
        return cached

    while newly:
        added: Set[int] = set()
        all_pairs = sorted(known, key=sort_key)
        # Sorted multisets only: a derivation step is invariant under
        # permuting the tuple, and the lexicographically first deriving
        # tuple in the reference's full product order is always sorted, so
        # the recorded entries come out identical (see module docstring).
        for tuple_of_pairs in combinations_with_replacement(all_pairs, delta):
            checkpoint()
            if not any(code in newly for code in tuple_of_pairs):
                continue
            flag = 0
            for code in tuple_of_pairs:
                flag |= code & 1
            sets = tuple(code >> 1 for code in tuple_of_pairs)
            roots = 0
            for children, parents in groups:
                memo_key = (children, sets)
                feasible = match_memo.get(memo_key)
                if feasible is None:
                    feasible = match_children_to_sets(children, sets)
                    match_memo[memo_key] = feasible
                if feasible:
                    roots |= parents
            if roots:
                code = (roots << 1) | flag
                if code not in known and code not in added:
                    entries[code] = tuple_of_pairs
                    added.add(code)
        known |= added
        newly = added

    root_code = (labels_mask << 1) | (1 if special_index is not None else 0)
    if root_code not in known:
        return None
    return entries, root_code


class KernelState:
    """Memo tables shared by the searches of one classification.

    ``plain_memo`` keeps the outcome of the plain (no special label)
    Algorithm 3 sweep per candidate subset, so Algorithm 5 never repeats a
    sweep Algorithm 4 already ran; ``match_memo`` caches child-multiset ↔
    set-tuple matching decisions across every sweep of the problem.  States
    are created per classification (see :func:`classification_scope`) and
    never outlive it, so an interrupted search caches nothing.
    """

    __slots__ = (
        "encoding",
        "match_memo",
        "plain_memo",
        "flagged_memo",
        "sort_key_cache",
        "_universe_mask",
    )

    def __init__(self, encoding: ProblemEncoding) -> None:
        self.encoding = encoding
        self.match_memo: Dict[Tuple[Tuple[int, ...], Tuple[int, ...]], bool] = {}
        self.plain_memo: Dict[int, Optional[CertificateBuilder]] = {}
        self.flagged_memo: Dict[Tuple[int, int], Optional[CertificateBuilder]] = {}
        self.sort_key_cache: Dict[int, Tuple[Tuple[int, ...], int]] = {}
        self._universe_mask: Optional[int] = None

    # ------------------------------------------------------------------
    # Candidate subsets (Algorithm 4's enumeration, reference order)
    # ------------------------------------------------------------------
    @property
    def universe_mask(self) -> int:
        """The candidate universe: labels with an infinite continuation."""
        if self._universe_mask is None:
            self._universe_mask = self.encoding.infinite_continuation_mask()
        return self._universe_mask

    def candidate_masks(self) -> Iterator[int]:
        """Candidate subsets in the reference order (size, then lex), lazily."""
        bits = _bit_tuple(self.universe_mask)
        for size in range(1, len(bits) + 1):
            for combo in combinations(bits, size):
                mask = 0
                for bit in combo:
                    mask |= 1 << bit
                yield mask

    # ------------------------------------------------------------------
    # Algorithm 3 per subset, memoized
    # ------------------------------------------------------------------
    def plain_builder(self, mask: int) -> Optional[CertificateBuilder]:
        """Algorithm 3 on the restriction to ``mask`` without a special label."""
        if mask in self.plain_memo:
            return self.plain_memo[mask]
        builder = self._search(mask, None)
        self.plain_memo[mask] = builder
        return builder

    def flagged_builder(
        self, mask: int, special_index: int
    ) -> Optional[CertificateBuilder]:
        """Algorithm 3 on the restriction to ``mask`` with a required leaf label."""
        key = (mask, special_index)
        if key in self.flagged_memo:
            return self.flagged_memo[key]
        builder = self._search(mask, special_index)
        self.flagged_memo[key] = builder
        return builder

    def _search(
        self, mask: int, special_index: Optional[int]
    ) -> Optional[CertificateBuilder]:
        enc = self.encoding
        if not enc.all_labels_supported(mask):
            return None
        outcome = _unrestricted_search(
            enc,
            mask,
            enc.restricted_groups(mask),
            special_index,
            self.match_memo,
            self.sort_key_cache,
        )
        if outcome is None:
            return None
        entries, root_code = outcome
        restricted = enc.problem.restrict(enc.labels_of(mask))
        special_label = (
            enc.labels[special_index] if special_index is not None else None
        )
        return _materialize_builder(
            enc, restricted, mask, special_label, entries, root_code
        )


def _decode_pair(enc: ProblemEncoding, code: int) -> BuilderKey:
    return (enc.labels_of(code >> 1), bool(code & 1))


def _materialize_builder(
    enc: ProblemEncoding,
    problem: LCLProblem,
    labels_mask: int,
    special_label: Optional[Label],
    entries: Dict[int, Tuple[int, ...]],
    root_code: int,
) -> CertificateBuilder:
    decoded: Dict[BuilderKey, Tuple[BuilderKey, ...]] = {
        _decode_pair(enc, code): tuple(_decode_pair(enc, part) for part in parts)
        for code, parts in entries.items()
    }
    return CertificateBuilder(
        problem=problem,
        label_set=enc.labels_of(labels_mask),
        special_label=special_label,
        entries=decoded,
        root=_decode_pair(enc, root_code),
    )


# ----------------------------------------------------------------------
# Per-classification scope
# ----------------------------------------------------------------------
_scope = threading.local()


@contextmanager
def classification_scope(problem: LCLProblem) -> Iterator[Optional[KernelState]]:
    """Install a shared :class:`KernelState` for one classification.

    Installed by :func:`repro.core.classifier.classify_with_certificates`,
    so the log*, and constant searches of one classification share their
    sweep memos.  A no-op under the reference kernel.  The state is dropped
    on exit — including an unwinding :class:`SearchInterrupted` — so partial
    sweeps are never observable later.
    """
    if not use_bitmask_kernel():
        yield None
        return
    stack = getattr(_scope, "stack", None)
    if stack is None:
        stack = _scope.stack = []
    state = KernelState(problem_encoding(problem))
    stack.append(state)
    try:
        yield state
    finally:
        stack.pop()


def _state_for(problem: LCLProblem) -> KernelState:
    stack = getattr(_scope, "stack", None)
    if stack:
        state = stack[-1]
        if state.encoding.problem == problem:
            return state
    return KernelState(problem_encoding(problem))


# ----------------------------------------------------------------------
# Kernel twins of the module-level search functions
# ----------------------------------------------------------------------
def find_log_certificate(problem: LCLProblem):
    """Algorithm 2 with the pruning loop over masks (kernel twin)."""
    enc = problem_encoding(problem)
    mask = enc.full_mask
    removed: List[FrozenSet[Label]] = []
    while True:
        checkpoint()
        if not mask or enc.allowed_config_count(mask) == 0:
            break
        inflexible = mask & ~enc.flexible_mask(mask)
        if not inflexible:
            break
        removed.append(enc.labels_of(inflexible))
        mask &= ~inflexible
    fixed_point = problem.restrict(enc.labels_of(mask), name=problem.name)
    if fixed_point.is_empty():
        return LogCertificateAbsence(
            problem=problem,
            pruning_sets=tuple(removed),
            iterations=len(removed),
        )
    automaton = automaton_of(fixed_point)
    absorbing = automaton.minimal_absorbing_states()
    certificate_problem = fixed_point.restrict(absorbing, name=f"{problem.name}|pf")
    return LogCertificate(
        problem=problem,
        certificate_problem=certificate_problem,
        pruning_sets=tuple(removed),
        iterations=len(removed),
    )


def find_unrestricted_certificate(
    problem: LCLProblem, special_label: Optional[Label] = None
) -> Optional[CertificateBuilder]:
    """Algorithm 3 on an already-restricted problem (kernel twin)."""
    labels = frozenset(problem.labels)
    if not labels or not problem.configurations:
        return None
    if special_label is not None and special_label not in labels:
        return None
    enc = problem_encoding(problem)
    outcome = _unrestricted_search(
        enc,
        enc.full_mask,
        enc.restricted_groups(enc.full_mask),
        enc.index_of[special_label] if special_label is not None else None,
        {},
        {},
    )
    if outcome is None:
        return None
    entries, root_code = outcome
    return _materialize_builder(
        enc, problem, enc.full_mask, special_label, entries, root_code
    )


def find_certificate_builder(problem: LCLProblem) -> Optional[CertificateBuilder]:
    """Algorithm 4: the label-subset sweep over masks (kernel twin)."""
    state = _state_for(problem)
    for mask in state.candidate_masks():
        checkpoint()
        builder = state.plain_builder(mask)
        if builder is not None:
            return builder
    return None


def find_constant_certificate_builder(
    problem: LCLProblem,
) -> Optional[Tuple[CertificateBuilder, Configuration]]:
    """Algorithm 5: the special-configuration sweep over masks (kernel twin)."""
    state = _state_for(problem)
    enc = state.encoding
    for mask in state.candidate_masks():
        checkpoint()
        specials = [
            (config, parent)
            for config, parent, config_mask in enc.specials
            if config_mask & ~mask == 0
        ]
        if not specials:
            continue
        # Projection shortcut: a flagged root cannot be derivable where the
        # plain root is not, and Algorithm 4 usually computed the plain
        # sweep for this subset already.
        if state.plain_builder(mask) is None:
            continue
        for config, parent in specials:
            builder = state.flagged_builder(mask, parent)
            if builder is not None:
                return builder, config
    return None


__all__ = [
    "BITMASK",
    "REFERENCE",
    "KERNELS",
    "ENV_VAR",
    "KernelState",
    "ProblemEncoding",
    "active_kernel",
    "classification_scope",
    "find_certificate_builder",
    "find_constant_certificate_builder",
    "find_log_certificate",
    "find_unrestricted_certificate",
    "kernel_override",
    "match_children_to_sets",
    "problem_encoding",
    "use_bitmask_kernel",
]
