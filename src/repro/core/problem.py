"""The LCL problem formalism of the paper (Definition 4.1).

An LCL problem on rooted regular trees is a triple ``Π = (δ, Σ, C)`` where ``δ``
is the number of children of every internal node, ``Σ`` is a finite label set and
``C`` is the set of allowed configurations.  Leaves are unconstrained.

This module provides the immutable :class:`LCLProblem` value type together with
the elementary operations used throughout the paper:

* restriction to a label subset (Definition 4.3),
* continuations below (Definitions 4.4/4.5),
* the path-form ``Π_path`` (Definition 4.6),
* normalization (dropping unused labels), and
* structural introspection helpers used by the classifier and the solvers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from .configuration import Configuration, Label


class LCLError(ValueError):
    """Raised when an LCL problem description is malformed."""


@dataclass(frozen=True)
class LCLProblem:
    """An LCL problem ``Π = (δ, Σ, C)`` on rooted ``δ``-ary trees.

    Attributes
    ----------
    delta:
        Number of children of every internal node (``δ >= 1``).
    labels:
        The output alphabet ``Σ``.
    configurations:
        The allowed configurations ``C``; every configuration must have exactly
        ``delta`` children and use only labels from ``labels``.
    name:
        Optional human-readable name, used in reports and benchmarks.
    """

    delta: int
    labels: FrozenSet[Label]
    configurations: FrozenSet[Configuration]
    name: str = field(default="", compare=False)

    def __post_init__(self) -> None:
        if self.delta < 1:
            raise LCLError(f"delta must be >= 1, got {self.delta}")
        object.__setattr__(self, "labels", frozenset(self.labels))
        object.__setattr__(self, "configurations", frozenset(self.configurations))
        for config in self.configurations:
            if config.delta != self.delta:
                raise LCLError(
                    f"configuration {config} has {config.delta} children, expected {self.delta}"
                )
            if not config.labels <= self.labels:
                raise LCLError(
                    f"configuration {config} uses labels outside the alphabet {sorted(self.labels)}"
                )

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @staticmethod
    def create(
        delta: int,
        configurations: Iterable[Tuple[Label, Sequence[Label]]],
        labels: Optional[Iterable[Label]] = None,
        name: str = "",
    ) -> "LCLProblem":
        """Build a problem from ``(parent, children)`` pairs.

        If ``labels`` is omitted the alphabet is the set of labels appearing in
        the configurations.
        """
        configs = frozenset(
            Configuration(parent, tuple(children)) for parent, children in configurations
        )
        if labels is None:
            label_set: Set[Label] = set()
            for config in configs:
                label_set |= config.labels
            labels = label_set
        return LCLProblem(delta=delta, labels=frozenset(labels), configurations=configs, name=name)

    # ------------------------------------------------------------------
    # Basic introspection
    # ------------------------------------------------------------------
    @property
    def num_labels(self) -> int:
        """Size of the alphabet ``|Σ|``."""
        return len(self.labels)

    @property
    def num_configurations(self) -> int:
        """Number of allowed configurations ``|C|``."""
        return len(self.configurations)

    def is_empty(self) -> bool:
        """Return ``True`` iff the problem has no labels or no configurations.

        The empty problem plays the role of the fixed point reached by the
        pruning procedure of Section 5 when no certificate exists.
        """
        return not self.labels or not self.configurations

    def sorted_labels(self) -> List[Label]:
        """The alphabet in a deterministic (sorted) order."""
        return sorted(self.labels)

    def sorted_configurations(self) -> List[Configuration]:
        """The configurations in a deterministic (sorted) order."""
        return sorted(self.configurations)

    def description_size(self) -> int:
        """A simple size measure of the problem description (labels + config slots)."""
        return len(self.labels) + sum(1 + config.delta for config in self.configurations)

    # ------------------------------------------------------------------
    # Configurations indexed by parent / children
    # ------------------------------------------------------------------
    def configurations_of(self, parent: Label) -> List[Configuration]:
        """All configurations whose parent label is ``parent``."""
        return sorted(c for c in self.configurations if c.parent == parent)

    def parents(self) -> FrozenSet[Label]:
        """Labels that occur as the parent of at least one configuration."""
        return frozenset(c.parent for c in self.configurations)

    def used_labels(self) -> FrozenSet[Label]:
        """Labels that occur in at least one configuration."""
        used: Set[Label] = set()
        for config in self.configurations:
            used |= config.labels
        return frozenset(used)

    def has_configuration(self, parent: Label, children: Sequence[Label]) -> bool:
        """Check membership of ``(parent : children)`` in ``C`` (children unordered)."""
        return Configuration(parent, tuple(children)) in self.configurations

    # ------------------------------------------------------------------
    # Continuations (Definitions 4.4 / 4.5)
    # ------------------------------------------------------------------
    def has_continuation_below(self, label: Label) -> bool:
        """Return ``True`` iff ``label`` is the parent of at least one configuration."""
        return any(c.parent == label for c in self.configurations)

    def has_continuation_below_with(self, label: Label, allowed: Iterable[Label]) -> bool:
        """Continuation below using only labels of ``allowed`` (Definition 4.5)."""
        allowed_set = frozenset(allowed)
        if label not in allowed_set:
            return False
        return any(
            c.parent == label and c.uses_only(allowed_set) for c in self.configurations
        )

    def continuation_of(self, label: Label, allowed: Optional[Iterable[Label]] = None
                        ) -> Optional[Configuration]:
        """Return a deterministic continuation configuration for ``label`` (or ``None``).

        When ``allowed`` is given, only configurations using labels of ``allowed``
        are considered.  The lexicographically smallest matching configuration is
        returned so that repeated calls are reproducible.
        """
        allowed_set = frozenset(allowed) if allowed is not None else self.labels
        candidates = [
            c
            for c in self.configurations
            if c.parent == label and c.uses_only(allowed_set)
        ]
        if not candidates:
            return None
        return min(candidates)

    # ------------------------------------------------------------------
    # Restriction (Definition 4.3) and normalization
    # ------------------------------------------------------------------
    def restrict(self, allowed: Iterable[Label], name: str = "") -> "LCLProblem":
        """Restriction of the problem to the labels ``allowed`` (Definition 4.3).

        The new problem keeps exactly the configurations that only use labels from
        ``allowed``.  Labels of ``allowed`` that are not in the alphabet are
        ignored.
        """
        allowed_set = frozenset(allowed) & self.labels
        configs = frozenset(c for c in self.configurations if c.uses_only(allowed_set))
        return LCLProblem(
            delta=self.delta,
            labels=allowed_set,
            configurations=configs,
            name=name or (f"{self.name}|restricted" if self.name else ""),
        )

    def normalize(self) -> "LCLProblem":
        """Drop labels that do not occur in any configuration."""
        return self.restrict(self.used_labels(), name=self.name)

    def relabel(self, mapping: Mapping[Label, Label]) -> "LCLProblem":
        """Rename labels according to ``mapping`` (must be injective on ``Σ``)."""
        targets = [mapping.get(label, label) for label in self.labels]
        if len(set(targets)) != len(targets):
            raise LCLError("relabeling must be injective on the alphabet")
        configs = frozenset(
            Configuration(
                mapping.get(c.parent, c.parent),
                tuple(mapping.get(child, child) for child in c.children),
            )
            for c in self.configurations
        )
        return LCLProblem(
            delta=self.delta,
            labels=frozenset(targets),
            configurations=configs,
            name=self.name,
        )

    # ------------------------------------------------------------------
    # Path-form (Definition 4.6)
    # ------------------------------------------------------------------
    def path_form(self) -> "LCLProblem":
        """The path-form ``Π_path`` of the problem (Definition 4.6).

        ``Π_path`` is the LCL problem on directed paths (``δ = 1``) whose
        configurations are the pairs ``(a : b)`` such that some configuration of
        ``Π`` has parent ``a`` and ``b`` among its children.
        """
        pairs: Set[Configuration] = set()
        for config in self.configurations:
            for child in set(config.children):
                pairs.add(Configuration(config.parent, (child,)))
        return LCLProblem(
            delta=1,
            labels=self.labels,
            configurations=frozenset(pairs),
            name=f"{self.name}|path" if self.name else "path-form",
        )

    def path_edges(self) -> FrozenSet[Tuple[Label, Label]]:
        """The transition relation of the automaton ``M(Π)`` as ``(parent, child)`` pairs."""
        edges: Set[Tuple[Label, Label]] = set()
        for config in self.configurations:
            for child in set(config.children):
                edges.add((config.parent, child))
        return frozenset(edges)

    # ------------------------------------------------------------------
    # Solvability helpers
    # ------------------------------------------------------------------
    def infinite_continuation_labels(self) -> FrozenSet[Label]:
        """Greatest fixed point of "has a continuation below within the set".

        A label in this set can root an arbitrarily deep complete ``δ``-ary tree
        labeled correctly using only labels of the set.  The problem is solvable
        on all full ``δ``-ary trees iff this set is non-empty.
        """
        current: Set[Label] = set(self.labels)
        while True:
            nxt = {
                label
                for label in current
                if any(
                    c.parent == label and set(c.children) <= current
                    for c in self.configurations
                )
            }
            if nxt == current:
                return frozenset(current)
            current = nxt

    def is_solvable(self) -> bool:
        """Solvability on arbitrarily deep complete ``δ``-ary trees."""
        return bool(self.infinite_continuation_labels())

    def is_zero_round_solvable(self) -> bool:
        """True iff all nodes may output one fixed label without any communication.

        This requires a label ``σ`` with ``(σ : σ, ..., σ) ∈ C``; it is a strictly
        stronger requirement than ``O(1)`` solvability (cf. the MIS example of
        Section 1.3 which needs 4 rounds).
        """
        return any(
            Configuration(label, (label,) * self.delta) in self.configurations
            for label in self.labels
        )

    def special_configurations(self) -> List[Configuration]:
        """All special configurations ``(a : ..., a, ...)`` (Definition 7.1)."""
        return sorted(c for c in self.configurations if c.is_special())

    # ------------------------------------------------------------------
    # Misc
    # ------------------------------------------------------------------
    def with_name(self, name: str) -> "LCLProblem":
        """Return a copy of the problem carrying ``name``."""
        return LCLProblem(self.delta, self.labels, self.configurations, name=name)

    def summary(self) -> str:
        """One-line human readable summary."""
        label_text = ", ".join(self.sorted_labels())
        return (
            f"LCLProblem(name={self.name or '<anonymous>'}, delta={self.delta}, "
            f"|Sigma|={self.num_labels} [{label_text}], |C|={self.num_configurations})"
        )

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.summary()
