"""Core formalism: LCL problems, certificates, and the complexity classifier."""

from .cancellation import (
    CancelToken,
    SearchCancelled,
    SearchInterrupted,
    SearchTimeout,
    cancel_scope,
    checkpoint,
    current_token,
)
from .configuration import Configuration, Label, configuration, configurations_from_pairs
from .problem import LCLError, LCLProblem
from .parser import format_problem, parse_configuration, parse_problem, parse_problem_lines
from .complexity import ClassificationResult, ComplexityClass
from .log_certificate import (
    LogCertificate,
    LogCertificateAbsence,
    find_log_certificate,
    has_log_certificate,
    remove_path_inflexible_configurations,
)
from .logstar_certificate import (
    CertificateBuilder,
    find_certificate_builder,
    find_unrestricted_certificate,
    has_logstar_certificate,
)
from .constant_certificate import find_constant_certificate_builder, has_constant_certificate
from .kernel import (
    KERNELS,
    ProblemEncoding,
    active_kernel,
    kernel_override,
    problem_encoding,
)
from .certificates import (
    CertificateError,
    CertificateTree,
    ConstantCertificate,
    CoprimeCertificate,
    UniformCertificate,
    build_constant_certificate,
    build_uniform_certificate,
)
from .classifier import (
    ClassificationArtifacts,
    classify,
    classify_with_certificates,
    complexity_of,
)

__all__ = [
    "CancelToken",
    "CertificateBuilder",
    "CertificateError",
    "CertificateTree",
    "ClassificationArtifacts",
    "ClassificationResult",
    "ComplexityClass",
    "Configuration",
    "ConstantCertificate",
    "CoprimeCertificate",
    "KERNELS",
    "LCLError",
    "LCLProblem",
    "Label",
    "LogCertificate",
    "LogCertificateAbsence",
    "ProblemEncoding",
    "SearchCancelled",
    "SearchInterrupted",
    "SearchTimeout",
    "UniformCertificate",
    "active_kernel",
    "build_constant_certificate",
    "build_uniform_certificate",
    "cancel_scope",
    "checkpoint",
    "classify",
    "classify_with_certificates",
    "complexity_of",
    "configuration",
    "configurations_from_pairs",
    "current_token",
    "find_certificate_builder",
    "find_constant_certificate_builder",
    "find_log_certificate",
    "find_unrestricted_certificate",
    "format_problem",
    "has_constant_certificate",
    "has_log_certificate",
    "has_logstar_certificate",
    "kernel_override",
    "parse_configuration",
    "parse_problem",
    "parse_problem_lines",
    "problem_encoding",
    "remove_path_inflexible_configurations",
]
