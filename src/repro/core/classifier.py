"""The complete complexity classifier for LCL problems on rooted regular trees.

Given a problem ``Π = (δ, Σ, C)``, :func:`classify` determines its distributed
round complexity, following the decision procedure of the paper:

1. *Solvability.*  If no label admits an infinite continuation the problem is
   unsolvable on deep complete trees — reported as ``UNSOLVABLE`` (the paper
   implicitly assumes solvable problems).
2. *Super-logarithmic region* (Section 5, polynomial time).  Run Algorithm 2:
   if no certificate for ``O(log n)`` solvability exists, the complexity is
   ``n^{Θ(1)}`` and the number of pruning iterations ``k`` yields the
   ``Ω(n^{1/k})`` lower bound (exactly ``Θ(n)`` when ``k = 1``).
3. *Sub-logarithmic region* (Section 6, exponential time).  Run Algorithm 4: if
   no uniform certificate for ``O(log* n)`` solvability exists, the complexity
   is ``Θ(log n)``.
4. *Sub-log-star region* (Section 7, exponential time).  Run Algorithm 5: if no
   certificate for ``O(1)`` solvability exists the complexity is ``Θ(log* n)``,
   otherwise it is ``O(1)``.

The classifier also exposes the certificates themselves so that the distributed
solvers of :mod:`repro.distributed` can be instantiated from them.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional, Tuple

from .certificates import (
    CertificateError,
    ConstantCertificate,
    UniformCertificate,
    build_constant_certificate,
    build_uniform_certificate,
)
from .complexity import ClassificationResult, ComplexityClass
from .constant_certificate import find_constant_certificate_builder
from .log_certificate import LogCertificate, LogCertificateAbsence, find_log_certificate
from .logstar_certificate import find_certificate_builder
from .problem import LCLProblem


@dataclass(frozen=True)
class ClassificationArtifacts:
    """Classification result bundled with the materialized certificates."""

    problem: LCLProblem
    result: ClassificationResult
    log_certificate: Optional[LogCertificate] = None
    logstar_certificate: Optional[UniformCertificate] = None
    constant_certificate: Optional[ConstantCertificate] = None
    elapsed_seconds: float = 0.0

    @property
    def complexity(self) -> ComplexityClass:
        """The complexity class of the problem."""
        return self.result.complexity


def classify(problem: LCLProblem) -> ClassificationResult:
    """Classify the round complexity of ``problem`` (decision only)."""
    return classify_with_certificates(problem).result


def classify_with_certificates(problem: LCLProblem) -> ClassificationArtifacts:
    """Classify ``problem`` and materialize every certificate that exists.

    The whole decision procedure runs inside one
    :func:`repro.core.kernel.classification_scope`, so the bitmask kernel's
    Algorithm 4 and Algorithm 5 sweeps share their per-subset memo tables: a
    label subset whose plain Algorithm 3 search already ran is never swept
    twice in one classification.  The scope (and every memo in it) is
    dropped when this function returns or unwinds, so interrupted searches
    cache nothing.
    """
    from . import kernel

    with kernel.classification_scope(problem):
        return _classify_with_certificates(problem)


def _classify_with_certificates(problem: LCLProblem) -> ClassificationArtifacts:
    start = time.perf_counter()
    notes: Tuple[str, ...] = ()
    zero_round = problem.is_zero_round_solvable()

    # Step 1: solvability.
    if not problem.is_solvable():
        result = ClassificationResult(
            complexity=ComplexityClass.UNSOLVABLE,
            zero_round_solvable=False,
            notes=("no label admits an infinite continuation below",),
        )
        return ClassificationArtifacts(
            problem=problem,
            result=result,
            elapsed_seconds=time.perf_counter() - start,
        )

    # Step 2: O(log n) vs n^{Ω(1)} (Algorithm 2, polynomial time).
    log_outcome = find_log_certificate(problem)
    if isinstance(log_outcome, LogCertificateAbsence):
        exponent = log_outcome.lower_bound_exponent
        result = ClassificationResult(
            complexity=ComplexityClass.POLYNOMIAL,
            polynomial_exponent_bound=exponent,
            zero_round_solvable=zero_round,
            pruning_sets=log_outcome.pruning_sets,
            notes=(
                "Algorithm 2 emptied the problem after "
                f"{log_outcome.iterations} pruning iteration(s)",
            ),
        )
        return ClassificationArtifacts(
            problem=problem,
            result=result,
            elapsed_seconds=time.perf_counter() - start,
        )
    log_certificate: LogCertificate = log_outcome

    # Step 3: O(log* n) vs Θ(log n) (Algorithm 4, exponential time).
    logstar_builder = find_certificate_builder(problem)
    if logstar_builder is None:
        result = ClassificationResult(
            complexity=ComplexityClass.LOG,
            zero_round_solvable=zero_round,
            log_certificate_labels=log_certificate.labels,
            pruning_sets=log_certificate.pruning_sets,
            notes=notes,
        )
        return ClassificationArtifacts(
            problem=problem,
            result=result,
            log_certificate=log_certificate,
            elapsed_seconds=time.perf_counter() - start,
        )
    try:
        logstar_certificate: Optional[UniformCertificate] = build_uniform_certificate(
            logstar_builder
        )
    except CertificateError as error:  # pragma: no cover - defensive
        logstar_certificate = None
        notes = notes + (f"log* certificate could not be materialized: {error}",)

    # Step 4: O(1) vs Θ(log* n) (Algorithm 5, exponential time).
    constant_outcome = find_constant_certificate_builder(problem)
    if constant_outcome is None:
        result = ClassificationResult(
            complexity=ComplexityClass.LOGSTAR,
            zero_round_solvable=zero_round,
            log_certificate_labels=log_certificate.labels,
            logstar_certificate_labels=(
                logstar_certificate.labels if logstar_certificate is not None else None
            ),
            pruning_sets=log_certificate.pruning_sets,
            notes=notes,
        )
        return ClassificationArtifacts(
            problem=problem,
            result=result,
            log_certificate=log_certificate,
            logstar_certificate=logstar_certificate,
            elapsed_seconds=time.perf_counter() - start,
        )

    constant_builder, special_configuration = constant_outcome
    try:
        constant_certificate: Optional[ConstantCertificate] = build_constant_certificate(
            constant_builder, special_configuration
        )
    except CertificateError as error:  # pragma: no cover - defensive
        constant_certificate = None
        notes = notes + (f"O(1) certificate could not be materialized: {error}",)

    result = ClassificationResult(
        complexity=ComplexityClass.CONSTANT,
        zero_round_solvable=zero_round,
        log_certificate_labels=log_certificate.labels,
        logstar_certificate_labels=(
            logstar_certificate.labels if logstar_certificate is not None else None
        ),
        constant_certificate_labels=(
            constant_certificate.labels if constant_certificate is not None else None
        ),
        special_configuration=special_configuration,
        pruning_sets=log_certificate.pruning_sets,
        notes=notes,
    )
    return ClassificationArtifacts(
        problem=problem,
        result=result,
        log_certificate=log_certificate,
        logstar_certificate=logstar_certificate,
        constant_certificate=constant_certificate,
        elapsed_seconds=time.perf_counter() - start,
    )


def complexity_of(problem: LCLProblem) -> ComplexityClass:
    """Shortcut returning only the complexity class."""
    return classify(problem).complexity
