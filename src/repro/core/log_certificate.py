"""Certificates for ``O(log n)`` solvability (Section 5, Algorithms 1 and 2).

The decision between round complexity ``O(log n)`` and ``n^{Ω(1)}`` works by
iteratively pruning *path-inflexible* labels:

* :func:`remove_path_inflexible_configurations` is Algorithm 1: restrict the
  problem to its path-flexible labels.
* :func:`find_log_certificate` is Algorithm 2: iterate Algorithm 1 until a fixed
  point.  If the fixed point is empty the problem requires ``n^{Ω(1)}`` rounds
  (Theorem 5.2); otherwise the restriction of the fixed point to a minimal
  absorbing subgraph of its automaton is the *certificate for O(log n)
  solvability* and the problem is solvable in ``O(log n)`` rounds even in
  CONGEST (Theorem 5.1).

The whole procedure runs in time polynomial in the problem description
(Lemma 5.4 / Theorem 5.3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..automata.flexibility import automaton_of, path_flexible_labels, path_inflexible_labels
from ..automata.semiautomaton import PathAutomaton
from .cancellation import checkpoint
from .configuration import Label
from .problem import LCLProblem


@dataclass(frozen=True)
class LogCertificate:
    """A certificate for ``O(log n)`` solvability.

    Attributes
    ----------
    problem:
        The original problem ``Π``.
    certificate_problem:
        The path-flexible restriction ``Π_pf`` returned by Algorithm 2: every
        label is flexible, the automaton is strongly connected and has at least
        one edge (Lemma 5.5).  Any solution of ``Π_pf`` is a solution of ``Π``.
    pruning_sets:
        The sequence ``Σ_1, Σ_2, ...`` of path-inflexible label sets removed
        before the fixed point was reached.
    iterations:
        The number of invocations of Algorithm 1 until the fixed point.
    """

    problem: LCLProblem
    certificate_problem: LCLProblem
    pruning_sets: Tuple[frozenset, ...] = field(default_factory=tuple)
    iterations: int = 0

    @property
    def labels(self) -> frozenset:
        """The label set of the certificate problem."""
        return self.certificate_problem.labels

    def automaton(self) -> PathAutomaton:
        """The automaton of the certificate problem (strongly connected, flexible)."""
        return automaton_of(self.certificate_problem)

    def max_flexibility(self) -> int:
        """Maximum flexibility over the certificate labels (used by Theorem 5.1)."""
        return self.automaton().max_flexibility()

    def rake_compress_parameter(self) -> int:
        """The path-length parameter ``k`` of Theorem 5.1.

        ``k = max flexibility + |Σ(Π_pf)|``: compress paths of at least this
        length can always be completed because the automaton admits a walk of any
        length ``>= k`` between any pair of certificate labels.
        """
        return self.max_flexibility() + len(self.labels)

    def validate(self) -> List[str]:
        """Check the structural guarantees of Lemma 5.5; return a list of issues."""
        issues: List[str] = []
        if self.certificate_problem.is_empty():
            issues.append("certificate problem is empty")
            return issues
        automaton = self.automaton()
        if automaton.num_edges() == 0:
            issues.append("certificate automaton has no edges")
        if not automaton.is_strongly_connected():
            issues.append("certificate automaton is not strongly connected")
        inflexible = [state for state in automaton.states if not automaton.is_flexible(state)]
        if inflexible:
            issues.append(f"certificate contains inflexible labels: {sorted(inflexible)}")
        if not self.certificate_problem.labels <= self.problem.labels:
            issues.append("certificate labels are not a subset of the problem labels")
        for config in self.certificate_problem.configurations:
            if config not in self.problem.configurations:
                issues.append(f"certificate configuration {config} not allowed by the problem")
        return issues


@dataclass(frozen=True)
class LogCertificateAbsence:
    """Returned by Algorithm 2 when the problem has no ``O(log n)`` certificate.

    ``iterations`` is the number ``k`` of pruning steps; by Theorem 5.2 the
    problem then requires ``Ω(n^{1/k})`` rounds.
    """

    problem: LCLProblem
    pruning_sets: Tuple[frozenset, ...] = field(default_factory=tuple)
    iterations: int = 0

    @property
    def lower_bound_exponent(self) -> int:
        """The ``k`` of the ``Ω(n^{1/k})`` lower bound (at least 1)."""
        return max(1, self.iterations)


def remove_path_inflexible_configurations(problem: LCLProblem) -> LCLProblem:
    """Algorithm 1: restrict ``problem`` to its path-flexible labels."""
    flexible = path_flexible_labels(problem)
    return problem.restrict(flexible, name=problem.name)


def pruning_sequence(problem: LCLProblem) -> Tuple[List[LCLProblem], List[frozenset]]:
    """Iterate Algorithm 1 until a fixed point.

    Returns the sequence of problems ``Π_0, Π_1, ..., Π_k`` (with ``Π_k`` the
    fixed point) and the sequence of removed label sets ``Σ_1, ..., Σ_k``
    (empty sets are not recorded: the iteration stops at the first step that
    removes nothing).
    """
    problems = [problem]
    removed: List[frozenset] = []
    current = problem
    while True:
        checkpoint()
        inflexible = path_inflexible_labels(current)
        if not inflexible or current.is_empty():
            break
        removed.append(frozenset(inflexible))
        current = current.restrict(current.labels - inflexible, name=current.name)
        problems.append(current)
    return problems, removed


def find_log_certificate(problem: LCLProblem):
    """Algorithm 2: find a certificate for ``O(log n)`` solvability.

    Returns a :class:`LogCertificate` when the pruning fixed point is non-empty,
    and a :class:`LogCertificateAbsence` (the paper's ``ε``) otherwise.
    """
    from . import kernel

    if kernel.use_bitmask_kernel():
        return kernel.find_log_certificate(problem)

    problems, removed = pruning_sequence(problem)
    fixed_point = problems[-1]
    if fixed_point.is_empty():
        return LogCertificateAbsence(
            problem=problem,
            pruning_sets=tuple(removed),
            iterations=len(removed),
        )
    automaton = automaton_of(fixed_point)
    absorbing = automaton.minimal_absorbing_states()
    certificate_problem = fixed_point.restrict(absorbing, name=f"{problem.name}|pf")
    return LogCertificate(
        problem=problem,
        certificate_problem=certificate_problem,
        pruning_sets=tuple(removed),
        iterations=len(removed),
    )


def has_log_certificate(problem: LCLProblem) -> bool:
    """Decision version: is the round complexity ``O(log n)`` (Theorem 5.3)?"""
    return isinstance(find_log_certificate(problem), LogCertificate)
