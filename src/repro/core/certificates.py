"""Certificate objects for ``O(log* n)`` and ``O(1)`` solvability.

This module materializes the certificates of Sections 6 and 7:

* :class:`CertificateTree` — a complete ``δ``-ary labeled tree,
* :class:`UniformCertificate` — Definition 6.1 (one tree per certificate label,
  identical leaf layers),
* :class:`CoprimeCertificate` — Definition 6.2 (two families of coprime depths),
* :class:`ConstantCertificate` — Definition 7.1 (a uniform certificate plus a
  special configuration whose repeated label occurs at a certificate leaf),
* :func:`build_uniform_certificate` — the constructive proof of Lemma 6.9 turning
  a certificate builder (Algorithm 3 output) into an actual uniform certificate,
  including the "push the special leaf down" and "balance all leaves" phases.

All certificates can be validated against the original problem; validation is
used heavily by the test-suite and by the certificate-driven distributed solvers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterator, List, Mapping, Optional, Sequence, Set, Tuple

from .configuration import Configuration, Label
from .problem import LCLProblem
from .logstar_certificate import CertificateBuilder, assign_children_to_sets

_MAX_CERTIFICATE_NODES = 500_000
"""Safety cap on the size of a materialized certificate tree."""


class CertificateError(RuntimeError):
    """Raised when a certificate cannot be materialized or is malformed."""


# ----------------------------------------------------------------------
# Labeled complete trees
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class CertificateTree:
    """An immutable labeled rooted tree (complete ``δ``-ary in valid certificates)."""

    label: Label
    children: Tuple["CertificateTree", ...] = ()

    def depth(self) -> int:
        """Depth of the tree (0 for a single node)."""
        if not self.children:
            return 0
        return 1 + max(child.depth() for child in self.children)

    def size(self) -> int:
        """Total number of nodes."""
        return 1 + sum(child.size() for child in self.children)

    def is_complete(self, delta: int) -> bool:
        """Whether every internal node has exactly ``delta`` children and all leaves share a depth."""
        depths: Set[int] = set()

        def visit(node: "CertificateTree", depth: int) -> bool:
            if not node.children:
                depths.add(depth)
                return True
            if len(node.children) != delta:
                return False
            return all(visit(child, depth + 1) for child in node.children)

        return visit(self, 0) and len(depths) == 1

    def leaf_labels(self) -> Tuple[Label, ...]:
        """Labels of the leaves in left-to-right order."""
        if not self.children:
            return (self.label,)
        result: List[Label] = []
        for child in self.children:
            result.extend(child.leaf_labels())
        return tuple(result)

    def labels_used(self) -> FrozenSet[Label]:
        """All labels occurring anywhere in the tree."""
        used: Set[Label] = {self.label}
        for child in self.children:
            used |= child.labels_used()
        return frozenset(used)

    def iter_internal_configurations(self) -> Iterator[Configuration]:
        """Yield the configuration of every internal node."""
        if self.children:
            yield Configuration(self.label, tuple(child.label for child in self.children))
            for child in self.children:
                yield from child.iter_internal_configurations()

    def nodes_at_depth(self, depth: int) -> List["CertificateTree"]:
        """All nodes at the given depth (left-to-right)."""
        if depth == 0:
            return [self]
        result: List[CertificateTree] = []
        for child in self.children:
            result.extend(child.nodes_at_depth(depth - 1))
        return result

    def labels_at_depth(self, depth: int) -> Tuple[Label, ...]:
        """Labels of the nodes at the given depth (left-to-right)."""
        return tuple(node.label for node in self.nodes_at_depth(depth))

    def validate_against(self, problem: LCLProblem) -> List[str]:
        """Check that every internal node uses an allowed configuration."""
        issues: List[str] = []
        if not self.labels_used() <= problem.labels:
            issues.append("tree uses labels outside the problem alphabet")
        for config in self.iter_internal_configurations():
            if config not in problem.configurations:
                issues.append(f"configuration {config} not allowed by the problem")
        return issues


# ----------------------------------------------------------------------
# Uniform certificates (Definition 6.1)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class UniformCertificate:
    """A uniform certificate for ``O(log* n)`` solvability (Definition 6.1)."""

    problem: LCLProblem
    labels: FrozenSet[Label]
    depth: int
    trees: Mapping[Label, CertificateTree]

    def tree_for(self, root_label: Label) -> CertificateTree:
        """The certificate tree whose root carries ``root_label``."""
        return self.trees[root_label]

    def leaf_labels(self) -> Tuple[Label, ...]:
        """The (shared) leaf labeling of the certificate trees."""
        any_label = sorted(self.labels)[0]
        return self.trees[any_label].leaf_labels()

    def validate(self) -> List[str]:
        """Check all conditions of Definition 6.1; return a list of violations."""
        issues: List[str] = []
        if self.depth < 1:
            issues.append("certificate depth must be at least 1")
        if set(self.trees.keys()) != set(self.labels):
            issues.append("certificate must contain exactly one tree per certificate label")
            return issues
        reference_leaves: Optional[Tuple[Label, ...]] = None
        for label in sorted(self.labels):
            tree = self.trees[label]
            if tree.label != label:
                issues.append(f"tree for label {label!r} has root {tree.label!r}")
            if not tree.is_complete(self.problem.delta):
                issues.append(f"tree for label {label!r} is not a complete {self.problem.delta}-ary tree")
            if tree.depth() != self.depth:
                issues.append(
                    f"tree for label {label!r} has depth {tree.depth()}, expected {self.depth}"
                )
            if not tree.labels_used() <= self.labels:
                issues.append(f"tree for label {label!r} uses labels outside the certificate labels")
            issues.extend(tree.validate_against(self.problem))
            leaves = tree.leaf_labels()
            if reference_leaves is None:
                reference_leaves = leaves
            elif leaves != reference_leaves:
                issues.append(f"tree for label {label!r} has a different leaf labeling")
        return issues

    def is_valid(self) -> bool:
        """Whether the certificate satisfies Definition 6.1."""
        return not self.validate()

    def to_coprime(self) -> "CoprimeCertificate":
        """Derive a coprime certificate of depths ``(d, d+1)`` (Lemma 6.6, first direction)."""
        extended: Dict[Label, CertificateTree] = {}
        for label in sorted(self.labels):
            extended[label] = _extend_tree_by_continuation(
                self.trees[label], self.problem, self.labels
            )
        return CoprimeCertificate(
            problem=self.problem,
            labels=self.labels,
            depth_pair=(self.depth, self.depth + 1),
            trees_first={label: self.trees[label] for label in self.labels},
            trees_second=extended,
        )


def _extend_tree_by_continuation(
    tree: CertificateTree, problem: LCLProblem, allowed: FrozenSet[Label]
) -> CertificateTree:
    """Extend every leaf of ``tree`` by one level using continuations within ``allowed``."""
    if not tree.children:
        continuation = problem.continuation_of(tree.label, allowed)
        if continuation is None:
            raise CertificateError(
                f"label {tree.label!r} has no continuation below within {sorted(allowed)}"
            )
        children = tuple(CertificateTree(child) for child in continuation.children)
        return CertificateTree(tree.label, children)
    return CertificateTree(
        tree.label,
        tuple(_extend_tree_by_continuation(child, problem, allowed) for child in tree.children),
    )


# ----------------------------------------------------------------------
# Coprime certificates (Definition 6.2)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class CoprimeCertificate:
    """A coprime certificate for ``O(log* n)`` solvability (Definition 6.2)."""

    problem: LCLProblem
    labels: FrozenSet[Label]
    depth_pair: Tuple[int, int]
    trees_first: Mapping[Label, CertificateTree]
    trees_second: Mapping[Label, CertificateTree]

    def validate(self) -> List[str]:
        """Check all conditions of Definition 6.2; return a list of violations."""
        from math import gcd

        issues: List[str] = []
        d1, d2 = self.depth_pair
        if d1 < 1 or d2 < 1:
            issues.append("both depths must be at least 1")
        if gcd(d1, d2) != 1:
            issues.append(f"depths {d1} and {d2} are not coprime")
        for depth, trees in ((d1, self.trees_first), (d2, self.trees_second)):
            if set(trees.keys()) != set(self.labels):
                issues.append("each family must contain exactly one tree per certificate label")
                continue
            reference: Optional[Tuple[Label, ...]] = None
            for label in sorted(self.labels):
                tree = trees[label]
                if tree.label != label:
                    issues.append(f"tree for label {label!r} has root {tree.label!r}")
                if not tree.is_complete(self.problem.delta) or tree.depth() != depth:
                    issues.append(
                        f"tree for label {label!r} is not a complete tree of depth {depth}"
                    )
                issues.extend(tree.validate_against(self.problem))
                leaves = tree.leaf_labels()
                if reference is None:
                    reference = leaves
                elif leaves != reference:
                    issues.append(
                        f"tree for label {label!r} (depth {depth}) has a different leaf labeling"
                    )
        return issues

    def is_valid(self) -> bool:
        """Whether the certificate satisfies Definition 6.2."""
        return not self.validate()


# ----------------------------------------------------------------------
# Constant certificates (Definition 7.1)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ConstantCertificate:
    """A certificate for ``O(1)`` solvability (Definition 7.1)."""

    uniform: UniformCertificate
    special_configuration: Configuration

    @property
    def problem(self) -> LCLProblem:
        """The underlying problem."""
        return self.uniform.problem

    @property
    def labels(self) -> FrozenSet[Label]:
        """The certificate labels ``Σ_T``."""
        return self.uniform.labels

    @property
    def special_label(self) -> Label:
        """The repeated label ``a`` of the special configuration."""
        return self.special_configuration.parent

    def validate(self) -> List[str]:
        """Check all conditions of Definition 7.1; return a list of violations."""
        issues = list(self.uniform.validate())
        config = self.special_configuration
        if not config.is_special():
            issues.append(f"configuration {config} is not special (parent not among children)")
        if config not in self.problem.configurations:
            issues.append(f"special configuration {config} not allowed by the problem")
        if not config.labels <= self.uniform.labels:
            issues.append("special configuration uses labels outside the certificate labels")
        if config.parent not in self.uniform.leaf_labels():
            issues.append(
                f"special label {config.parent!r} does not occur at a certificate leaf"
            )
        return issues

    def is_valid(self) -> bool:
        """Whether the certificate satisfies Definition 7.1."""
        return not self.validate()


# ----------------------------------------------------------------------
# Lemma 6.9: from certificate builders to uniform certificates
# ----------------------------------------------------------------------
class _TemplateNode:
    """A mutable node of the *simplified temporary tree* of Lemma 6.9.

    Each node carries a set of possible labels; leaves are singletons.  The
    template is later instantiated once per certificate label.
    """

    __slots__ = ("label_set", "children")

    def __init__(self, label_set: FrozenSet[Label], children: Optional[List["_TemplateNode"]] = None):
        self.label_set = label_set
        self.children: List[_TemplateNode] = children if children is not None else []

    def is_leaf(self) -> bool:
        return not self.children

    def depth(self) -> int:
        if not self.children:
            return 0
        return 1 + max(child.depth() for child in self.children)

    def size(self) -> int:
        return 1 + sum(child.size() for child in self.children)

    def leaves_with_depth(self, depth: int = 0) -> List[Tuple["_TemplateNode", int]]:
        if not self.children:
            return [(self, depth)]
        result: List[Tuple[_TemplateNode, int]] = []
        for child in self.children:
            result.extend(child.leaves_with_depth(depth + 1))
        return result


def _special_trace(builder: CertificateBuilder) -> List[int]:
    """The child-index path from the builder root to the designated special leaf.

    The trace follows children whose flag is set; every flagged pair other than
    the initial ``({a}, True)`` has a builder entry (flags are only set at
    initialization for the special label itself), so the trace always terminates
    at the singleton of the special label.
    """
    assert builder.special_label is not None
    special_singleton = (frozenset({builder.special_label}), True)
    trace: List[int] = []
    key = builder.root
    guard = 0
    while key != special_singleton:
        if key not in builder.entries:
            raise CertificateError("special-label trace lost while walking the builder")
        child_keys = builder.entries[key]
        chosen = None
        for index, child_key in enumerate(child_keys):
            if child_key[1]:
                chosen = index
                key = child_key
                break
        if chosen is None:
            raise CertificateError("special-label trace lost: no flagged child")
        trace.append(chosen)
        guard += 1
        if guard > len(builder.entries) + len(builder.label_set) + 2:
            raise CertificateError("special-label trace does not terminate")
    return trace


def _expand_template(builder: CertificateBuilder) -> Tuple[_TemplateNode, Optional[List[int]]]:
    """Build the simplified temporary tree of Lemma 6.9 from a certificate builder.

    Returns the template root and, when the builder has a special label, the
    child-index path from the root to the designated special leaf.  Singleton
    pairs become leaves, except along the special-label trace, where derived
    singletons are expanded further so that the trace ends exactly at the
    special label.
    """
    node_budget = [0]
    special_trace = (
        _special_trace(builder) if builder.special_label is not None else None
    )

    def expand(key, trace: Optional[List[int]]) -> _TemplateNode:
        node_budget[0] += 1
        if node_budget[0] > _MAX_CERTIFICATE_NODES:
            raise CertificateError("certificate template exceeds the size safety cap")
        label_set, _flag = key
        on_trace = trace is not None
        must_expand = on_trace and bool(trace)
        if (len(label_set) == 1 and not must_expand) or key not in builder.entries:
            if len(label_set) != 1:
                raise CertificateError(
                    f"builder has no entry for non-singleton set {sorted(label_set)}"
                )
            return _TemplateNode(label_set)
        children = []
        for index, child_key in enumerate(builder.entries[key]):
            child_trace: Optional[List[int]] = None
            if must_expand and trace and index == trace[0]:
                child_trace = trace[1:]
            children.append(expand(child_key, child_trace))
        return _TemplateNode(label_set, children)

    root = expand(builder.root, special_trace)

    if special_trace is not None:
        end = _node_at(root, special_trace)
        if end.label_set != frozenset({builder.special_label}):
            raise CertificateError("special-label trace did not end at the special leaf")
        if not end.is_leaf():
            raise CertificateError("special-label trace ended at an internal node")
    return root, special_trace


def _node_at(root: _TemplateNode, path: Sequence[int]) -> _TemplateNode:
    node = root
    for index in path:
        node = node.children[index]
    return node


def _instantiate(
    template: _TemplateNode, root_label: Label, problem: LCLProblem
) -> CertificateTree:
    """Instantiate the template with a concrete root label (final phase of Lemma 6.9)."""

    def build(node: _TemplateNode, label: Label) -> CertificateTree:
        if node.is_leaf():
            return CertificateTree(label)
        child_sets = [child.label_set for child in node.children]
        chosen: Optional[Tuple[Configuration, Tuple[Label, ...]]] = None
        for config in sorted(problem.configurations_of(label)):
            assignment = assign_children_to_sets(config, child_sets)
            if assignment is not None:
                chosen = (config, assignment)
                break
        if chosen is None:
            raise CertificateError(
                f"no configuration for label {label!r} matches the template children"
            )
        _config, assignment = chosen
        children = tuple(
            build(child, child_label)
            for child, child_label in zip(node.children, assignment)
        )
        return CertificateTree(label, children)

    if root_label not in template.label_set:
        raise CertificateError(f"root label {root_label!r} not in the template root set")
    return build(template, root_label)


def _graft_special_path(
    template: _TemplateNode,
    special_path: List[int],
    problem: LCLProblem,
    special_label: Label,
) -> List[int]:
    """One "push the special leaf down" step of Lemma 6.9 (second phase).

    The template is instantiated with the special label at the root; the hairy
    path from the root down to the special leaf of that instance is grafted below
    the current special leaf.  Returns the path to the new special leaf.
    """
    instance = _instantiate(template, special_label, problem)
    # Walk the instance along the special path, collecting (node, next-index) info.
    instance_nodes: List[CertificateTree] = [instance]
    node = instance
    for index in special_path:
        node = node.children[index]
        instance_nodes.append(node)
    # Build the graft: a chain of singleton template nodes following the path,
    # with the off-path children of every path node attached as singleton leaves.
    def build_chain(position: int) -> _TemplateNode:
        current = instance_nodes[position]
        if position == len(instance_nodes) - 1:
            return _TemplateNode(frozenset({current.label}))
        next_index = special_path[position]
        children: List[_TemplateNode] = []
        for index, child in enumerate(current.children):
            if index == next_index:
                children.append(build_chain(position + 1))
            else:
                children.append(_TemplateNode(frozenset({child.label})))
        return _TemplateNode(frozenset({current.label}), children)

    graft = build_chain(0)
    # Replace the current special leaf by the graft (they carry the same singleton).
    special_leaf = _node_at(template, special_path)
    if special_leaf.label_set != graft.label_set:
        raise CertificateError("graft root label does not match the special leaf")
    special_leaf.children = graft.children
    return list(special_path) + list(special_path)


def _balance_leaves(
    template: _TemplateNode, problem: LCLProblem, allowed: FrozenSet[Label]
) -> None:
    """Third phase of Lemma 6.9: extend shallow leaves until all share the maximum depth."""
    target = template.depth()
    changed = True
    while changed:
        changed = False
        for leaf, depth in template.leaves_with_depth():
            if depth >= target:
                continue
            label = next(iter(leaf.label_set))
            continuation = problem.continuation_of(label, allowed)
            if continuation is None:
                raise CertificateError(
                    f"label {label!r} has no continuation below within the certificate labels"
                )
            leaf.children = [
                _TemplateNode(frozenset({child})) for child in continuation.children
            ]
            changed = True
        if template.size() > _MAX_CERTIFICATE_NODES:
            raise CertificateError("certificate grew beyond the size safety cap while balancing")


def build_uniform_certificate(builder: CertificateBuilder) -> UniformCertificate:
    """Materialize a uniform certificate from a certificate builder (Lemma 6.9)."""
    problem = builder.problem
    labels = builder.label_set

    # Degenerate case: a single certificate label.
    if len(labels) == 1:
        label = next(iter(labels))
        config = problem.continuation_of(label, labels)
        if config is None:
            raise CertificateError(
                f"single-label builder for {label!r} without a continuation below"
            )
        tree = CertificateTree(label, tuple(CertificateTree(child) for child in config.children))
        return UniformCertificate(
            problem=problem, labels=labels, depth=1, trees={label: tree}
        )

    template, special_path = _expand_template(builder)

    # Phase 2 (only with a special label): push the special leaf down until it is deepest.
    if special_path is not None and builder.special_label is not None:
        guard = 0
        while len(special_path) < template.depth():
            special_path = _graft_special_path(
                template, special_path, problem, builder.special_label
            )
            guard += 1
            if guard > 64:
                raise CertificateError("push-down phase did not converge")

    # Phase 3: balance all leaves to the same depth.
    _balance_leaves(template, problem, labels)

    depth = template.depth()
    trees: Dict[Label, CertificateTree] = {}
    for label in sorted(labels):
        trees[label] = _instantiate(template, label, problem)
    certificate = UniformCertificate(problem=problem, labels=labels, depth=depth, trees=trees)
    issues = certificate.validate()
    if issues:
        raise CertificateError("materialized certificate is invalid: " + "; ".join(issues))
    return certificate


def build_constant_certificate(
    builder: CertificateBuilder, special_configuration: Configuration
) -> ConstantCertificate:
    """Materialize a constant-time certificate (Definition 7.1) from a builder."""
    uniform = build_uniform_certificate(builder)
    certificate = ConstantCertificate(
        uniform=uniform, special_configuration=special_configuration
    )
    issues = certificate.validate()
    if issues:
        raise CertificateError("materialized constant certificate is invalid: " + "; ".join(issues))
    return certificate
