"""A synchronous LOCAL/CONGEST simulator for rooted trees.

The simulator executes *state-exchange algorithms*: in every round each node
reads the public states of its parent and children (exactly the information a
LOCAL-model node can learn in one round) and computes a new state.  A node's
initial state may depend only on its local input — its identifier, its number of
children, whether it is the root, and the global parameters ``n`` and ``δ`` —
matching the LOCAL model's initial knowledge (Section 4.2).

The simulator measures the number of rounds until every node has produced an
output and, for CONGEST accounting, the size of the largest state exchanged.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Dict, Generic, List, Optional, Sequence, Tuple, TypeVar

from ..core.configuration import Label
from ..trees.rooted_tree import RootedTree
from .rounds import MessageStats, message_size_bits

State = TypeVar("State")


@dataclass(frozen=True)
class NodeInfo:
    """The local input of a node in the LOCAL model."""

    node: int
    identifier: int
    is_root: bool
    num_children: int
    port: int
    n: int
    delta: int


class StateExchangeAlgorithm(ABC, Generic[State]):
    """A distributed algorithm written in the state-exchange style.

    In every round each node sees the *previous-round* states of its parent and
    its children (``None`` for a missing parent) and computes its next state.
    The algorithm terminates when every node reports an output.
    """

    @abstractmethod
    def initial_state(self, info: NodeInfo) -> State:
        """The state of a node before any communication."""

    @abstractmethod
    def update(
        self,
        info: NodeInfo,
        state: State,
        parent_state: Optional[State],
        children_states: Sequence[State],
    ) -> State:
        """Compute the next state from the neighbors' previous states."""

    @abstractmethod
    def output(self, info: NodeInfo, state: State) -> Optional[Label]:
        """The node's output, or ``None`` if it has not terminated yet."""


@dataclass
class SimulationResult:
    """The outcome of running a state-exchange algorithm on a tree."""

    outputs: Dict[int, Label]
    rounds: int
    message_stats: MessageStats
    converged: bool


class Simulator:
    """Runs state-exchange algorithms on rooted trees."""

    def __init__(self, tree: RootedTree, identifiers: Optional[Sequence[int]] = None, delta: int = 2):
        self.tree = tree
        self.delta = delta
        ids = list(identifiers) if identifiers is not None else tree.default_identifiers()
        if len(ids) != tree.num_nodes:
            raise ValueError("identifier list length must equal the number of nodes")
        if len(set(ids)) != len(ids):
            raise ValueError("identifiers must be unique")
        self.identifiers = ids
        self.infos = [
            NodeInfo(
                node=node,
                identifier=ids[node],
                is_root=tree.parent[node] is None,
                num_children=len(tree.children[node]),
                port=tree.port_of(node),
                n=tree.num_nodes,
                delta=delta,
            )
            for node in tree.nodes()
        ]

    def run(
        self,
        algorithm: StateExchangeAlgorithm,
        max_rounds: Optional[int] = None,
    ) -> SimulationResult:
        """Run ``algorithm`` until all nodes produce an output (or ``max_rounds``)."""
        tree = self.tree
        n = tree.num_nodes
        limit = max_rounds if max_rounds is not None else 4 * n + 64
        stats = MessageStats(congest_budget_bits=max(1, math.ceil(math.log2(max(2, n)))))

        states: List[object] = [
            algorithm.initial_state(self.infos[node]) for node in tree.nodes()
        ]
        rounds = 0
        outputs: Dict[int, Label] = {}

        def collect_outputs() -> bool:
            outputs.clear()
            done = True
            for node in tree.nodes():
                value = algorithm.output(self.infos[node], states[node])
                if value is None:
                    done = False
                else:
                    outputs[node] = value
            return done

        if collect_outputs():
            return SimulationResult(dict(outputs), 0, stats, True)

        while rounds < limit:
            rounds += 1
            for node in tree.nodes():
                stats.record(message_size_bits(states[node]))
            new_states: List[object] = [None] * n
            for node in tree.nodes():
                parent = tree.parent[node]
                parent_state = states[parent] if parent is not None else None
                children_states = [states[child] for child in tree.children[node]]
                new_states[node] = algorithm.update(
                    self.infos[node], states[node], parent_state, children_states
                )
            states = new_states
            if collect_outputs():
                return SimulationResult(dict(outputs), rounds, stats, True)
        collect_outputs()
        return SimulationResult(dict(outputs), rounds, stats, False)


def run_algorithm(
    algorithm: StateExchangeAlgorithm,
    tree: RootedTree,
    identifiers: Optional[Sequence[int]] = None,
    delta: int = 2,
    max_rounds: Optional[int] = None,
) -> SimulationResult:
    """Convenience wrapper around :class:`Simulator`."""
    simulator = Simulator(tree, identifiers=identifiers, delta=delta)
    return simulator.run(algorithm, max_rounds=max_rounds)
