"""The rake-and-compress decomposition RCP(p) of Definition 5.8.

``RCP(p)`` iteratively partitions the nodes of a rooted tree into layers
``V_1, V_2, ..., V_L``: in every iteration the current leaves (indegree 0) and
the *long-path nodes* (indegree-1 nodes lying in a connected indegree-1 component
of size at least ``p``) are removed.  Lemma 5.9 shows that a constant fraction of
the nodes disappears per iteration, so ``L = O(log n)``, and Lemma 5.10 shows the
decomposition can be computed distributedly in ``O(log n)`` rounds (each
iteration costs ``O(p)`` rounds, because testing membership in a long path only
requires looking ``p`` hops along the path).

The decomposition is the backbone of the ``O(log n)`` solver of Theorem 5.1.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..trees.rooted_tree import RootedTree


@dataclass
class RakeCompressDecomposition:
    """The output of ``RCP(p)`` on a rooted tree.

    Attributes
    ----------
    p:
        The path-length threshold.
    layer:
        ``layer[v]`` is the iteration (1-based) at which ``v`` was removed.
    kind:
        ``"leaf"`` if the node was removed as a leaf (indegree 0) and ``"path"``
        if it was removed as a long-path node (indegree 1).
    path_components:
        For every layer, the list of maximal compress paths removed in that
        layer; each path is listed from its topmost node to its bottommost node.
    num_layers:
        The number of iterations ``L``.
    rounds:
        The number of LOCAL rounds charged for computing the decomposition
        (``L * (p + 1)`` as in Lemma 5.10).
    """

    p: int
    layer: Dict[int, int]
    kind: Dict[int, str]
    path_components: Dict[int, List[List[int]]]
    num_layers: int
    rounds: int

    def nodes_in_layer(self, layer: int) -> List[int]:
        """All nodes removed in the given layer."""
        return [node for node, value in self.layer.items() if value == layer]

    def leaf_nodes_in_layer(self, layer: int) -> List[int]:
        """The leaf-type nodes of the given layer."""
        return [
            node
            for node, value in self.layer.items()
            if value == layer and self.kind[node] == "leaf"
        ]


def rake_compress_decomposition(tree: RootedTree, p: int) -> RakeCompressDecomposition:
    """Compute ``RCP(p)`` (Definition 5.8) on ``tree``.

    The computation is performed iteration by iteration, exactly as the
    distributed algorithm would: membership of a node in the removal set of an
    iteration only depends on its ``O(p)``-radius neighborhood in the remaining
    graph, so each iteration is charged ``p + 1`` rounds (Lemma 5.10).
    """
    if p < 1:
        raise ValueError("the path threshold p must be at least 1")
    alive = set(tree.nodes())
    alive_children_count: Dict[int, int] = {
        node: len(tree.children[node]) for node in tree.nodes()
    }
    layer: Dict[int, int] = {}
    kind: Dict[int, str] = {}
    path_components: Dict[int, List[List[int]]] = {}
    iteration = 0

    while alive:
        iteration += 1
        leaves = [node for node in alive if alive_children_count[node] == 0]
        degree_one = {node for node in alive if alive_children_count[node] == 1}

        # Connected components of the indegree-1 nodes (connected through tree edges).
        visited: set = set()
        components: List[List[int]] = []
        for node in degree_one:
            if node in visited:
                continue
            # Walk up to the topmost indegree-1 node of this component.
            top = node
            while True:
                parent = tree.parent[top]
                if parent is not None and parent in degree_one and parent not in visited:
                    top = parent
                else:
                    break
            # Walk down collecting the component (each indegree-1 node has exactly
            # one alive child, so the component is a vertical path).
            component: List[int] = []
            current: Optional[int] = top
            while current is not None and current in degree_one and current not in visited:
                visited.add(current)
                component.append(current)
                next_node: Optional[int] = None
                for child in tree.children[current]:
                    if child in alive and child in degree_one:
                        next_node = child
                        break
                current = next_node
            components.append(component)

        long_paths = [component for component in components if len(component) >= p]
        removed: List[int] = list(leaves)
        for component in long_paths:
            removed.extend(component)

        if not removed:
            # Cannot happen on finite trees (there is always a leaf), but guard anyway.
            raise RuntimeError("rake-and-compress made no progress")

        path_components[iteration] = long_paths
        for node in leaves:
            layer[node] = iteration
            kind[node] = "leaf"
        for component in long_paths:
            for node in component:
                layer[node] = iteration
                kind[node] = "path"

        for node in removed:
            alive.discard(node)
            parent = tree.parent[node]
            if parent is not None and parent in alive:
                alive_children_count[parent] -= 1

    return RakeCompressDecomposition(
        p=p,
        layer=layer,
        kind=kind,
        path_components=path_components,
        num_layers=iteration,
        rounds=iteration * (p + 1),
    )
