"""The trivial global solver: gather everything, solve centrally.

In the LOCAL model a node that sees the entire tree can output any valid
labeling; collecting the whole tree takes as many rounds as the tree's height
(the root then broadcasts the solution back down, for another ``height``
rounds).  This realizes the generic ``O(n)`` upper bound of the paper's
``Θ(n^{1/k})`` class with ``k = 1`` and serves as the baseline for every other
solver.  On hairy paths (the hard instances of Section 2.1.1) the height is
``Θ(n)``, matching the lower bound for global problems such as 2-coloring.
"""

from __future__ import annotations

from typing import Optional

from ...core.problem import LCLProblem
from ...labeling.brute_force import greedy_top_down_solve
from ...trees.rooted_tree import RootedTree
from ..rounds import RoundBreakdown
from .base import Solver, SolverError, SolverResult


class GlobalSolver(Solver):
    """Solve any solvable problem by global information gathering."""

    name = "global-gather"

    def __init__(self, problem: LCLProblem):
        super().__init__(problem)
        if not problem.is_solvable():
            raise SolverError(f"problem {problem.name or problem} is unsolvable")

    def solve(self, tree: RootedTree, seed: Optional[int] = None) -> SolverResult:
        labeling = greedy_top_down_solve(self.problem, tree)
        if labeling is None:  # pragma: no cover - guarded by the constructor
            raise SolverError("problem became unsolvable on the given instance")
        height = tree.height()
        breakdown = RoundBreakdown()
        breakdown.add("gather the tree at the root", height)
        breakdown.add("broadcast the solution", height)
        return SolverResult(
            labeling=labeling,
            rounds=breakdown.total,
            breakdown=breakdown,
            solver_name=self.name,
        )
