"""The 4-round maximal-independent-set algorithm of Section 1.3 (Figure 1).

MIS on rooted binary trees — encoded as the LCL problem (3) with labels
``{1, a, b}`` — can be solved in a constant number of rounds: every node collects
the port bits (left = 0, right = 1) of the last four edges on its root-to-leaf
path and outputs the corresponding symbol of the magic 16-character string (4) of
the paper::

    b 1 a b  b b 1 b  b 1 1 b  b b 1 b

The key property is that the 4-bit string of a node's parent is the node's own
string shifted by one position, so the parent/child configurations can be checked
against the 16 possible cases once and for all; nodes above the root are treated
as contributing port bit 0, which keeps the same invariant near the root.

The algorithm runs as a genuine message-passing program in the simulator, so the
reported round count (4 plus one round for learning the ports of the children)
is measured.  This is the paper's flagship example of a problem that is
``O(1)``-round solvable but not zero-round solvable.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Optional, Sequence

from ...core.configuration import Label
from ...core.problem import LCLProblem
from ...problems.catalog import maximal_independent_set
from ...trees.rooted_tree import RootedTree
from ..network import NodeInfo, StateExchangeAlgorithm, run_algorithm
from ..rounds import RoundBreakdown
from .base import Solver, SolverError, SolverResult

#: The 16-symbol output string (4) of the paper, indexed by the 4-bit port string.
MIS_MAGIC_STRING = "b1abbb1bb11bbb1b"

#: Number of port bits each node collects (string length 4 in the paper).
MIS_STRING_LENGTH = 4


@dataclass(frozen=True)
class _MISState:
    round_index: int
    bits: str  # port bits collected so far (top to bottom)


class MISAlgorithm(StateExchangeAlgorithm[_MISState]):
    """The 4-round MIS node program (binary rooted trees)."""

    def initial_state(self, info: NodeInfo) -> _MISState:
        return _MISState(round_index=0, bits="")

    def update(
        self,
        info: NodeInfo,
        state: _MISState,
        parent_state: Optional[_MISState],
        children_states: Sequence[_MISState],
    ) -> _MISState:
        if state.round_index >= MIS_STRING_LENGTH:
            return replace(state, round_index=state.round_index + 1)
        # The parent appends my port bit to its own string and sends it to me;
        # virtual ancestors above the root contribute port bit 0.
        parent_bits = parent_state.bits if parent_state is not None else "0" * state.round_index
        my_bit = "0" if info.port == 0 else "1"
        new_bits = (parent_bits + my_bit)[-MIS_STRING_LENGTH:]
        if parent_state is None:
            # The root's own port bit is 0 by convention (it has no parent edge).
            new_bits = ("0" * (state.round_index + 1))[-MIS_STRING_LENGTH:]
        return _MISState(round_index=state.round_index + 1, bits=new_bits)

    def output(self, info: NodeInfo, state: _MISState) -> Optional[Label]:
        if state.round_index < MIS_STRING_LENGTH:
            return None
        index = int(state.bits.rjust(MIS_STRING_LENGTH, "0"), 2)
        return MIS_MAGIC_STRING[index]


class MISSolver(Solver):
    """Constant-round MIS on rooted binary trees (Section 1.3)."""

    name = "mis-4-rounds"

    def __init__(self, problem: Optional[LCLProblem] = None):
        problem = problem if problem is not None else maximal_independent_set()
        super().__init__(problem)
        if problem.delta != 2:
            raise SolverError("the 4-round MIS algorithm is specific to binary trees")
        reference = maximal_independent_set()
        if not reference.configurations <= problem.configurations:
            raise SolverError("the problem does not contain the MIS configurations of Section 1.3")

    def solve(self, tree: RootedTree, seed: Optional[int] = None) -> SolverResult:
        self._require_full_tree(tree)
        identifiers = tree.default_identifiers(seed)
        result = run_algorithm(
            MISAlgorithm(), tree, identifiers=identifiers, delta=self.problem.delta
        )
        if not result.converged:
            raise SolverError("the MIS algorithm did not converge")
        breakdown = RoundBreakdown()
        breakdown.add("collect the last 4 port bits", result.rounds)
        return SolverResult(
            labeling=dict(result.outputs),
            rounds=breakdown.total,
            breakdown=breakdown,
            solver_name=self.name,
        )


def independent_set_from_labeling(labeling: Dict[int, Label]) -> Dict[int, bool]:
    """Extract the independent-set membership (label ``1``) from an MIS labeling."""
    return {node: label == "1" for node, label in labeling.items()}
