"""Common interface of the distributed solvers.

Every solver takes a rooted tree (a full ``δ``-ary instance) and produces a
labeling together with an itemized round count.  Solvers differ in which
complexity class they realize:

================  =====================================  =======================
Solver            Applicable problems                     Round complexity
================  =====================================  =======================
GlobalSolver      every solvable problem                  ``O(depth) = O(n)``
ColoringSolver    proper ``c``-coloring, ``c >= 3``       ``Θ(log* n)``
MISSolver         maximal independent set (Section 1.3)   ``O(1)``
LogSolver         problems with an O(log n) certificate   ``Θ(log n)``
PolynomialSolver  the family ``Π_k`` of Section 8         ``Θ(n^{1/k})``
================  =====================================  =======================
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Dict, Optional

from ...core.configuration import Label
from ...core.problem import LCLProblem
from ...labeling.verifier import VerificationReport, verify_labeling
from ...trees.rooted_tree import RootedTree
from ..rounds import RoundBreakdown


class SolverError(RuntimeError):
    """Raised when a solver cannot be applied to a problem or instance."""


@dataclass
class SolverResult:
    """A labeling together with the rounds spent producing it."""

    labeling: Dict[int, Label]
    rounds: int
    breakdown: RoundBreakdown = field(default_factory=RoundBreakdown)
    solver_name: str = ""

    def verify(self, problem: LCLProblem, tree: RootedTree) -> VerificationReport:
        """Verify the labeling against the problem on the instance."""
        return verify_labeling(problem, tree, self.labeling)


class Solver(ABC):
    """Base class of the distributed solvers."""

    #: Human readable solver name (used in benchmark reports).
    name: str = "solver"

    def __init__(self, problem: LCLProblem):
        self.problem = problem

    @abstractmethod
    def solve(self, tree: RootedTree, seed: Optional[int] = None) -> SolverResult:
        """Produce a labeling of ``tree`` and account the rounds used."""

    def _require_full_tree(self, tree: RootedTree) -> None:
        """Most solvers assume full ``δ``-ary instances; fail loudly otherwise."""
        if not tree.is_full_delta_ary(self.problem.delta):
            raise SolverError(
                f"{self.name} requires a full {self.problem.delta}-ary tree instance"
            )
