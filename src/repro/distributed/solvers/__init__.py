"""Distributed solvers, one per complexity class of the paper."""

from .base import Solver, SolverError, SolverResult
from .global_solver import GlobalSolver
from .coloring_solver import ColoringSolver
from .mis_solver import MISAlgorithm, MISSolver, MIS_MAGIC_STRING, independent_set_from_labeling
from .log_solver import LogSolver
from .polynomial_solver import PolynomialSolver

__all__ = [
    "ColoringSolver",
    "GlobalSolver",
    "LogSolver",
    "MISAlgorithm",
    "MISSolver",
    "MIS_MAGIC_STRING",
    "PolynomialSolver",
    "Solver",
    "SolverError",
    "SolverResult",
    "independent_set_from_labeling",
]
