"""The ``Θ(n^{1/k})`` solver for the problem family ``Π_k`` of Section 8 (Lemma 8.1).

The solver partitions the nodes into ``2k - 1`` classes
``B_1, X_1, B_2, ..., X_{k-1}, B_k`` such that

* every connected component of ``B_i`` has ``O(n^{1/k})`` nodes (P1),
* every node of ``X_i`` has a child in a lower class (P2),
* children of ``B_i`` nodes are in class ``B_i`` or lower (P3);

``X_i`` nodes are labeled ``x_i`` and each component of ``B_i`` is properly
2-colored with ``{a_i, b_i}``.  The partition is computed in ``k`` sweeps; the
``i``-th sweep only needs to count subtree sizes up to the threshold
``n^{1/k}``, which costs ``O(n^{1/k})`` rounds, and the final 2-coloring of a
component costs rounds proportional to the component's height, which is again
``O(n^{1/k})``.  The reported round count uses these measured quantities.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Set

from ...core.configuration import Label
from ...core.problem import LCLProblem
from ...problems.catalog import pi_k
from ...trees.rooted_tree import RootedTree
from ..rounds import RoundBreakdown
from .base import Solver, SolverError, SolverResult


class PolynomialSolver(Solver):
    """Solver for ``Π_k`` realizing the ``Θ(n^{1/k})`` upper bound (Lemma 8.1)."""

    name = "pi-k-partition"

    def __init__(self, k: int, problem: Optional[LCLProblem] = None):
        if k < 1:
            raise SolverError("k must be at least 1")
        problem = problem if problem is not None else pi_k(k)
        super().__init__(problem)
        self.k = k
        expected = pi_k(k)
        if not expected.configurations <= problem.configurations:
            raise SolverError("the problem does not contain the configurations of Pi_k")

    # ------------------------------------------------------------------
    def solve(self, tree: RootedTree, seed: Optional[int] = None) -> SolverResult:
        n = tree.num_nodes
        threshold = max(1, math.ceil(n ** (1.0 / self.k)))
        remaining: Set[int] = set(tree.nodes())
        class_of: Dict[int, str] = {}
        breakdown = RoundBreakdown()
        max_component_height = 0

        for index in range(1, self.k + 1):
            if not remaining:
                break
            subtree_size = self._subtree_sizes_within(tree, remaining)
            if index == self.k:
                b_nodes = set(remaining)
                x_nodes: Set[int] = set()
            else:
                b_nodes = {node for node in remaining if subtree_size[node] <= threshold}
                x_nodes = set()
                for node in remaining:
                    if subtree_size[node] <= threshold:
                        continue
                    children_in = [
                        child for child in tree.children[node] if child in remaining
                    ]
                    has_small_child = any(
                        subtree_size[child] <= threshold for child in children_in
                    )
                    if has_small_child or len(children_in) <= 1:
                        x_nodes.add(node)
            for node in b_nodes:
                class_of[node] = f"B{index}"
            for node in x_nodes:
                class_of[node] = f"X{index}"
            remaining -= b_nodes | x_nodes
            breakdown.add(f"sweep {index}: count subtree sizes up to n^(1/k)", threshold + 1)
            component_height = self._max_component_height(tree, b_nodes)
            max_component_height = max(max_component_height, component_height)

        if remaining:
            raise SolverError("the partition did not cover all nodes; instance too irregular")

        labeling = self._label_from_partition(tree, class_of)
        breakdown.add("2-color the B components", max_component_height + 1)
        return SolverResult(
            labeling=labeling,
            rounds=breakdown.total,
            breakdown=breakdown,
            solver_name=self.name,
        )

    # ------------------------------------------------------------------
    def _subtree_sizes_within(self, tree: RootedTree, remaining: Set[int]) -> Dict[int, int]:
        """Subtree sizes in the forest induced by ``remaining``.

        The bottom-up order guarantees that every node is processed after all of
        its children, so a single accumulation pass suffices.
        """
        sizes: Dict[int, int] = {node: 1 for node in remaining}
        for node in tree.topological_bottom_up():
            if node not in remaining:
                continue
            parent = tree.parent[node]
            if parent is not None and parent in remaining:
                sizes[parent] += sizes[node]
        return sizes

    def _max_component_height(self, tree: RootedTree, nodes: Set[int]) -> int:
        """The maximum height of a connected component of ``nodes``."""
        height: Dict[int, int] = {node: 0 for node in nodes}
        best = 0
        for node in tree.topological_bottom_up():
            if node not in nodes:
                continue
            parent = tree.parent[node]
            if parent is not None and parent in nodes:
                height[parent] = max(height[parent], height[node] + 1)
            best = max(best, height[node])
        return best

    def _label_from_partition(
        self, tree: RootedTree, class_of: Dict[int, str]
    ) -> Dict[int, Label]:
        """Assign ``x_i`` to ``X_i`` nodes and 2-color the components of each ``B_i``."""
        labeling: Dict[int, Label] = {}
        parity: Dict[int, int] = {}
        for node in tree.bfs_order():
            cls = class_of[node]
            index = int(cls[1:])
            if cls.startswith("X"):
                labeling[node] = f"x{index}"
                continue
            parent = tree.parent[node]
            if parent is not None and class_of.get(parent) == cls:
                parity[node] = 1 - parity[parent]
            else:
                parity[node] = 0
            labeling[node] = f"a{index}" if parity[node] == 0 else f"b{index}"
        return labeling
