"""The ``O(log n)`` rake-and-compress solver of Theorem 5.1.

Given a problem with a certificate for ``O(log n)`` solvability — a restriction
``Π_pf`` whose automaton is strongly connected with every label flexible — the
solver labels any full ``δ``-ary tree as follows:

1. compute the rake-and-compress decomposition ``RCP(k)`` with
   ``k = max flexibility + |Σ(Π_pf)|`` (Definition 5.8, Lemma 5.10);
2. process the layers from the last one (containing the root) down to the first
   one; leaf-type nodes are completed using a continuation below, compress paths
   are completed by walks of the prescribed length in the automaton
   ``M(Π_pf)`` — such walks exist between any two certificate labels because
   every label is flexible and the automaton is strongly connected (Lemma 5.5).

Round accounting follows the paper's analysis: ``O(log n)`` rounds for the
decomposition (measured number of layers times ``k + 1``), ``O(log* n)`` rounds
for the distance coloring used to split long compress paths into constant-length
chunks, and a constant number of rounds per layer.  The labels assigned inside a
compress path are computed here with a single exact-length walk per path rather
than per chunk — the resulting labeling is equally valid and the round count is
unaffected; see DESIGN.md ("Substitutions").
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ...automata.semiautomaton import PathAutomaton
from ...core.configuration import Configuration, Label
from ...core.log_certificate import LogCertificate, find_log_certificate
from ...core.problem import LCLProblem
from ...trees.rooted_tree import RootedTree
from ..rake_compress import RakeCompressDecomposition, rake_compress_decomposition
from ..rounds import RoundBreakdown, log_star
from .base import Solver, SolverError, SolverResult


class LogSolver(Solver):
    """Certificate-driven ``O(log n)`` solver (Theorem 5.1)."""

    name = "rake-and-compress"

    def __init__(self, problem: LCLProblem, certificate: Optional[LogCertificate] = None):
        super().__init__(problem)
        if certificate is None:
            outcome = find_log_certificate(problem)
            if not isinstance(outcome, LogCertificate):
                raise SolverError(
                    f"problem {problem.name or problem} has no certificate for O(log n) solvability"
                )
            certificate = outcome
        self.certificate = certificate
        self.pf_problem = certificate.certificate_problem
        self.automaton: PathAutomaton = certificate.automaton()
        # Minimum compress-path length so that exact-length walks always exist.
        self.k = max(2, certificate.rake_compress_parameter())
        self._default_label = min(self.pf_problem.labels)

    # ------------------------------------------------------------------
    def solve(self, tree: RootedTree, seed: Optional[int] = None) -> SolverResult:
        self._require_full_tree(tree)
        decomposition = rake_compress_decomposition(tree, self.k)
        labeling: Dict[int, Label] = {}

        for layer in range(decomposition.num_layers, 0, -1):
            self._process_leaf_nodes(tree, decomposition, layer, labeling)
            self._process_paths(tree, decomposition, layer, labeling)

        breakdown = RoundBreakdown()
        breakdown.add("rake-and-compress decomposition (RCP(k))", decomposition.rounds)
        breakdown.add(
            "distance-k coloring for splitting compress paths",
            2 * log_star(tree.num_nodes) + 6,
        )
        breakdown.add(
            "per-layer completion (constant rounds per layer)",
            decomposition.num_layers * (3 * (self.k + 2)),
        )
        return SolverResult(
            labeling=labeling,
            rounds=breakdown.total,
            breakdown=breakdown,
            solver_name=self.name,
        )

    # ------------------------------------------------------------------
    def _assign_configuration(
        self,
        tree: RootedTree,
        node: int,
        labeling: Dict[int, Label],
        required_child: Optional[int] = None,
        required_label: Optional[Label] = None,
    ) -> None:
        """Fix the configuration of ``node``: label all of its children.

        When ``required_child`` already carries (or must carry) ``required_label``
        the chosen configuration is forced to contain that label, and the
        remaining children receive the other labels of the configuration.
        """
        label = labeling[node]
        children = tree.children[node]
        if not children:
            return
        if required_child is None:
            config = self.pf_problem.continuation_of(label, self.pf_problem.labels)
            if config is None:
                raise SolverError(f"label {label!r} has no continuation below in the certificate")
            remaining = list(config.children)
            for child in children:
                if child in labeling:
                    # Keep already-assigned labels when they match one of the slots.
                    if labeling[child] in remaining:
                        remaining.remove(labeling[child])
                    continue
            for child in children:
                if child not in labeling:
                    labeling[child] = remaining.pop(0)
            return
        # A specific child label is required.
        candidates = [
            config
            for config in self.pf_problem.configurations_of(label)
            if required_label in config.children
        ]
        if not candidates:
            raise SolverError(
                f"no configuration of {label!r} contains the required child label {required_label!r}"
            )
        config = min(candidates)
        remaining = list(config.children)
        remaining.remove(required_label)  # type: ignore[arg-type]
        labeling[required_child] = required_label  # type: ignore[assignment]
        for child in children:
            if child == required_child:
                continue
            labeling[child] = remaining.pop(0)

    def _process_leaf_nodes(
        self,
        tree: RootedTree,
        decomposition: RakeCompressDecomposition,
        layer: int,
        labeling: Dict[int, Label],
    ) -> None:
        for node in sorted(decomposition.leaf_nodes_in_layer(layer)):
            if node not in labeling:
                labeling[node] = self._default_label
            self._assign_configuration(tree, node, labeling)

    def _process_paths(
        self,
        tree: RootedTree,
        decomposition: RakeCompressDecomposition,
        layer: int,
        labeling: Dict[int, Label],
    ) -> None:
        for path in decomposition.path_components.get(layer, []):
            self._complete_path(tree, path, labeling)

    def _complete_path(
        self, tree: RootedTree, path: List[int], labeling: Dict[int, Label]
    ) -> None:
        """Complete a compress path ``v_1 (top) ... v_m (bottom)`` and its children."""
        top = path[0]
        bottom = path[-1]
        if top not in labeling:
            labeling[top] = self._default_label
        # The bottom node keeps exactly one child that survived to a later
        # iteration (or was a leaf-type node of the same layer); it is already
        # labeled and pins the end of the walk.
        anchored_child: Optional[int] = None
        for child in tree.children[bottom]:
            if child in labeling:
                anchored_child = child
                break
        source = labeling[top]
        if anchored_child is not None:
            target = labeling[anchored_child]
            length = len(path)  # edges v_1->v_2, ..., v_m->anchored_child
            walk = self.automaton.find_walk(source, target, length)
            if walk is None:
                raise SolverError(
                    f"no walk of length {length} from {source!r} to {target!r}; "
                    "the compress path is shorter than the flexibility threshold"
                )
        else:
            # No anchored child below (can only happen next to the boundary of the
            # tree); extend by an arbitrary continuation walk.
            length = len(path) - 1
            walk = [source]
            current = source
            for _ in range(length):
                config = self.pf_problem.continuation_of(current, self.pf_problem.labels)
                if config is None:
                    raise SolverError(f"label {current!r} has no continuation below")
                current = config.children[0]
                walk.append(current)
            walk.append(current)

        # walk[j] is the label of path[j]; the final entry is the anchored child's label.
        for position, node in enumerate(path):
            labeling[node] = walk[position]
        for position, node in enumerate(path):
            if position + 1 < len(path):
                required_child = path[position + 1]
                required_label = walk[position + 1]
            elif anchored_child is not None:
                required_child = anchored_child
                required_label = walk[len(path)]
            else:
                required_child = None
                required_label = None
            if required_child is None:
                self._assign_configuration(tree, node, labeling)
            else:
                self._assign_configuration(
                    tree, node, labeling, required_child=required_child, required_label=required_label
                )
