"""``Θ(log* n)`` solver for the coloring problems of Section 1.2.

Proper ``c``-coloring with ``c >= 3`` colors is the canonical ``Θ(log* n)``
problem in rooted trees; it is solved by the Cole–Vishkin / Goldberg–Plotkin–
Shannon 3-coloring algorithm (a 3-coloring is in particular a valid
``c``-coloring for every ``c >= 3``).  The algorithm runs as a genuine
message-passing program in the simulator, so the reported round count is
measured, not estimated.
"""

from __future__ import annotations

from typing import Optional

from ...core.problem import LCLProblem
from ...trees.rooted_tree import RootedTree
from ..coloring import three_color_tree
from ..rounds import RoundBreakdown
from .base import Solver, SolverError, SolverResult


class ColoringSolver(Solver):
    """Distributed proper coloring of rooted trees with at least three colors."""

    name = "cole-vishkin-coloring"

    def __init__(self, problem: LCLProblem):
        super().__init__(problem)
        self.num_colors = len(problem.labels)
        if self.num_colors < 3:
            raise SolverError("the Cole-Vishkin solver needs at least three colors")
        self._color_labels = sorted(problem.labels)[:3]
        # Sanity check: the problem must allow any proper coloring with the three
        # chosen labels (true for the coloring problems of the catalog).
        for parent in self._color_labels:
            for first in self._color_labels:
                for second in self._color_labels:
                    if parent in (first, second):
                        continue
                    children = tuple(sorted([first] + [second] * (problem.delta - 1)))
                    if not problem.has_configuration(parent, children):
                        raise SolverError(
                            "the problem does not allow all proper colorings with "
                            f"labels {self._color_labels}"
                        )

    def solve(self, tree: RootedTree, seed: Optional[int] = None) -> SolverResult:
        self._require_full_tree(tree)
        identifiers = tree.default_identifiers(seed)
        colors, rounds = three_color_tree(tree, identifiers, delta=self.problem.delta)
        labeling = {node: self._color_labels[color] for node, color in colors.items()}
        breakdown = RoundBreakdown()
        breakdown.add("Cole-Vishkin color reduction + shift-down", rounds)
        return SolverResult(
            labeling=labeling,
            rounds=breakdown.total,
            breakdown=breakdown,
            solver_name=self.name,
        )
