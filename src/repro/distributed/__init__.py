"""Distributed substrate: the LOCAL/CONGEST simulator and the certificate-driven solvers."""

from .network import NodeInfo, SimulationResult, Simulator, StateExchangeAlgorithm, run_algorithm
from .rounds import MessageStats, RoundBreakdown, log_star, message_size_bits
from .coloring import (
    TreeColoringAlgorithm,
    cole_vishkin_iterations,
    cole_vishkin_step,
    three_color_tree,
    verify_proper_coloring,
)
from .rake_compress import RakeCompressDecomposition, rake_compress_decomposition
from .solvers import (
    ColoringSolver,
    GlobalSolver,
    LogSolver,
    MISAlgorithm,
    MISSolver,
    PolynomialSolver,
    Solver,
    SolverError,
    SolverResult,
)

__all__ = [
    "ColoringSolver",
    "GlobalSolver",
    "LogSolver",
    "MISAlgorithm",
    "MISSolver",
    "MessageStats",
    "NodeInfo",
    "PolynomialSolver",
    "RakeCompressDecomposition",
    "RoundBreakdown",
    "SimulationResult",
    "Simulator",
    "Solver",
    "SolverError",
    "SolverResult",
    "StateExchangeAlgorithm",
    "TreeColoringAlgorithm",
    "cole_vishkin_iterations",
    "cole_vishkin_step",
    "log_star",
    "message_size_bits",
    "rake_compress_decomposition",
    "run_algorithm",
    "three_color_tree",
    "verify_proper_coloring",
]
