"""Distributed coloring of rooted trees in ``O(log* n)`` rounds.

This module implements the classic Cole–Vishkin / Goldberg–Plotkin–Shannon
algorithm for 3-coloring rooted trees, written as a genuine state-exchange
algorithm for the simulator of :mod:`repro.distributed.network`:

1. *Cole–Vishkin phase*: starting from the unique identifiers, every node
   repeatedly replaces its color by the position of the lowest bit in which it
   differs from its parent's color together with its own bit value.  After
   ``O(log* n)`` rounds the colors live in ``{0, ..., 5}`` and every node still
   differs from its parent.
2. *Shift-down + recolor phase*: for each color ``c ∈ {5, 4, 3}`` the coloring is
   shifted down (each node adopts its parent's color, which makes all siblings
   agree) and the nodes of color ``c`` pick a free color in ``{0, 1, 2}``.

The result is a proper 3-coloring of the tree (every node differs from its
parent and all its children), which is exactly a solution of the ``c``-coloring
LCL problems of Section 1.2 for every ``c >= 3``.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.configuration import Label
from ..trees.rooted_tree import RootedTree
from .network import NodeInfo, SimulationResult, StateExchangeAlgorithm, run_algorithm


def cole_vishkin_step(color: int, parent_color: int) -> int:
    """One Cole–Vishkin reduction step: encode the lowest differing bit position and value."""
    if color == parent_color:
        raise ValueError("Cole-Vishkin requires the colors of parent and child to differ")
    difference = color ^ parent_color
    index = (difference & -difference).bit_length() - 1
    bit = (color >> index) & 1
    return 2 * index + bit


def cole_vishkin_iterations(max_identifier: int) -> int:
    """The number of Cole–Vishkin iterations needed to reach colors in ``{0, ..., 5}``."""
    bits = max(3, int(max_identifier).bit_length())
    iterations = 0
    # Each step maps b-bit colors to colors < 2 * b; iterate until 3 bits (6 colors).
    current = 1 << bits
    while current > 6:
        bits = max(1, (current - 1).bit_length())
        current = 2 * bits
        iterations += 1
        if iterations > 64:  # pragma: no cover - defensive
            break
    return iterations + 1


@dataclass(frozen=True)
class _ColoringState:
    round_index: int
    color: int
    done: bool = False


class TreeColoringAlgorithm(StateExchangeAlgorithm[_ColoringState]):
    """Distributed 3-coloring of a rooted tree (Cole–Vishkin + shift-down)."""

    def __init__(self, max_identifier: int):
        self.cv_rounds = cole_vishkin_iterations(max_identifier)
        # Three (shift-down, recolor) pairs eliminate the colors 5, 4 and 3.
        self.total_rounds = self.cv_rounds + 6

    # ------------------------------------------------------------------
    def initial_state(self, info: NodeInfo) -> _ColoringState:
        return _ColoringState(round_index=0, color=info.identifier)

    def _virtual_parent_color(self, color: int) -> int:
        """A deterministic color differing from ``color`` (used by the root)."""
        return color ^ 1

    def update(
        self,
        info: NodeInfo,
        state: _ColoringState,
        parent_state: Optional[_ColoringState],
        children_states: Sequence[_ColoringState],
    ) -> _ColoringState:
        round_index = state.round_index + 1
        if state.done:
            return replace(state, round_index=round_index)
        color = state.color
        parent_color = (
            parent_state.color if parent_state is not None else self._virtual_parent_color(color)
        )
        if round_index <= self.cv_rounds:
            new_color = cole_vishkin_step(color, parent_color)
            return _ColoringState(round_index, new_color)
        # Shift-down / recolor phase.
        phase = round_index - self.cv_rounds  # 1..6
        eliminate = {1: 5, 2: 5, 3: 4, 4: 4, 5: 3, 6: 3}[phase]
        if phase % 2 == 1:
            # Shift down: adopt the parent's color; the root picks a fresh color.
            if parent_state is not None:
                new_color = parent_state.color
            else:
                new_color = min(c for c in range(6) if c != color)
            return _ColoringState(round_index, new_color)
        # Recolor the nodes whose color equals ``eliminate``.
        if color == eliminate:
            forbidden = set()
            if parent_state is not None:
                forbidden.add(parent_state.color)
            forbidden.update(child.color for child in children_states)
            new_color = min(c for c in range(3) if c not in forbidden)
        else:
            new_color = color
        done = round_index >= self.total_rounds
        return _ColoringState(round_index, new_color, done=done)

    def output(self, info: NodeInfo, state: _ColoringState) -> Optional[Label]:
        if not state.done:
            return None
        return str(state.color + 1)


def three_color_tree(
    tree: RootedTree, identifiers: Optional[Sequence[int]] = None, delta: int = 2
) -> Tuple[Dict[int, int], int]:
    """Compute a proper 3-coloring of ``tree`` distributedly.

    Returns a mapping ``node -> color`` with colors in ``{0, 1, 2}`` and the
    number of communication rounds used.
    """
    ids = list(identifiers) if identifiers is not None else tree.default_identifiers()
    algorithm = TreeColoringAlgorithm(max_identifier=max(ids))
    result = run_algorithm(algorithm, tree, identifiers=ids, delta=delta)
    if not result.converged:
        raise RuntimeError("tree coloring did not converge")
    colors = {node: int(label) - 1 for node, label in result.outputs.items()}
    return colors, result.rounds


def verify_proper_coloring(tree: RootedTree, colors: Dict[int, int]) -> bool:
    """Whether ``colors`` is a proper coloring of the tree (every child differs from its parent)."""
    for node in tree.nodes():
        parent = tree.parent[node]
        if parent is not None and colors[node] == colors[parent]:
            return False
    return True
