"""Round accounting for the distributed algorithms.

The paper analyses algorithms in the LOCAL and CONGEST models, where the cost of
an algorithm is the number of synchronous communication rounds.  Simple
algorithms in this package (Cole–Vishkin coloring, rake-and-compress, the 4-round
MIS algorithm) are executed round by round in the simulator, so their round
counts are measured directly.  The more intricate certificate-driven solvers are
executed as locality-respecting centralized procedures; their round counts are
*derived* from measured quantities (number of decomposition layers, chunk
lengths, iterated-log values) exactly as in the paper's analysis, and every
contribution is itemized in a :class:`RoundBreakdown` so that the accounting is
transparent.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Tuple


def log_star(n: float) -> int:
    """The iterated logarithm ``log* n`` (base 2), with ``log*(x) = 0`` for ``x <= 1``."""
    count = 0
    value = float(n)
    while value > 1.0:
        value = math.log2(value)
        count += 1
    return count


@dataclass
class RoundBreakdown:
    """An itemized account of the rounds spent by an algorithm."""

    items: List[Tuple[str, int]] = field(default_factory=list)

    def add(self, phase: str, rounds: int) -> None:
        """Record ``rounds`` rounds spent in ``phase``."""
        if rounds < 0:
            raise ValueError("rounds must be non-negative")
        self.items.append((phase, rounds))

    @property
    def total(self) -> int:
        """Total number of rounds across all phases."""
        return sum(rounds for _, rounds in self.items)

    def as_dict(self) -> Dict[str, int]:
        """Aggregate the breakdown per phase name."""
        aggregated: Dict[str, int] = {}
        for phase, rounds in self.items:
            aggregated[phase] = aggregated.get(phase, 0) + rounds
        return aggregated

    def describe(self) -> str:
        """Human readable multi-line description."""
        lines = [f"  {phase}: {rounds}" for phase, rounds in self.items]
        lines.append(f"  total: {self.total}")
        return "\n".join(lines)


@dataclass
class MessageStats:
    """Message-size statistics for CONGEST accounting.

    CONGEST restricts messages to ``O(log n)`` bits per round per edge.  The
    simulator records the largest message (in bits) sent by any node so that the
    CONGEST feasibility of an algorithm can be checked against the bound
    ``congest_budget_bits``.
    """

    max_message_bits: int = 0
    total_messages: int = 0
    congest_budget_bits: int = 0

    def record(self, bits: int) -> None:
        """Record a message of the given size."""
        self.total_messages += 1
        if bits > self.max_message_bits:
            self.max_message_bits = bits

    def fits_congest(self, slack: int = 8) -> bool:
        """Whether all messages fit in ``slack * log2(n)`` bits."""
        if self.congest_budget_bits <= 0:
            return True
        return self.max_message_bits <= slack * self.congest_budget_bits


def message_size_bits(message: object) -> int:
    """A conservative estimate of the number of bits needed to encode ``message``."""
    if message is None:
        return 0
    if isinstance(message, bool):
        return 1
    if isinstance(message, int):
        return max(1, message.bit_length())
    if isinstance(message, str):
        return 8 * len(message)
    if isinstance(message, (tuple, list, frozenset, set)):
        return sum(message_size_bits(item) for item in message) + len(message)  # type: ignore[arg-type]
    if isinstance(message, dict):
        return sum(
            message_size_bits(key) + message_size_bits(value) for key, value in message.items()
        )
    return 64
