"""Single-file JSON cache backend (schema 2) — today's on-disk format.

Selected by bare cache paths and ``json:`` URLs.  The file layout is exactly
the PR-1/PR-4 format, so existing cache files keep working unchanged::

    {"schema": 2, "entries": [[key, result_dict], ...]}   # LRU order
    {"schema": 1, "entries": {key: result_dict}}          # legacy, load-only

This module also owns the schema-2 *interchange* helpers used by
``repro cache export`` / ``import``: every snapshot — whether written by this
backend or exported from sqlite — goes through :func:`dump_snapshot_text`, so
exports are byte-identical across backends (stable key order, no indent).

Durability note (the PR-9 bugfix): snapshot writes land in a **unique**
temp file from ``tempfile.mkstemp`` in the target directory and are moved
into place with ``os.replace``.  The previous fixed ``{path}.tmp`` name meant
two *processes* sharing one cache path (a CLI ``warm`` racing ``repro
serve``) interleaved writes into one temp file and corrupted the store; a
per-writer temp name makes the last atomic rename win instead.
"""

from __future__ import annotations

import json
import os
import tempfile
from typing import Any, Callable, Dict, List, Sequence, Tuple

from .base import CacheBackend, CacheCorruptionError, CacheRow

CACHE_SCHEMA_VERSION = 2
SUPPORTED_SCHEMA_VERSIONS = (1, 2)


def parse_snapshot_payload(
    payload: Any, source: str
) -> List[Tuple[str, Dict[str, Any]]]:
    """Validate a decoded schema-1/2 document into ``(key, entry)`` pairs.

    Pairs come back least recently used first (schema-1 object order stands
    in for recency).  Unknown schema versions and malformed entries raise
    :class:`ValueError` — these are *structural* errors, never quarantined.
    """
    if not isinstance(payload, dict):
        raise ValueError(f"malformed cache document in {source}")
    schema = payload.get("schema")
    if schema not in SUPPORTED_SCHEMA_VERSIONS:
        raise ValueError(
            f"unsupported cache schema {schema!r} in {source}"
            f" (expected one of {SUPPORTED_SCHEMA_VERSIONS})"
        )
    raw_entries = payload.get("entries", {} if schema == 1 else [])
    if schema == 1:
        if not isinstance(raw_entries, dict):
            raise ValueError(f"malformed schema-1 entries in {source}")
        pairs = list(raw_entries.items())
    else:
        if not isinstance(raw_entries, list):
            raise ValueError(f"malformed schema-2 entries in {source}")
        pairs = []
        for pair in raw_entries:
            if not (isinstance(pair, list) and len(pair) == 2):
                raise ValueError(f"malformed schema-2 entry pair in {source}")
            pairs.append((pair[0], pair[1]))
    for key, entry in pairs:
        if not isinstance(entry, dict) or "complexity" not in entry:
            raise ValueError(f"malformed cache entry {key!r} in {source}")
    return pairs


def parse_snapshot_text(text: str, source: str) -> List[Tuple[str, Dict[str, Any]]]:
    """Decode + validate snapshot ``text``; truncation raises corruption."""
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as error:
        raise CacheCorruptionError(
            f"corrupt cache file {source}: {error}"
        ) from error
    return parse_snapshot_payload(payload, source)


def dump_snapshot_text(pairs: Sequence[Tuple[str, Dict[str, Any]]]) -> str:
    """Render ``(key, entry)`` pairs as the canonical schema-2 document.

    The byte format (compact separators via ``indent=None``, sorted keys) is
    shared by the json backend and ``repro cache export`` so that snapshots
    of equal content are equal bytes regardless of originating backend.
    """
    payload = {
        "schema": CACHE_SCHEMA_VERSION,
        "entries": [[key, entry] for key, entry in pairs],
    }
    return json.dumps(payload, indent=None, sort_keys=True)


class JsonFileBackend(CacheBackend):
    """Atomic whole-file JSON persistence (the compatible default)."""

    name = "json"
    persistent = True
    partial_flush = False

    def __init__(self, location: str) -> None:
        super().__init__(location=location)

    def load(self) -> List[CacheRow]:
        try:
            with open(self.location, "r", encoding="utf-8") as handle:
                text = handle.read()
        except UnicodeDecodeError as error:
            raise CacheCorruptionError(
                f"corrupt cache file {self.location}: {error}"
            ) from error
        pairs = parse_snapshot_text(text, self.location)
        return [(key, entry, None) for key, entry in pairs]

    def write_snapshot(
        self, rows: Sequence[CacheRow], deletes: Sequence[str] = ()
    ) -> int:
        directory = os.path.dirname(os.path.abspath(self.location))
        os.makedirs(directory, exist_ok=True)
        text = dump_snapshot_text([(key, entry) for key, entry, _ in rows])
        # Unique per-writer temp name: concurrent savers from *different
        # processes* must not share a temp path (see module docstring).
        fd, tmp_path = tempfile.mkstemp(
            prefix=f".{os.path.basename(self.location)}.", dir=directory
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write(text)
            os.replace(tmp_path, self.location)
        except BaseException:
            try:
                os.unlink(tmp_path)
            except OSError:
                pass
            raise
        return len(rows)

    def flush(
        self,
        upserts: Sequence[CacheRow],
        deletes: Sequence[str],
        snapshot: Callable[[], Sequence[CacheRow]],
    ) -> int:
        # A single JSON document cannot be updated in place: every flush is
        # a full snapshot rewrite (the cost the sqlite backend avoids).
        return self.write_snapshot(snapshot())
