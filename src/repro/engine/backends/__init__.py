"""Pluggable durable-storage backends for the classification cache.

See :mod:`repro.engine.backends.base` for the protocol and the cache-URL
syntax (``memory:``, ``json:path``, ``sqlite:path``, bare path -> json).
"""

from .base import (
    BACKEND_ENV_VAR,
    CACHE_SCHEMES,
    CacheBackend,
    CacheCorruptionError,
    CacheRow,
    create_backend,
    parse_cache_url,
)
from .json_file import (
    CACHE_SCHEMA_VERSION,
    SUPPORTED_SCHEMA_VERSIONS,
    JsonFileBackend,
    dump_snapshot_text,
    parse_snapshot_payload,
    parse_snapshot_text,
)
from .memory import MemoryBackend
from .sqlite_wal import SqliteWalBackend

__all__ = [
    "BACKEND_ENV_VAR",
    "CACHE_SCHEMES",
    "CACHE_SCHEMA_VERSION",
    "SUPPORTED_SCHEMA_VERSIONS",
    "CacheBackend",
    "CacheCorruptionError",
    "CacheRow",
    "JsonFileBackend",
    "MemoryBackend",
    "SqliteWalBackend",
    "create_backend",
    "dump_snapshot_text",
    "parse_cache_url",
    "parse_snapshot_payload",
    "parse_snapshot_text",
]
