"""SQLite (WAL-mode) cache backend: one row per entry, partial flushes.

Selected by ``sqlite:results.db`` cache URLs.  This is the tier that removes
the JSON backend's two scaling ceilings named in ROADMAP.md:

* **Full-file rewrites** — each write-behind flush upserts only the dirty
  rows inside one ``BEGIN IMMEDIATE`` transaction, so per-store persistence
  cost is independent of cache size (``partial_flush = True``).
* **One writer** — WAL journal mode plus a busy timeout make concurrent
  writers from multiple processes on one host safe: writers queue on the
  database lock instead of clobbering each other, and readers never block.

Layout::

    cache_entries(key TEXT PRIMARY KEY, payload TEXT, recency INTEGER,
                  stored_at REAL)
    cache_meta(key TEXT PRIMARY KEY, value TEXT)   -- 'schema' = '2'

``payload`` holds the serialized result dict as compact JSON; ``recency`` is
a monotonically increasing counter (re-seeded from ``MAX(recency)`` inside
each write transaction, so interleaved processes stay roughly globally
ordered); ``stored_at`` feeds TTL expiry across restarts.  LRU order is
recovered on load by ``ORDER BY recency``.

Multi-process semantics: incremental flushes and snapshot saves only ever
upsert their own rows and delete keys *they* evicted — they never clear the
table — so two services sharing one database merge their entries instead of
overwriting each other.  ``compact()`` is the explicit single-writer full
rewrite (clears the table, re-inserts, ``VACUUM`` + WAL checkpoint).
"""

from __future__ import annotations

import json
import os
import sqlite3
import time
from typing import Callable, List, Optional, Sequence

from .base import CacheBackend, CacheCorruptionError, CacheRow
from .json_file import CACHE_SCHEMA_VERSION, SUPPORTED_SCHEMA_VERSIONS

#: Seconds a writer waits on the database lock before giving up.
BUSY_TIMEOUT_SECONDS = 10.0


class SqliteWalBackend(CacheBackend):
    """Per-entry durable storage in a WAL-mode SQLite database."""

    name = "sqlite"
    persistent = True
    partial_flush = True

    def __init__(self, location: str) -> None:
        super().__init__(location=location)
        self._conn: Optional[sqlite3.Connection] = None

    # -- connection management -----------------------------------------
    def _connection(self) -> sqlite3.Connection:
        if self._conn is not None:
            return self._conn
        directory = os.path.dirname(os.path.abspath(self.location))
        os.makedirs(directory, exist_ok=True)
        # isolation_level=None -> autocommit; transactions are explicit
        # (BEGIN IMMEDIATE) so VACUUM can run outside any transaction.
        # check_same_thread=False: the owning cache serializes access via
        # its I/O lock, but calls may come from the write-behind flusher
        # thread as well as request threads.
        conn = sqlite3.connect(
            self.location,
            timeout=BUSY_TIMEOUT_SECONDS,
            check_same_thread=False,
            isolation_level=None,
        )
        try:
            conn.execute("PRAGMA journal_mode=WAL")
            conn.execute("PRAGMA synchronous=NORMAL")
            conn.execute(
                "CREATE TABLE IF NOT EXISTS cache_entries ("
                " key TEXT PRIMARY KEY,"
                " payload TEXT NOT NULL,"
                " recency INTEGER NOT NULL,"
                " stored_at REAL NOT NULL)"
            )
            conn.execute(
                "CREATE INDEX IF NOT EXISTS cache_entries_recency"
                " ON cache_entries (recency)"
            )
            conn.execute(
                "CREATE TABLE IF NOT EXISTS cache_meta ("
                " key TEXT PRIMARY KEY, value TEXT NOT NULL)"
            )
            row = conn.execute(
                "SELECT value FROM cache_meta WHERE key = 'schema'"
            ).fetchone()
            if row is None:
                conn.execute(
                    "INSERT OR REPLACE INTO cache_meta (key, value)"
                    " VALUES ('schema', ?)",
                    (str(CACHE_SCHEMA_VERSION),),
                )
            elif row[0] not in {str(v) for v in SUPPORTED_SCHEMA_VERSIONS}:
                conn.close()
                raise ValueError(
                    f"unsupported cache schema {row[0]!r} in {self.location}"
                    f" (expected one of {SUPPORTED_SCHEMA_VERSIONS})"
                )
        except sqlite3.DatabaseError as error:
            conn.close()
            raise self._translate(error) from error
        self._conn = conn
        return conn

    def _translate(self, error: sqlite3.DatabaseError) -> Exception:
        message = str(error)
        if isinstance(error, sqlite3.OperationalError) and (
            "locked" in message or "busy" in message
        ):
            return OSError(f"cache database {self.location} is busy: {message}")
        return CacheCorruptionError(
            f"corrupt cache database {self.location}: {message}"
        )

    def _sidecar_paths(self) -> tuple:
        return (f"{self.location}-wal", f"{self.location}-shm")

    def close(self) -> None:
        if self._conn is not None:
            try:
                self._conn.close()
            finally:
                self._conn = None

    # -- durable I/O ---------------------------------------------------
    def load(self) -> List[CacheRow]:
        try:
            conn = self._connection()
            raw = conn.execute(
                "SELECT key, payload, stored_at FROM cache_entries"
                " ORDER BY recency ASC, rowid ASC"
            ).fetchall()
        except sqlite3.DatabaseError as error:
            raise self._translate(error) from error
        rows: List[CacheRow] = []
        for key, text, stored_at in raw:
            try:
                entry = json.loads(text)
            except json.JSONDecodeError as error:
                raise ValueError(
                    f"malformed cache entry {key!r} in {self.location}: {error}"
                ) from error
            if not isinstance(entry, dict) or "complexity" not in entry:
                raise ValueError(
                    f"malformed cache entry {key!r} in {self.location}"
                )
            rows.append((key, entry, stored_at))
        return rows

    def _next_recency(self, conn: sqlite3.Connection) -> int:
        row = conn.execute(
            "SELECT COALESCE(MAX(recency), 0) FROM cache_entries"
        ).fetchone()
        return int(row[0]) + 1

    def _upsert_rows(
        self, conn: sqlite3.Connection, rows: Sequence[CacheRow]
    ) -> None:
        base = self._next_recency(conn)
        now = time.time()
        conn.executemany(
            "INSERT INTO cache_entries (key, payload, recency, stored_at)"
            " VALUES (?, ?, ?, ?)"
            " ON CONFLICT(key) DO UPDATE SET payload = excluded.payload,"
            " recency = excluded.recency, stored_at = excluded.stored_at",
            [
                (
                    key,
                    json.dumps(entry, indent=None, sort_keys=True),
                    base + offset,
                    stored_at if stored_at is not None else now,
                )
                for offset, (key, entry, stored_at) in enumerate(rows)
            ],
        )

    def write_snapshot(
        self, rows: Sequence[CacheRow], deletes: Sequence[str] = ()
    ) -> int:
        conn = self._connection()
        try:
            conn.execute("BEGIN IMMEDIATE")
            self._upsert_rows(conn, rows)
            if deletes:
                conn.executemany(
                    "DELETE FROM cache_entries WHERE key = ?",
                    [(key,) for key in deletes],
                )
            conn.execute("COMMIT")
        except sqlite3.DatabaseError as error:
            conn.execute("ROLLBACK")
            raise self._translate(error) from error
        return len(rows)

    def flush(
        self,
        upserts: Sequence[CacheRow],
        deletes: Sequence[str],
        snapshot: Callable[[], Sequence[CacheRow]],
    ) -> int:
        # Partial write: only the dirty rows and tracked deletions — never
        # the full snapshot.  This is the sublinear-per-store property the
        # perf-smoke gate asserts.
        return self.write_snapshot(upserts, deletes)

    def compact(self, rows: Sequence[CacheRow]) -> None:
        conn = self._connection()
        try:
            conn.execute("BEGIN IMMEDIATE")
            conn.execute("DELETE FROM cache_entries")
            self._upsert_rows(conn, rows)
            conn.execute("COMMIT")
            conn.execute("VACUUM")
            conn.execute("PRAGMA wal_checkpoint(TRUNCATE)")
        except sqlite3.DatabaseError as error:
            try:
                conn.execute("ROLLBACK")
            except sqlite3.DatabaseError:
                pass
            raise self._translate(error) from error
