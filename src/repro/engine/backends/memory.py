"""In-memory cache backend: the LRU mapping *is* the store.

Selected by the ``memory:`` cache URL.  Nothing is persisted — ``load``
returns no rows, snapshots and flushes write nothing — but the full cache
front end (LRU budget, TTL, statistics, even the write-behind flusher)
behaves identically to the durable backends, which is what lets the
crash-recovery and backend-matrix test suites parametrize over all three.
"""

from __future__ import annotations

from typing import Callable, List, Sequence

from .base import CacheBackend, CacheRow


class MemoryBackend(CacheBackend):
    """No-op durable tier for purely in-process caches."""

    name = "memory"
    persistent = False
    partial_flush = False

    def __init__(self) -> None:
        super().__init__(location=None)

    def exists(self) -> bool:
        return False

    def load(self) -> List[CacheRow]:
        return []

    def write_snapshot(
        self, rows: Sequence[CacheRow], deletes: Sequence[str] = ()
    ) -> int:
        return 0

    def flush(
        self,
        upserts: Sequence[CacheRow],
        deletes: Sequence[str],
        snapshot: Callable[[], Sequence[CacheRow]],
    ) -> int:
        return 0
