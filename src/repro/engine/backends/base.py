"""Storage-backend protocol behind :class:`repro.engine.cache.ClassificationCache`.

The cache front end (LRU bookkeeping, statistics, TTL, write-behind) is
backend-agnostic; everything that touches durable storage goes through the
:class:`CacheBackend` interface defined here.  Three implementations ship:

``memory``
    No durable storage at all — the in-memory LRU mapping is the cache.
``json``
    The PR-1 single-file JSON format (schema 2, schema-1 files still load).
    Every flush rewrites the whole snapshot atomically.
``sqlite``
    A WAL-mode SQLite database with one row per entry.  Flushes upsert only
    the dirty rows, so per-store persistence cost is independent of cache
    size, and WAL mode makes concurrent writers from multiple processes on
    one host safe.

Cache URLs
----------
Backends are selected by URL wherever a cache location is accepted
(``SessionConfig``, the ``--cache`` CLI flags, ``repro serve`` endpoints)::

    results.json            bare path  -> json backend (compatible default)
    json:results.json       explicit json backend
    sqlite:results.db       sqlite-WAL backend
    memory:                 in-memory only (no persistence)

The default backend for bare paths can be overridden with the
``REPRO_CACHE_BACKEND`` environment variable (``json`` or ``sqlite``) — the
hook CI uses to force the whole cache-flow test surface through sqlite.

Corruption handling
-------------------
Backends raise :class:`CacheCorruptionError` (a ``ValueError``) when the
underlying storage is unreadable *as a container* — truncated JSON, a file
that is not a SQLite database.  Structurally invalid but well-formed files
(unknown schema version, malformed entry shapes) raise plain ``ValueError``:
those may be future-version files and are never quarantined.
"""

from __future__ import annotations

import abc
import os
import time
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

#: One persisted cache row: (canonical key, serialized result, stored-at time).
CacheRow = Tuple[str, Dict[str, Any], Optional[float]]

#: Environment variable selecting the backend for bare (scheme-less) paths.
BACKEND_ENV_VAR = "REPRO_CACHE_BACKEND"

#: URL schemes accepted by :func:`parse_cache_url`.
CACHE_SCHEMES = ("memory", "json", "sqlite")


class CacheCorruptionError(ValueError):
    """The backing store exists but cannot be read as a cache container."""


class CacheBackend(abc.ABC):
    """Durable-storage strategy for one :class:`ClassificationCache`.

    Backends are *not* thread-safe on their own; the owning cache serializes
    every call through its I/O lock.  ``location`` is the filesystem path of
    the store (``None`` for the memory backend).
    """

    #: Short backend identifier (``memory`` / ``json`` / ``sqlite``).
    name: str = "abstract"
    #: Whether the backend durably persists entries across processes.
    persistent: bool = False
    #: Whether :meth:`flush` writes only the dirty rows (sqlite) rather than
    #: rewriting the full snapshot (json).
    partial_flush: bool = False

    def __init__(self, location: Optional[str] = None) -> None:
        self.location = location

    # -- durable I/O ---------------------------------------------------
    def exists(self) -> bool:
        """Whether the backing store already exists on disk."""
        return bool(self.location) and os.path.exists(self.location)

    @abc.abstractmethod
    def load(self) -> List[CacheRow]:
        """Read every persisted row, least recently used first.

        Raises :class:`CacheCorruptionError` for unreadable containers and
        plain :class:`ValueError` for structural problems (see module
        docstring).
        """

    @abc.abstractmethod
    def write_snapshot(
        self, rows: Sequence[CacheRow], deletes: Sequence[str] = ()
    ) -> int:
        """Persist the full snapshot ``rows``; return rows written.

        ``deletes`` are keys known evicted/expired since the last write.
        Whole-file backends ignore it (rewriting drops them anyway); the
        sqlite backend deletes exactly those rows, because it must never
        clear rows it does not own (other processes may share the store).
        """

    @abc.abstractmethod
    def flush(
        self,
        upserts: Sequence[CacheRow],
        deletes: Sequence[str],
        snapshot: Callable[[], Sequence[CacheRow]],
        ) -> int:
        """Persist a write-behind increment; return entries written.

        ``upserts`` are dirty rows in store-time order (oldest first) and
        ``deletes`` are keys evicted or expired since the last flush.
        Backends that cannot update entries individually call ``snapshot()``
        for the full current state and rewrite it; partial backends touch
        only the given rows, which is what keeps per-store persistence cost
        sublinear in cache size.
        """

    def compact(self, rows: Sequence[CacheRow]) -> None:
        """Rewrite the store from ``rows`` alone and reclaim dead space."""
        self.write_snapshot(rows)

    def file_size(self) -> int:
        """Size in bytes of the main backing file (0 when absent)."""
        if self.location and os.path.exists(self.location):
            return os.path.getsize(self.location)
        return 0

    def quarantine(self) -> Optional[str]:
        """Move a corrupt store out of the way; return its new path.

        The store is renamed to ``{location}.corrupt-<timestamp>`` (data is
        preserved for post-mortems, never deleted).  Returns ``None`` for
        location-less backends.
        """
        if not self.location or not os.path.exists(self.location):
            return None
        self.close()
        stamp = time.strftime("%Y%m%dT%H%M%S")
        target = f"{self.location}.corrupt-{stamp}"
        suffix = 0
        while os.path.exists(target):
            suffix += 1
            target = f"{self.location}.corrupt-{stamp}.{suffix}"
        os.replace(self.location, target)
        for sidecar in self._sidecar_paths():
            if os.path.exists(sidecar):
                os.replace(sidecar, f"{target}{sidecar[len(self.location):]}")
        return target

    def _sidecar_paths(self) -> Tuple[str, ...]:
        """Auxiliary files that must move together with the main store."""
        return ()

    def close(self) -> None:
        """Release any held resources (idempotent)."""


def parse_cache_url(url: str) -> Tuple[str, Optional[str]]:
    """Split a cache URL into ``(backend_name, location)``.

    Bare paths select the backend named by ``REPRO_CACHE_BACKEND`` (default
    ``json``, today's format).  Unknown schemes and empty locations are
    rejected with :class:`ValueError` so typos cannot silently select the
    wrong store.
    """
    if not url:
        raise ValueError("cache URL must be non-empty")
    for scheme in CACHE_SCHEMES:
        prefix = f"{scheme}:"
        if url == scheme or url.startswith(prefix):
            location = url[len(prefix):] if url.startswith(prefix) else ""
            if location.startswith("//"):
                location = location[2:]
            if scheme == "memory":
                if location:
                    raise ValueError(
                        f"memory cache takes no path, got {url!r}"
                    )
                return "memory", None
            if not location:
                raise ValueError(f"cache URL {url!r} is missing a path")
            return scheme, location
    head = url.split(":", 1)[0]
    if ":" in url and head.isalpha() and len(head) > 1:
        raise ValueError(
            f"unknown cache backend {head!r} in {url!r}"
            f" (expected one of {CACHE_SCHEMES} or a bare path)"
        )
    default = os.environ.get(BACKEND_ENV_VAR, "json").strip().lower()
    if default not in ("json", "sqlite"):
        raise ValueError(
            f"invalid {BACKEND_ENV_VAR}={default!r} (expected json or sqlite)"
        )
    return default, url


def create_backend(url: str) -> CacheBackend:
    """Instantiate the :class:`CacheBackend` selected by ``url``."""
    from .json_file import JsonFileBackend
    from .memory import MemoryBackend
    from .sqlite_wal import SqliteWalBackend

    name, location = parse_cache_url(url)
    if name == "memory":
        return MemoryBackend()
    if name == "sqlite":
        return SqliteWalBackend(location)
    return JsonFileBackend(location)
