"""Batch classification: dedupe by canonical form, classify once, translate back.

:class:`BatchClassifier` is the amortizing front-end to the (exponential-time)
certificate searches of :mod:`repro.core.classifier`.  Given a stream of
problems it

1. computes every problem's canonical form (:mod:`repro.engine.canonical`),
2. deduplicates the stream by canonical key — one *representative* per
   renaming orbit,
3. routes representatives whose key is not already cached through a
   :class:`~repro.workers.scheduler.ClassificationScheduler`, which executes
   the full decision procedure on a pluggable worker backend (``inline``,
   ``threads``, or ``processes`` — see :mod:`repro.workers`) with
   single-flight deduplication against concurrently running searches,
4. lets the scheduler store each fresh result in the cache *in canonical
   labels*, and
5. answers every submitted problem by translating the cached canonical result
   back through that problem's own label bijection.

Because results are stored in canonical labels and translated per caller, a
cache hit on the *same* problem reproduces the fresh classification exactly;
a hit on a merely *isomorphic* problem yields an equally valid result whose
certificate label sets are the bijective image of the representative's.

The classifier is safe to call from many threads at once (the service does):
statistics are mutex-guarded, the cache locks internally, and the scheduler
guarantees one search per canonical key however many callers race on it.
:meth:`submit_item` exposes the asynchronous edge — submit now, fan work out,
stream each :class:`BatchItem` as its future resolves.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Mapping, Optional

from ..core.cancellation import SearchInterrupted
from ..core.complexity import ClassificationResult
from ..core.problem import LCLProblem
from ..workers.backends import WorkerBackend, create_backend
from ..workers.scheduler import (
    DEFAULT_PRIORITY,
    JOB_SCHEDULED,
    ClassificationJob,
    ClassificationScheduler,
)
from .cache import CacheStats, ClassificationCache
from .canonical import CanonicalForm, canonical_form
from .serialization import relabel_result, result_from_dict

OUTCOME_OK = "ok"
OUTCOME_TIMEOUT = "timeout"
OUTCOME_CANCELLED = "cancelled"


@dataclass(frozen=True)
class BatchItem:
    """Classification of one submitted problem inside a batch.

    ``outcome`` is ``"ok"`` for a completed classification; a submission
    whose deadline expired or that was cancelled yields ``"timeout"`` or
    ``"cancelled"`` with ``result=None`` — the search was interrupted, so
    there is no (and never will be a cached) answer for it.
    """

    problem: LCLProblem
    canonical_key: str
    result: Optional[ClassificationResult]
    from_cache: bool
    elapsed_seconds: float = 0.0
    outcome: str = OUTCOME_OK

    @property
    def ok(self) -> bool:
        """Whether the classification completed (``result`` is present)."""
        return self.outcome == OUTCOME_OK


@dataclass
class BatchStats:
    """Work accounting of a :class:`BatchClassifier`.

    ``full_searches`` counts actual runs of the complete decision procedure;
    the gap between it and ``submitted`` is the work amortized away by
    canonical deduplication, caching, and single-flight sharing.
    """

    submitted: int = 0
    full_searches: int = 0

    @property
    def amortized(self) -> int:
        """Problems answered without running the decision procedure."""
        return self.submitted - self.full_searches

    @property
    def speedup(self) -> float:
        """Ratio of submitted problems to full searches (1.0 when no sharing)."""
        if not self.full_searches:
            return float(self.submitted) if self.submitted else 1.0
        return self.submitted / self.full_searches

    def as_dict(self) -> Dict[str, Any]:
        """The statistics as a JSON-friendly dictionary."""
        return {
            "submitted": self.submitted,
            "full_searches": self.full_searches,
            "amortized": self.amortized,
            "speedup": self.speedup,
        }


def _key_counts(forms: Iterable[CanonicalForm]) -> Dict[str, int]:
    """Occurrences of each canonical key in a batch."""
    counts: Dict[str, int] = {}
    for form in forms:
        counts[form.key] = counts.get(form.key, 0) + 1
    return counts


def _item_from_payload(
    form: CanonicalForm, payload: Mapping[str, Any], from_cache: bool
) -> BatchItem:
    """Translate a canonical-label payload into the submitter's alphabet."""
    canonical_result = result_from_dict(payload)
    return BatchItem(
        problem=form.problem,
        canonical_key=form.key,
        result=relabel_result(canonical_result, form.inverse),
        from_cache=from_cache,
        elapsed_seconds=0.0 if from_cache else payload.get("elapsed_seconds", 0.0),
    )


@dataclass(frozen=True)
class PendingClassification:
    """A submitted problem whose search may still be running.

    Returned by :meth:`BatchClassifier.submit_item`; :meth:`result` blocks
    until the underlying scheduler job resolves and translates the canonical
    payload back through this problem's bijection.  A deadline expiry or
    cancellation does **not** raise: it yields a :class:`BatchItem` whose
    ``outcome`` is ``"timeout"``/``"cancelled"`` and whose ``result`` is
    ``None``, so batch consumers can stream partial failures item by item.
    Genuine search errors still propagate as exceptions.
    """

    form: CanonicalForm
    job: ClassificationJob

    @property
    def done(self) -> bool:
        return self.job.done

    @property
    def from_cache(self) -> bool:
        """Whether this submission was answered without starting a search."""
        return self.job.kind != JOB_SCHEDULED

    def cancel(self) -> bool:
        """Detach this submission from its search (see ``ClassificationJob``)."""
        return self.job.cancel()

    def result(self, timeout: Optional[float] = None) -> BatchItem:
        """Block until classified; raise what the search raised on failure."""
        try:
            payload = self.job.result(timeout=timeout)
        except SearchInterrupted as interrupted:
            return BatchItem(
                problem=self.form.problem,
                canonical_key=self.form.key,
                result=None,
                from_cache=False,
                outcome=interrupted.outcome,
            )
        return _item_from_payload(self.form, payload, from_cache=self.from_cache)


class BatchClassifier:
    """Canonical-form-deduplicating, caching classifier front-end.

    .. deprecated:: 1.2
        Constructing a ``BatchClassifier`` directly is the *legacy* front
        door.  New code should open a :class:`repro.api.ClassificationSession`
        (``repro.api.connect("local://threads?workers=8")``), which absorbs
        the ``cache``/``backend``/``workers`` kwargs into one endpoint and
        returns the uniform :class:`~repro.api.Outcome` type.  This class
        remains supported as the session's local execution engine.

    Parameters
    ----------
    cache:
        The :class:`ClassificationCache` to consult and fill.  A fresh
        in-memory cache is created when omitted.
    processes:
        Legacy spelling kept for compatibility: ``processes=N`` with ``N > 1``
        is shorthand for ``backend="processes", workers=N``.
    backend:
        Name of the worker backend executing uncached searches — ``"inline"``
        (default: synchronous, zero overhead), ``"threads"``, or
        ``"processes"`` — or an already-built
        :class:`~repro.workers.backends.WorkerBackend` instance.
    workers:
        Pool size for ``threads``/``processes`` backends (default: CPU count).
    scheduler:
        An existing :class:`ClassificationScheduler` to share (its cache wins
        over the ``cache`` argument).  Lets several classifiers — or a service
        — pool their single-flight tables and worker processes.
    """

    def __init__(
        self,
        cache: Optional[ClassificationCache] = None,
        processes: Optional[int] = None,
        backend: Optional[Any] = None,
        workers: Optional[int] = None,
        scheduler: Optional[ClassificationScheduler] = None,
    ) -> None:
        # close() only tears down resources this classifier created: an
        # injected scheduler — or an injected backend instance — is shared
        # property, and whoever built it decides when to close it.
        self._owns_scheduler = scheduler is None
        self._owns_backend = scheduler is None and not isinstance(
            backend, WorkerBackend
        )
        if scheduler is not None:
            self.scheduler = scheduler
            self.cache = scheduler.cache
        else:
            if backend is None and processes is not None and processes > 1:
                backend, workers = "processes", workers or processes
            if isinstance(backend, WorkerBackend):
                backend_obj = backend
            else:
                backend_obj = create_backend(backend, workers)
            self.cache = cache if cache is not None else ClassificationCache()
            self.scheduler = ClassificationScheduler(
                cache=self.cache, backend=backend_obj
            )
        self.processes = processes
        self.stats = BatchStats()
        self._stats_lock = threading.Lock()

    # ------------------------------------------------------------------
    # Single-problem interface
    # ------------------------------------------------------------------
    def classify(self, problem: LCLProblem) -> ClassificationResult:
        """Classify one problem through the cache (decision only)."""
        item = self.classify_item(problem)
        assert item.result is not None  # no deadline was given
        return item.result

    def classify_item(
        self,
        problem: LCLProblem,
        priority: str = DEFAULT_PRIORITY,
        deadline: Optional[float] = None,
        trace: Optional[Any] = None,
    ) -> BatchItem:
        """Classify one problem through the cache, with provenance."""
        return self.submit_item(
            problem, priority=priority, deadline=deadline, trace=trace
        ).result()

    def submit_item(
        self,
        problem: LCLProblem,
        priority: str = DEFAULT_PRIORITY,
        deadline: Optional[float] = None,
        trace: Optional[Any] = None,
    ) -> PendingClassification:
        """Submit one problem for classification without waiting.

        The search (if one is needed) starts on the worker backend as soon
        as the scheduler admits it (ordered by ``priority``); concurrent
        submissions of the same renaming orbit share it.  ``deadline`` bounds
        this submission's total wait in seconds — on expiry the resulting
        :class:`BatchItem` reports ``outcome="timeout"``.  ``trace`` (a
        :class:`~repro.obs.trace.RequestTrace`, or the common ``None``)
        receives the scheduler's span events for this submission.  Call
        :meth:`PendingClassification.result` to collect the translated item.
        """
        form = canonical_form(problem)
        job = self.scheduler.submit(
            form, priority=priority, deadline=deadline, trace=trace
        )
        with self._stats_lock:
            self.stats.submitted += 1
            if job.kind == JOB_SCHEDULED:
                self.stats.full_searches += 1
        return PendingClassification(form=form, job=job)

    # ------------------------------------------------------------------
    # Batch interface
    # ------------------------------------------------------------------
    def classify_many(
        self,
        problems: Iterable[LCLProblem],
        priority: str = DEFAULT_PRIORITY,
        deadline: Optional[float] = None,
    ) -> List[BatchItem]:
        """Classify a stream of problems, deduplicating by canonical form.

        Results are returned in submission order.  Representatives missing
        from the cache are all scheduled up front, so with a ``threads`` or
        ``processes`` backend they run concurrently while this call waits.
        ``deadline`` is a per-key budget in seconds: a representative whose
        search exceeds it yields items with ``outcome="timeout"`` (for every
        duplicate of that orbit) while the rest of the batch completes
        normally.
        """
        forms = [canonical_form(problem) for problem in problems]
        with self._stats_lock:
            self.stats.submitted += len(forms)

        # One scheduler submission per *distinct* key: the first occurrence
        # decides hit or miss, duplicates within the batch count as hits.
        # Payloads are captured from the job futures (not re-read from the
        # cache afterwards) so that a tight ``max_entries`` budget evicting
        # entries mid-batch cannot lose answers.
        first_form_by_key: Dict[str, CanonicalForm] = {}
        for form in forms:
            first_form_by_key.setdefault(form.key, form)
        jobs: Dict[str, ClassificationJob] = {
            key: self.scheduler.submit(form, priority=priority, deadline=deadline)
            for key, form in first_form_by_key.items()
        }
        searches = sum(1 for job in jobs.values() if job.kind == JOB_SCHEDULED)
        with self._stats_lock:
            self.stats.full_searches += searches

        payload_by_key: Dict[str, Optional[Dict[str, Any]]] = {}
        outcome_by_key: Dict[str, str] = {}
        for key, job in jobs.items():
            try:
                payload_by_key[key] = job.result()
            except SearchInterrupted as interrupted:
                payload_by_key[key] = None
                outcome_by_key[key] = interrupted.outcome
        # Duplicate submissions of the same orbit are answered from the
        # captured payloads; count them as hits only once their
        # representative actually resolved (a timed-out orbit produced no
        # answer, so its duplicates are not hits).
        duplicate_hits = sum(
            count - 1
            for key, count in _key_counts(forms).items()
            if count > 1 and payload_by_key[key] is not None
        )
        self.cache.add_hits(duplicate_hits)

        items: List[BatchItem] = []
        fresh_keys = {
            key for key, job in jobs.items() if job.kind == JOB_SCHEDULED
        }
        for form in forms:
            payload = payload_by_key[form.key]
            if payload is None:
                items.append(
                    BatchItem(
                        problem=form.problem,
                        canonical_key=form.key,
                        result=None,
                        from_cache=False,
                        outcome=outcome_by_key[form.key],
                    )
                )
            else:
                items.append(
                    _item_from_payload(
                        form,
                        payload,
                        from_cache=form.key not in fresh_keys,
                    )
                )
            fresh_keys.discard(form.key)  # only the first occurrence is "fresh"
        return items

    # ------------------------------------------------------------------
    # Introspection / lifecycle
    # ------------------------------------------------------------------
    @property
    def cache_stats(self) -> CacheStats:
        """The underlying cache's hit/miss statistics."""
        return self.cache.stats

    def stats_report(self) -> Dict[str, Any]:
        """Combined batch + cache + worker statistics (JSON-friendly)."""
        return {
            "batch": self.stats.as_dict(),
            "cache": self.cache.stats.as_dict(),
            "workers": self.scheduler.stats_payload(),
        }

    def close(self) -> None:
        """Shut the worker backend down.

        Only closes a backend this classifier created itself (from a backend
        *name* or the ``processes`` shorthand); an injected scheduler or
        backend instance stays alive for its other users — whoever built it
        decides when to close it.
        """
        if self._owns_scheduler and self._owns_backend:
            self.scheduler.close()

    def __enter__(self) -> "BatchClassifier":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()
