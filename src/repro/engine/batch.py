"""Batch classification: dedupe by canonical form, classify once, translate back.

:class:`BatchClassifier` is the amortizing front-end to the (exponential-time)
certificate searches of :mod:`repro.core.classifier`.  Given a stream of
problems it

1. computes every problem's canonical form (:mod:`repro.engine.canonical`),
2. deduplicates the stream by canonical key — one *representative* per
   renaming orbit,
3. runs the full decision procedure only on representatives whose key is not
   already in the cache (optionally fanning out across worker processes via
   :mod:`multiprocessing`),
4. stores each fresh result in the cache *in canonical labels*, and
5. answers every submitted problem by translating the cached canonical result
   back through that problem's own label bijection.

Because results are stored in canonical labels and translated per caller, a
cache hit on the *same* problem reproduces the fresh classification exactly;
a hit on a merely *isomorphic* problem yields an equally valid result whose
certificate label sets are the bijective image of the representative's.
"""

from __future__ import annotations

import multiprocessing
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from ..core.classifier import classify_with_certificates
from ..core.complexity import ClassificationResult
from ..core.problem import LCLProblem
from .cache import CacheStats, ClassificationCache
from .canonical import CanonicalForm, canonical_form
from .serialization import (
    problem_from_dict,
    problem_to_dict,
    relabel_result,
    result_from_dict,
    result_to_dict,
)

_WorkerTask = Tuple[str, Dict[str, Any], Dict[str, str]]


def _classify_worker(task: _WorkerTask) -> Tuple[str, Dict[str, Any]]:
    """Worker entry point: classify one representative, in canonical labels.

    Runs in a separate process, so everything crossing the boundary is a
    plain dict (see :mod:`repro.engine.serialization`).
    """
    key, problem_payload, forward = task
    problem = problem_from_dict(problem_payload)
    artifacts = classify_with_certificates(problem)
    payload = result_to_dict(relabel_result(artifacts.result, forward))
    payload["elapsed_seconds"] = artifacts.elapsed_seconds
    return key, payload


@dataclass(frozen=True)
class BatchItem:
    """Classification of one submitted problem inside a batch."""

    problem: LCLProblem
    canonical_key: str
    result: ClassificationResult
    from_cache: bool
    elapsed_seconds: float = 0.0


@dataclass
class BatchStats:
    """Work accounting of a :class:`BatchClassifier`.

    ``full_searches`` counts actual runs of the complete decision procedure;
    the gap between it and ``submitted`` is the work amortized away by
    canonical deduplication and caching.
    """

    submitted: int = 0
    full_searches: int = 0

    @property
    def amortized(self) -> int:
        """Problems answered without running the decision procedure."""
        return self.submitted - self.full_searches

    @property
    def speedup(self) -> float:
        """Ratio of submitted problems to full searches (1.0 when no sharing)."""
        if not self.full_searches:
            return float(self.submitted) if self.submitted else 1.0
        return self.submitted / self.full_searches

    def as_dict(self) -> Dict[str, Any]:
        """The statistics as a JSON-friendly dictionary."""
        return {
            "submitted": self.submitted,
            "full_searches": self.full_searches,
            "amortized": self.amortized,
            "speedup": self.speedup,
        }


class BatchClassifier:
    """Canonical-form-deduplicating, caching classifier front-end.

    Parameters
    ----------
    cache:
        The :class:`ClassificationCache` to consult and fill.  A fresh
        in-memory cache is created when omitted.
    processes:
        When > 1, uncached representatives of a :meth:`classify_many` call are
        classified in a :class:`multiprocessing.Pool` of this many workers.
        ``None`` or 1 means serial execution in-process.
    """

    def __init__(
        self,
        cache: Optional[ClassificationCache] = None,
        processes: Optional[int] = None,
    ) -> None:
        self.cache = cache if cache is not None else ClassificationCache()
        self.processes = processes
        self.stats = BatchStats()

    # ------------------------------------------------------------------
    # Single-problem interface
    # ------------------------------------------------------------------
    def classify(self, problem: LCLProblem) -> ClassificationResult:
        """Classify one problem through the cache (decision only)."""
        return self.classify_item(problem).result

    def classify_item(self, problem: LCLProblem) -> BatchItem:
        """Classify one problem through the cache, with provenance."""
        form = canonical_form(problem)
        self.stats.submitted += 1
        payload = self.cache.lookup(form.key)
        if payload is not None:
            return self._item_from_payload(form, payload, from_cache=True)
        payload = self._classify_representative(form)
        return self._item_from_payload(form, payload, from_cache=False)

    # ------------------------------------------------------------------
    # Batch interface
    # ------------------------------------------------------------------
    def classify_many(self, problems: Iterable[LCLProblem]) -> List[BatchItem]:
        """Classify a stream of problems, deduplicating by canonical form.

        Results are returned in submission order.  Representatives missing
        from the cache are classified serially, or in a worker pool when the
        classifier was constructed with ``processes > 1``.
        """
        forms = [canonical_form(problem) for problem in problems]
        self.stats.submitted += len(forms)

        # One cache lookup per *distinct* key: the first occurrence decides
        # hit or miss, duplicates within the batch count as hits.  Payloads are
        # captured here (not re-read from the cache afterwards) so that a tight
        # ``max_entries`` budget evicting entries mid-batch cannot lose answers.
        first_form_by_key: Dict[str, CanonicalForm] = {}
        for form in forms:
            first_form_by_key.setdefault(form.key, form)
        payload_by_key: Dict[str, Dict[str, Any]] = {}
        missing: List[CanonicalForm] = []
        for key, form in first_form_by_key.items():
            payload = self.cache.lookup(key)
            if payload is None:
                missing.append(form)
            else:
                payload_by_key[key] = payload
            # Duplicate submissions of the same orbit are answered from the
            # captured payloads below; count them as hits now.
        duplicate_count = len(forms) - len(first_form_by_key)
        self.cache.stats.hits += duplicate_count

        payload_by_key.update(self._classify_missing(missing))

        items: List[BatchItem] = []
        fresh_keys = {form.key for form in missing}
        for form in forms:
            items.append(
                self._item_from_payload(
                    form,
                    payload_by_key[form.key],
                    from_cache=form.key not in fresh_keys,
                )
            )
            fresh_keys.discard(form.key)  # only the first occurrence is "fresh"
        return items

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _classify_missing(
        self, missing: Sequence[CanonicalForm]
    ) -> Dict[str, Dict[str, Any]]:
        """Classify every representative in ``missing`` and fill the cache.

        Returns the fresh payloads keyed by canonical key, so callers keep
        their answers even if the cache evicts an entry straight away.
        """
        fresh: Dict[str, Dict[str, Any]] = {}
        if not missing:
            return fresh
        self.stats.full_searches += len(missing)
        if self.processes and self.processes > 1 and len(missing) > 1:
            tasks: List[_WorkerTask] = [
                (form.key, problem_to_dict(form.problem), dict(form.forward))
                for form in missing
            ]
            try:
                with multiprocessing.Pool(self.processes) as pool:
                    for key, payload in pool.imap_unordered(_classify_worker, tasks):
                        self.cache.store(key, payload)
                        fresh[key] = payload
                return fresh
            except OSError:  # pragma: no cover - pool unavailable (sandboxing)
                pass  # fall through to the serial path
        for form in missing:
            key, payload = _classify_worker(
                (form.key, problem_to_dict(form.problem), dict(form.forward))
            )
            self.cache.store(key, payload)
            fresh[key] = payload
        return fresh

    def _classify_representative(self, form: CanonicalForm) -> Dict[str, Any]:
        """Classify a single representative and store its canonical result."""
        self.stats.full_searches += 1
        _key, payload = _classify_worker(
            (form.key, problem_to_dict(form.problem), dict(form.forward))
        )
        self.cache.store(form.key, payload)
        return payload

    def _item_from_payload(
        self,
        form: CanonicalForm,
        payload: Mapping[str, Any],
        from_cache: bool,
    ) -> BatchItem:
        canonical_result = result_from_dict(payload)
        return BatchItem(
            problem=form.problem,
            canonical_key=form.key,
            result=relabel_result(canonical_result, form.inverse),
            from_cache=from_cache,
            elapsed_seconds=0.0 if from_cache else payload.get("elapsed_seconds", 0.0),
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def cache_stats(self) -> CacheStats:
        """The underlying cache's hit/miss statistics."""
        return self.cache.stats

    def stats_report(self) -> Dict[str, Any]:
        """Combined batch + cache statistics as a JSON-friendly dictionary."""
        return {"batch": self.stats.as_dict(), "cache": self.cache.stats.as_dict()}
