"""Batch classification engine: canonical forms, caching, and batching.

This package amortizes the cost of the paper's decision procedure across
fleets of problems:

* :mod:`repro.engine.canonical` — canonical relabeling of an
  :class:`~repro.core.problem.LCLProblem`, invariant under label renaming,
  with a stable cache key,
* :mod:`repro.engine.cache` — in-memory result cache keyed by canonical
  form over a pluggable durable tier (:mod:`repro.engine.backends`: json
  file, sqlite-WAL, or memory-only), with hit/miss/eviction/flush
  statistics, optional TTL, write-behind persistence, and an optional LRU
  ``max_entries`` budget enforced in memory and on disk,
* :mod:`repro.engine.batch` — :class:`BatchClassifier`, which deduplicates a
  stream of problems by canonical key, routes unique representatives through
  the single-flight scheduler of :mod:`repro.workers` (inline, thread-pool,
  or process-pool execution), and translates cached results back through
  each problem's label bijection,
* :mod:`repro.engine.serialization` — dict/JSON round-tripping of problems
  and classification results, so results survive process boundaries and the
  on-disk cache.
"""

from .backends import (
    CacheBackend,
    CacheCorruptionError,
    JsonFileBackend,
    MemoryBackend,
    SqliteWalBackend,
    create_backend,
    parse_cache_url,
)
from .batch import BatchClassifier, BatchItem, BatchStats
from .cache import CacheStats, ClassificationCache
from .canonical import CanonicalForm, canonical_form, canonical_key
from .serialization import (
    artifacts_from_dict,
    artifacts_to_dict,
    problem_from_dict,
    problem_to_dict,
    relabel_result,
    result_from_dict,
    result_to_dict,
)

__all__ = [
    "BatchClassifier",
    "BatchItem",
    "BatchStats",
    "CacheBackend",
    "CacheCorruptionError",
    "CacheStats",
    "CanonicalForm",
    "ClassificationCache",
    "JsonFileBackend",
    "MemoryBackend",
    "SqliteWalBackend",
    "artifacts_from_dict",
    "artifacts_to_dict",
    "canonical_form",
    "canonical_key",
    "create_backend",
    "parse_cache_url",
    "problem_from_dict",
    "problem_to_dict",
    "relabel_result",
    "result_from_dict",
    "result_to_dict",
]
