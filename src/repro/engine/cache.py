"""Classification cache keyed by canonical form, with LRU eviction and stats.

The cache stores *serialized* classification results (see
:mod:`repro.engine.serialization`) indexed by the canonical-form key of
:mod:`repro.engine.canonical`.  Stored results are expressed in the canonical
alphabet; translating them back into a caller's original alphabet is the
responsibility of :class:`repro.engine.batch.BatchClassifier`, which owns the
label bijections.

Storage tiers
-------------
The in-memory tier is an always-on mapping with least-recently-used (LRU)
eviction under an optional ``max_entries`` budget.  The durable tier behind
it is pluggable (:mod:`repro.engine.backends`), selected by the ``path``
cache URL:

* ``results.json`` / ``json:results.json`` — the PR-1 single-file JSON
  format (schema 2; legacy schema-1 files still load).  Every persist
  rewrites the whole snapshot atomically.
* ``sqlite:results.db`` — a WAL-mode SQLite database with one row per
  entry.  Persists upsert only changed rows and tolerate concurrent writer
  processes on one host.
* ``memory:`` (or ``path=None``) — no durable tier at all.

The cache is **thread-safe**: every operation (lookup, store, save, load,
flush, compact) holds an internal reentrant lock for memory state, and a
dedicated I/O lock serializes writers of the durable tier within this
process.  Worker threads of :mod:`repro.workers` and concurrent service
connection handlers can share one instance without external serialization.

Write-behind persistence
------------------------
With ``flush_interval`` and/or ``flush_max_dirty`` set (and a persistent
backend), stores mark keys *dirty* instead of persisting synchronously; a
background flusher thread persists the dirty set once the count threshold is
reached or the interval has elapsed — and :meth:`save` / :meth:`close` always
persist everything outstanding.  Evicted and expired keys are tracked as
*dead* so partial-flush backends delete exactly those rows.  A crash loses
at most the not-yet-flushed increment; the on-disk store stays consistent
because every backend writes atomically (temp-file rename or a SQLite
transaction).  Flush activity is counted in :attr:`CacheStats.flushes` /
:attr:`CacheStats.flushed_entries` and surfaces in ``repro metrics``.

Expiry (TTL)
------------
With ``ttl_seconds`` set, entries older than the TTL count as misses: a
:meth:`lookup` of an expired entry drops it (recording an *expiration*) and
returns ``None``.  The sqlite backend persists store timestamps, so TTL
survives restarts; the json format (kept byte-compatible with PR 1) does
not, so loaded entries restart their TTL clock at load time.

Corruption handling
-------------------
A cache file that cannot be read *as a container* (truncated JSON, not a
SQLite database) raises :class:`CacheCorruptionError`.  During construction
the default is to **quarantine**: the bad file is renamed to
``{path}.corrupt-<timestamp>``, a warning is logged, and the cache starts
empty — a durability incident must not hard-crash ``repro serve`` at
startup.  Pass ``quarantine=False`` (the CLI inspection commands do) to get
the error instead.  Structurally invalid files (unknown schema version,
malformed entries) always raise :class:`ValueError`: they may be
future-version files and are never quarantined.

On-disk format — schema 2 upgrade note
--------------------------------------
Schema 2 (current) is a single JSON object::

    {"schema": 2, "entries": [[key, result_dict], ...]}

where ``entries`` is a *list of pairs* in LRU order, least recently used
first, so that recency survives a save/load round trip.  Schema 1 (PR 1)
stored ``{"schema": 1, "entries": {key: result_dict}}`` — an unordered,
unbounded object.  :meth:`load` accepts **both** schemas; :meth:`save`
always writes schema 2.  Schema 2 is also the ``repro cache export`` /
``import`` interchange format across all backends.
"""

from __future__ import annotations

import logging
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Mapping, Optional

from .backends import (
    CACHE_SCHEMA_VERSION,
    SUPPORTED_SCHEMA_VERSIONS,
    CacheBackend,
    CacheCorruptionError,
    CacheRow,
    MemoryBackend,
    create_backend,
    dump_snapshot_text,
)

__all__ = [
    "CACHE_SCHEMA_VERSION",
    "SUPPORTED_SCHEMA_VERSIONS",
    "CacheCorruptionError",
    "CacheStats",
    "ClassificationCache",
]

logger = logging.getLogger(__name__)

#: How long :meth:`ClassificationCache.close` waits for the flusher thread.
_FLUSHER_JOIN_TIMEOUT = 5.0


@dataclass
class CacheStats:
    """Hit/miss/eviction/expiry/flush counters of a :class:`ClassificationCache`."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    expirations: int = 0
    flushes: int = 0
    flushed_entries: int = 0

    @property
    def total(self) -> int:
        """Number of lookups performed."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups answered from the cache (0.0 when empty)."""
        if not self.total:
            return 0.0
        return self.hits / self.total

    def as_dict(self) -> Dict[str, Any]:
        """The statistics as a JSON-friendly dictionary."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "total": self.total,
            "hit_rate": self.hit_rate,
            "evictions": self.evictions,
            "expirations": self.expirations,
            "flushes": self.flushes,
            "flushed_entries": self.flushed_entries,
        }


@dataclass
class ClassificationCache:
    """LRU-bounded in-memory tier over a pluggable durable backend.

    Parameters
    ----------
    path:
        Optional cache URL (``results.json``, ``json:...``, ``sqlite:...``,
        ``memory:`` — see :mod:`repro.engine.backends`).  When the durable
        store exists, its entries are loaded on construction.
    autosave:
        When ``True`` (and the backend is persistent) every :meth:`store`
        immediately persists a full snapshot.  Defaults to ``False``; call
        :meth:`save`, or configure write-behind.
    max_entries:
        Optional LRU budget.  ``None`` (the default) means unbounded.  The
        in-memory mapping never exceeds this many entries, and because
        :meth:`save` snapshots that mapping, neither does the backing store.
    ttl_seconds:
        Optional time-to-live; entries older than this count as misses and
        are dropped on lookup (see the module docstring).
    flush_interval / flush_max_dirty:
        Write-behind thresholds (seconds since last flush / pending dirty
        keys).  Setting either enables the background flusher on persistent
        backends; leaving both ``None`` keeps PR-1 semantics (persist only
        on explicit :meth:`save`, autosave, or :meth:`close`).
    quarantine:
        Whether construction quarantines a corrupt store and starts empty
        (the default) or propagates :class:`CacheCorruptionError`.
    """

    path: Optional[str] = None
    autosave: bool = False
    max_entries: Optional[int] = None
    ttl_seconds: Optional[float] = None
    flush_interval: Optional[float] = None
    flush_max_dirty: Optional[int] = None
    quarantine: bool = True
    stats: CacheStats = field(default_factory=CacheStats)
    _entries: "OrderedDict[str, Dict[str, Any]]" = field(default_factory=OrderedDict)
    # Guards the LRU mapping, the stats counters, and the dirty/dead/TTL
    # bookkeeping: worker threads of the scheduler (repro.workers) store
    # results concurrently with lookups from service connection handlers
    # and with the write-behind flusher.  Reentrant because save() calls
    # into locked helpers (compact -> save, store -> autosave).  Held only
    # for dictionary operations — never across disk I/O, so a save() in
    # progress cannot stall lookups/stores.
    _lock: threading.RLock = field(
        default_factory=threading.RLock, repr=False, compare=False
    )
    # Serializes writers of the durable tier within this process (the
    # backend objects are not thread-safe on their own).  Cross-process
    # safety is the backend's job: unique temp names + atomic rename for
    # json, WAL transactions for sqlite.
    _io_lock: threading.RLock = field(
        default_factory=threading.RLock, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        if self.max_entries is not None and self.max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {self.max_entries}")
        if self.ttl_seconds is not None and self.ttl_seconds <= 0:
            raise ValueError(f"ttl_seconds must be > 0, got {self.ttl_seconds}")
        if self.flush_interval is not None and self.flush_interval <= 0:
            raise ValueError(
                f"flush_interval must be > 0, got {self.flush_interval}"
            )
        if self.flush_max_dirty is not None and self.flush_max_dirty < 1:
            raise ValueError(
                f"flush_max_dirty must be >= 1, got {self.flush_max_dirty}"
            )
        self._backend: CacheBackend = (
            create_backend(self.path) if self.path else MemoryBackend()
        )
        self._stored_at: Dict[str, float] = {}
        self._dirty: set = set()
        self._dead: set = set()
        self._flush_cv = threading.Condition(threading.Lock())
        self._flusher: Optional[threading.Thread] = None
        self._closed = False
        self._backend_closed = False
        self._last_flush = time.monotonic()
        if self._backend.persistent and self._backend.exists():
            self._load_initial()

    # ------------------------------------------------------------------
    # Backend introspection
    # ------------------------------------------------------------------
    @property
    def backend(self) -> CacheBackend:
        """The durable-storage backend behind this cache."""
        return self._backend

    @property
    def backend_name(self) -> str:
        """Short backend identifier (``memory`` / ``json`` / ``sqlite``)."""
        return self._backend.name

    @property
    def persistent(self) -> bool:
        """Whether the cache has a durable tier."""
        return self._backend.persistent

    @property
    def write_behind(self) -> bool:
        """Whether background write-behind flushing is configured."""
        return (
            self._backend.persistent
            and not self.autosave
            and (self.flush_interval is not None or self.flush_max_dirty is not None)
        )

    @property
    def pending_dirty(self) -> int:
        """Keys awaiting a write-behind flush (dirty upserts + deletions)."""
        with self._lock:
            return len(self._dirty) + len(self._dead)

    def info(self) -> Dict[str, Any]:
        """One JSON-friendly dict describing state + statistics.

        This is the ``cache`` section of session/service stats payloads, so
        local and remote endpoints expose identical fields by construction.
        """
        with self._lock:
            return {
                "entries": len(self._entries),
                "max_entries": self.max_entries,
                "path": self.path,
                "backend": self._backend.name,
                "persistent": self._backend.persistent,
                "dirty": len(self._dirty) + len(self._dead),
                "ttl_seconds": self.ttl_seconds,
                "flush_interval": self.flush_interval,
                "flush_max_dirty": self.flush_max_dirty,
                **self.stats.as_dict(),
            }

    def enable_write_behind(
        self,
        flush_interval: Optional[float] = None,
        flush_max_dirty: Optional[int] = None,
    ) -> None:
        """Fill in *unset* write-behind thresholds (explicit config wins).

        The service calls this with its defaults so persistent caches get
        write-behind out of the box while user-provided ``cache_flush_*``
        settings are never overridden.
        """
        if self.flush_interval is None and flush_interval is not None:
            if flush_interval <= 0:
                raise ValueError(f"flush_interval must be > 0, got {flush_interval}")
            self.flush_interval = flush_interval
        if self.flush_max_dirty is None and flush_max_dirty is not None:
            if flush_max_dirty < 1:
                raise ValueError(
                    f"flush_max_dirty must be >= 1, got {flush_max_dirty}"
                )
            self.flush_max_dirty = flush_max_dirty

    # ------------------------------------------------------------------
    # Lookup / store
    # ------------------------------------------------------------------
    def _expired(self, key: str, now: Optional[float] = None) -> bool:
        """Whether ``key``'s entry is past its TTL (lock must be held)."""
        if self.ttl_seconds is None:
            return False
        stored_at = self._stored_at.get(key)
        if stored_at is None:
            return False
        if now is None:
            now = time.time()
        return (now - stored_at) > self.ttl_seconds

    def _drop_entry(self, key: str) -> None:
        """Remove ``key`` from memory, marking it dead (lock must be held)."""
        self._entries.pop(key, None)
        self._stored_at.pop(key, None)
        self._dirty.discard(key)
        if self._backend.persistent:
            self._dead.add(key)

    def lookup(self, key: str) -> Optional[Dict[str, Any]]:
        """Return the stored result dict for ``key`` (counting a hit or miss).

        A hit refreshes the entry's LRU recency.  An entry past its TTL is
        dropped, counted as an expiration, and reported as a miss.
        """
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None and self._expired(key):
                self._drop_entry(key)
                self.stats.expirations += 1
                entry = None
            if entry is None:
                self.stats.misses += 1
                return None
            self._entries.move_to_end(key)
            self.stats.hits += 1
            return entry

    def peek(self, key: str) -> Optional[Dict[str, Any]]:
        """Like :meth:`lookup` but touching neither statistics nor recency.

        Expired entries read as absent but are left for :meth:`lookup` (or
        eviction) to reap — peeking stays strictly read-only.
        """
        with self._lock:
            if self._expired(key):
                return None
            return self._entries.get(key)

    def store(self, key: str, result_payload: Mapping[str, Any]) -> None:
        """Store a serialized result under ``key`` (overwriting any old entry).

        The entry becomes the most recently used; when the ``max_entries``
        budget is exceeded, least recently used entries are evicted.  On
        persistent backends the key is marked dirty for the next flush (or
        persisted immediately under ``autosave``).
        """
        with self._lock:
            self._entries[key] = dict(result_payload)
            self._entries.move_to_end(key)
            self._stored_at[key] = time.time()
            if self._backend.persistent:
                self._dirty.add(key)
                self._dead.discard(key)
            self._evict_over_budget()
        # Autosave outside the in-memory lock: save() acquires the I/O lock
        # first, so saving from under `_lock` would invert the lock order.
        if self.autosave and self.path:
            self.save()
        elif self.write_behind:
            self._kick_flusher()

    def _evict_over_budget(self) -> int:
        """Drop least recently used entries until within budget; return count."""
        if self.max_entries is None:
            return 0
        evicted = 0
        while len(self._entries) > self.max_entries:
            key, _ = self._entries.popitem(last=False)
            self._stored_at.pop(key, None)
            self._dirty.discard(key)
            if self._backend.persistent:
                self._dead.add(key)
            evicted += 1
        self.stats.evictions += evicted
        return evicted

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._entries and not self._expired(key)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def keys(self) -> Iterator[str]:
        """Iterate over the stored canonical keys, least recently used first.

        Returns a snapshot, so iteration is safe against concurrent stores.
        """
        with self._lock:
            return iter(list(self._entries))

    def clear(self) -> None:
        """Drop every entry (statistics are kept; use ``reset_stats`` too).

        On persistent backends the dropped keys are marked dead, so the next
        flush or save removes them from the durable tier as well.
        """
        with self._lock:
            for key in list(self._entries):
                self._drop_entry(key)

    def add_hits(self, count: int) -> None:
        """Count ``count`` extra hits under the cache lock.

        For callers that answer duplicate submissions from captured payloads
        instead of per-key lookups (``BatchClassifier.classify_many``); a bare
        ``stats.hits += n`` from their thread would race the locked updates.
        """
        with self._lock:
            self.stats.hits += count

    def reset_stats(self) -> None:
        """Zero the hit/miss/eviction/expiry/flush counters."""
        self.stats = CacheStats()

    # ------------------------------------------------------------------
    # Durable persistence
    # ------------------------------------------------------------------
    def _load_initial(self) -> None:
        """Constructor-time load with quarantine-on-corruption semantics."""
        try:
            self.load()
        except CacheCorruptionError as error:
            if not self.quarantine:
                raise
            quarantined = self._backend.quarantine()
            logger.warning(
                "quarantined corrupt cache %s -> %s (%s); starting empty",
                self.path,
                quarantined,
                error,
            )

    def load(self) -> int:
        """(Re)load entries from the durable tier, merging over in-memory ones.

        The json backend accepts schema 1 (PR-1 ``{key: entry}`` object) and
        schema 2 (LRU ordered ``[[key, entry], ...]`` list); see the module
        docstring.  Loaded entries count as more recently used than existing
        in-memory ones, and the ``max_entries`` budget is enforced afterwards.

        Returns the number of loaded entries that *survive* in memory —
        duplicate keys and immediate over-budget eviction mean this can be
        less than the number of rows read.  Unknown schema versions and
        malformed entries are rejected with :class:`ValueError`; unreadable
        containers raise :class:`CacheCorruptionError`.
        """
        if not self.path:
            raise ValueError("cache has no backing path")
        rows = self._backend.load()
        now = time.time()
        with self._lock:
            loaded = set()
            for key, entry, stored_at in rows:
                self._entries[key] = entry
                self._entries.move_to_end(key)
                self._stored_at[key] = stored_at if stored_at is not None else now
                self._dead.discard(key)
                loaded.add(key)
            self._evict_over_budget()
            return sum(1 for key in loaded if key in self._entries)

    def export_text(self) -> str:
        """The cache content as the canonical schema-2 interchange document.

        This is the ``repro cache export`` payload: identical bytes for
        identical content regardless of backend (stable key order, compact
        separators, LRU entry order), so snapshots round-trip byte-for-byte
        through ``export`` → ``import`` → ``export`` across backends.
        """
        with self._lock:
            pairs = list(self._entries.items())
        return dump_snapshot_text(pairs)

    def _snapshot_rows(self) -> List[CacheRow]:
        """Full LRU-ordered row snapshot (lock must be held)."""
        return [
            (key, entry, self._stored_at.get(key))
            for key, entry in self._entries.items()
        ]

    def _remark_pending(self, upserts, deletes) -> None:
        """Re-mark keys after a failed backend write so nothing is lost."""
        with self._lock:
            for key, _, _ in upserts:
                if key in self._entries:
                    self._dirty.add(key)
            for key in deletes:
                if key not in self._entries:
                    self._dead.add(key)

    def _count_flush(self, written: int) -> None:
        with self._lock:
            self.stats.flushes += 1
            self.stats.flushed_entries += written
        self._last_flush = time.monotonic()

    def save(self) -> None:
        """Persist every entry as one full snapshot (schema 2 for json).

        Writes are atomic per backend (unique temp file + ``os.replace``,
        or one SQLite transaction) and serialized against other writers in
        this process by a dedicated I/O lock; the in-memory lock is held
        only while snapshotting the entries, so concurrent lookups and
        stores never wait on the disk.  Because the in-memory mapping is
        LRU-bounded, the durable tier never receives more than
        ``max_entries`` entries from us.  Clears the write-behind backlog.
        """
        if not self.path:
            raise ValueError("cache has no backing path")
        with self._io_lock:
            with self._lock:
                rows = self._snapshot_rows()
                deletes = list(self._dead)
                self._dirty.clear()
                self._dead.clear()
            try:
                written = self._backend.write_snapshot(rows, deletes)
            except BaseException:
                self._remark_pending(rows, deletes)
                raise
            if self._backend.persistent:
                self._count_flush(written)

    def flush(self) -> int:
        """Persist the pending write-behind increment now; return rows written.

        No-op (returning 0) when nothing is dirty or the backend is not
        persistent.  Partial-flush backends (sqlite) write only the dirty
        rows; whole-file backends rewrite the snapshot.
        """
        if not self._backend.persistent:
            return 0
        with self._io_lock:
            with self._lock:
                # O(dirty), not O(entries): partial-flush backends make the
                # per-store persistence cost independent of cache size, so
                # assembling the increment must not reintroduce a full scan.
                # Store-time order stands in for LRU order within the batch.
                dirty = sorted(
                    (key for key in self._dirty if key in self._entries),
                    key=lambda key: self._stored_at.get(key, 0.0),
                )
                upserts = [
                    (key, self._entries[key], self._stored_at.get(key))
                    for key in dirty
                ]
                deletes = list(self._dead)
                if not upserts and not deletes:
                    return 0
                self._dirty.clear()
                self._dead.clear()

            def snapshot():
                # Lazy: only whole-file backends pay for the full snapshot,
                # and they build it under the lock at write time.
                with self._lock:
                    return self._snapshot_rows()

            try:
                written = self._backend.flush(upserts, deletes, snapshot)
            except BaseException:
                self._remark_pending(upserts, deletes)
                raise
            self._count_flush(written)
        return written

    def compact(self) -> Dict[str, Any]:
        """Rewrite the durable tier from the (bounded) in-memory state.

        This is the maintenance pass for on-disk caches: opening an
        unbounded schema-1 file with a ``max_entries`` budget trims it in
        memory, and ``compact()`` then shrinks the store itself — a full
        snapshot rewrite plus space reclamation (``VACUUM`` for sqlite).  It
        is also the only operation that clears rows other processes wrote
        to a shared sqlite store, so run it from a single writer.  Returns a
        report with the entry count and store size before/after
        (``bytes_before`` is 0 when the store did not exist yet); the report
        is snapshotted under the cache locks, so its numbers are mutually
        consistent even with concurrent stores.
        """
        if not self.path:
            raise ValueError("cache has no backing path")
        with self._io_lock:
            bytes_before = self._backend.file_size()
            with self._lock:
                rows = self._snapshot_rows()
                entry_count = len(rows)
                self._dirty.clear()
                self._dead.clear()
            self._backend.compact(rows)
            if self._backend.persistent:
                self._count_flush(entry_count)
            return {
                "entries": entry_count,
                "bytes_before": bytes_before,
                "bytes_after": self._backend.file_size(),
                "backend": self._backend.name,
            }

    # ------------------------------------------------------------------
    # Write-behind flusher
    # ------------------------------------------------------------------
    def _kick_flusher(self) -> None:
        """Start (lazily) and wake the background flusher thread."""
        with self._flush_cv:
            if self._closed:
                return
            if self._flusher is None:
                self._flusher = threading.Thread(
                    target=self._flusher_loop,
                    name="repro-cache-flusher",
                    daemon=True,
                )
                self._flusher.start()
            self._flush_cv.notify_all()

    def _flush_due(self) -> bool:
        """Whether the pending backlog has hit a write-behind threshold."""
        pending = self.pending_dirty
        if not pending:
            return False
        if self.flush_max_dirty is not None and pending >= self.flush_max_dirty:
            return True
        if self.flush_interval is not None:
            return (time.monotonic() - self._last_flush) >= self.flush_interval
        return False

    def _flusher_loop(self) -> None:
        while True:
            with self._flush_cv:
                if self._closed:
                    return
                if not self._flush_due():
                    self._flush_cv.wait(timeout=self.flush_interval)
                if self._closed:
                    return
                if not self._flush_due():
                    continue
            try:
                self.flush()
            except Exception:
                logger.warning(
                    "write-behind flush of %s failed; will retry",
                    self.path,
                    exc_info=True,
                )
                with self._flush_cv:
                    if self._closed:
                        return
                    self._flush_cv.wait(timeout=self.flush_interval or 1.0)

    def close(self, save: bool = True) -> None:
        """Stop the flusher, persist outstanding state, release the backend.

        Idempotent.  With ``save=False`` (read-only CLI flows) the durable
        tier is left untouched and only resources are released.
        """
        with self._flush_cv:
            already_closed = self._closed
            self._closed = True
            flusher = self._flusher
            self._flusher = None
            self._flush_cv.notify_all()
        if flusher is not None:
            flusher.join(timeout=_FLUSHER_JOIN_TIMEOUT)
        if self._backend_closed or already_closed:
            return
        try:
            if save and self.path:
                self.save()
        finally:
            self._backend.close()
            self._backend_closed = True
