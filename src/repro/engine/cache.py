"""Classification cache keyed by canonical form, with LRU eviction and stats.

The cache stores *serialized* classification results (see
:mod:`repro.engine.serialization`) indexed by the canonical-form key of
:mod:`repro.engine.canonical`.  Stored results are expressed in the canonical
alphabet; translating them back into a caller's original alphabet is the
responsibility of :class:`repro.engine.batch.BatchClassifier`, which owns the
label bijections.

Two storage tiers are provided:

* an always-on in-memory mapping with least-recently-used (LRU) eviction
  under an optional ``max_entries`` budget, and
* an optional on-disk JSON file (``path=...``) so that expensive certificate
  searches survive process restarts.

The cache is **thread-safe**: every operation (lookup, store, save, load,
compact) holds an internal reentrant lock, so the worker threads of
:mod:`repro.workers` and concurrent service connection handlers can share
one instance without external serialization.

Eviction policy
---------------
When ``max_entries`` is set, the cache never holds more than that many
entries: :meth:`store` (and :meth:`load`) evict the least recently *used*
entries first.  "Used" means touched by :meth:`lookup` or :meth:`store`;
:meth:`peek` deliberately refreshes neither the statistics nor the recency
order.  Evictions are counted in :attr:`CacheStats.evictions`.  A cache with
``max_entries=None`` (the default) grows without bound, matching the PR-1
behavior.

On-disk format — schema 2 upgrade note
--------------------------------------
Schema 2 (current) is a single JSON object::

    {"schema": 2, "entries": [[key, result_dict], ...]}

where ``entries`` is a *list of pairs* in LRU order, least recently used
first, so that recency survives a save/load round trip.  Schema 1 (PR 1)
stored ``{"schema": 1, "entries": {key: result_dict}}`` — an unordered,
unbounded object.  :meth:`load` accepts **both** schemas: schema-1 files are
read with their JSON object order standing in for recency, and any entries
beyond the configured budget are evicted on load.  :meth:`save` always writes
schema 2, so a bounded cache never persists more than ``max_entries`` entries;
:meth:`compact` rewrites an oversized legacy file in place and reports the
bytes reclaimed.
"""

from __future__ import annotations

import json
import os
import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, Mapping, Optional

CACHE_SCHEMA_VERSION = 2
SUPPORTED_SCHEMA_VERSIONS = (1, 2)


@dataclass
class CacheStats:
    """Hit/miss/eviction counters of a :class:`ClassificationCache`."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def total(self) -> int:
        """Number of lookups performed."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups answered from the cache (0.0 when empty)."""
        if not self.total:
            return 0.0
        return self.hits / self.total

    def as_dict(self) -> Dict[str, Any]:
        """The statistics as a JSON-friendly dictionary."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "total": self.total,
            "hit_rate": self.hit_rate,
            "evictions": self.evictions,
        }


@dataclass
class ClassificationCache:
    """LRU-bounded in-memory + optional on-disk store of serialized results.

    Parameters
    ----------
    path:
        Optional JSON file backing the cache.  When given and the file exists,
        its entries are loaded on construction (schema 1 or 2, see the module
        docstring).
    autosave:
        When ``True`` (and ``path`` is set) every :meth:`store` immediately
        rewrites the backing file.  Defaults to ``False``; call :meth:`save`.
    max_entries:
        Optional LRU budget.  ``None`` (the default) means unbounded.  The
        in-memory mapping never exceeds this many entries, and because
        :meth:`save` snapshots that mapping, neither does the backing file.
    """

    path: Optional[str] = None
    autosave: bool = False
    max_entries: Optional[int] = None
    stats: CacheStats = field(default_factory=CacheStats)
    _entries: "OrderedDict[str, Dict[str, Any]]" = field(default_factory=OrderedDict)
    # Guards the LRU mapping and the stats counters: worker threads of the
    # scheduler (repro.workers) store results concurrently with lookups from
    # service connection handlers.  Reentrant because save() calls into
    # locked helpers (compact -> save, store -> autosave).  Held only for
    # dictionary operations — never across disk I/O, so a save() in progress
    # cannot stall lookups/stores (the scheduler calls those under its own
    # mutex).
    _lock: threading.RLock = field(
        default_factory=threading.RLock, repr=False, compare=False
    )
    # Serializes writers of the backing file: concurrent save() calls share
    # one temp path, so interleaving them would corrupt the file.
    _io_lock: threading.RLock = field(
        default_factory=threading.RLock, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        if self.max_entries is not None and self.max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {self.max_entries}")
        if self.path and os.path.exists(self.path):
            self.load()

    # ------------------------------------------------------------------
    # Lookup / store
    # ------------------------------------------------------------------
    def lookup(self, key: str) -> Optional[Dict[str, Any]]:
        """Return the stored result dict for ``key`` (counting a hit or miss).

        A hit refreshes the entry's LRU recency.
        """
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.stats.misses += 1
                return None
            self._entries.move_to_end(key)
            self.stats.hits += 1
            return entry

    def peek(self, key: str) -> Optional[Dict[str, Any]]:
        """Like :meth:`lookup` but touching neither statistics nor recency."""
        with self._lock:
            return self._entries.get(key)

    def store(self, key: str, result_payload: Mapping[str, Any]) -> None:
        """Store a serialized result under ``key`` (overwriting any old entry).

        The entry becomes the most recently used; when the ``max_entries``
        budget is exceeded, least recently used entries are evicted.
        """
        with self._lock:
            self._entries[key] = dict(result_payload)
            self._entries.move_to_end(key)
            self._evict_over_budget()
        # Autosave outside the in-memory lock: save() acquires the I/O lock
        # first, so saving from under `_lock` would invert the lock order.
        if self.autosave and self.path:
            self.save()

    def _evict_over_budget(self) -> int:
        """Drop least recently used entries until within budget; return count."""
        if self.max_entries is None:
            return 0
        evicted = 0
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
            evicted += 1
        self.stats.evictions += evicted
        return evicted

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._entries

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def keys(self) -> Iterator[str]:
        """Iterate over the stored canonical keys, least recently used first.

        Returns a snapshot, so iteration is safe against concurrent stores.
        """
        with self._lock:
            return iter(list(self._entries))

    def clear(self) -> None:
        """Drop every entry (statistics are kept; use ``reset_stats`` too)."""
        with self._lock:
            self._entries.clear()

    def add_hits(self, count: int) -> None:
        """Count ``count`` extra hits under the cache lock.

        For callers that answer duplicate submissions from captured payloads
        instead of per-key lookups (``BatchClassifier.classify_many``); a bare
        ``stats.hits += n`` from their thread would race the locked updates.
        """
        with self._lock:
            self.stats.hits += count

    def reset_stats(self) -> None:
        """Zero the hit/miss/eviction counters."""
        self.stats = CacheStats()

    # ------------------------------------------------------------------
    # On-disk persistence
    # ------------------------------------------------------------------
    def load(self) -> int:
        """(Re)load entries from :attr:`path`, merging over in-memory ones.

        Accepts schema 1 (PR-1 ``{key: entry}`` object) and schema 2 (LRU
        ordered ``[[key, entry], ...]`` list); see the module docstring.
        Loaded entries count as more recently used than existing in-memory
        ones, and the ``max_entries`` budget is enforced afterwards.

        Returns the number of entries loaded.  Unknown schema versions and
        malformed entries are rejected with :class:`ValueError` rather than
        silently misread.
        """
        if not self.path:
            raise ValueError("cache has no backing path")
        with open(self.path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
        schema = payload.get("schema")
        if schema not in SUPPORTED_SCHEMA_VERSIONS:
            raise ValueError(
                f"unsupported cache schema {schema!r} in {self.path}"
                f" (expected one of {SUPPORTED_SCHEMA_VERSIONS})"
            )
        raw_entries = payload.get("entries", {} if schema == 1 else [])
        if schema == 1:
            if not isinstance(raw_entries, dict):
                raise ValueError(f"malformed schema-1 entries in {self.path}")
            pairs = list(raw_entries.items())
        else:
            if not isinstance(raw_entries, list):
                raise ValueError(f"malformed schema-2 entries in {self.path}")
            pairs = []
            for pair in raw_entries:
                if not (isinstance(pair, list) and len(pair) == 2):
                    raise ValueError(f"malformed schema-2 entry pair in {self.path}")
                pairs.append((pair[0], pair[1]))
        for key, entry in pairs:
            if not isinstance(entry, dict) or "complexity" not in entry:
                raise ValueError(f"malformed cache entry {key!r} in {self.path}")
        with self._lock:
            for key, entry in pairs:
                self._entries[key] = entry
                self._entries.move_to_end(key)
            self._evict_over_budget()
        return len(pairs)

    def save(self) -> None:
        """Write every entry to :attr:`path` as a single schema-2 JSON document.

        The write is atomic (temp file + ``os.replace``) and serialized
        against other savers by a dedicated I/O lock; the in-memory lock is
        held only while snapshotting the entries, so concurrent lookups and
        stores never wait on the disk.  Because the in-memory mapping is
        LRU-bounded, the file never holds more than ``max_entries`` entries.
        """
        if not self.path:
            raise ValueError("cache has no backing path")
        directory = os.path.dirname(os.path.abspath(self.path))
        os.makedirs(directory, exist_ok=True)
        with self._io_lock:
            with self._lock:
                payload = {
                    "schema": CACHE_SCHEMA_VERSION,
                    "entries": [
                        [key, entry] for key, entry in self._entries.items()
                    ],
                }
            tmp_path = f"{self.path}.tmp"
            with open(tmp_path, "w", encoding="utf-8") as handle:
                json.dump(payload, handle, indent=None, sort_keys=True)
            os.replace(tmp_path, self.path)

    def compact(self) -> Dict[str, Any]:
        """Rewrite the backing file from the (bounded) in-memory state.

        This is the cheap maintenance pass for on-disk caches: opening an
        unbounded schema-1 file with a ``max_entries`` budget trims it in
        memory, and ``compact()`` then shrinks the file itself — one atomic
        snapshot write, no entry-by-entry rewriting.  Returns a small report
        with the entry count and the file size before/after (``bytes_before``
        is 0 when the file did not exist yet).
        """
        if not self.path:
            raise ValueError("cache has no backing path")
        bytes_before = (
            os.path.getsize(self.path) if os.path.exists(self.path) else 0
        )
        self.save()
        return {
            "entries": len(self._entries),
            "bytes_before": bytes_before,
            "bytes_after": os.path.getsize(self.path),
        }
