"""Classification cache keyed by canonical form, with hit/miss statistics.

The cache stores *serialized* classification results (see
:mod:`repro.engine.serialization`) indexed by the canonical-form key of
:mod:`repro.engine.canonical`.  Stored results are expressed in the canonical
alphabet; translating them back into a caller's original alphabet is the
responsibility of :class:`repro.engine.batch.BatchClassifier`, which owns the
label bijections.

Two storage tiers are provided:

* an always-on in-memory dictionary, and
* an optional on-disk JSON file (``path=...``) so that expensive certificate
  searches survive process restarts.  The on-disk format is a single JSON
  object ``{"schema": 1, "entries": {key: result_dict}}``; it is loaded lazily
  on construction and written back explicitly via :meth:`save` (or on every
  store with ``autosave=True``).
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, Mapping, Optional

CACHE_SCHEMA_VERSION = 1


@dataclass
class CacheStats:
    """Hit/miss counters of a :class:`ClassificationCache`."""

    hits: int = 0
    misses: int = 0

    @property
    def total(self) -> int:
        """Number of lookups performed."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups answered from the cache (0.0 when empty)."""
        if not self.total:
            return 0.0
        return self.hits / self.total

    def as_dict(self) -> Dict[str, Any]:
        """The statistics as a JSON-friendly dictionary."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "total": self.total,
            "hit_rate": self.hit_rate,
        }


@dataclass
class ClassificationCache:
    """In-memory + optional on-disk store of serialized classification results.

    Parameters
    ----------
    path:
        Optional JSON file backing the cache.  When given and the file exists,
        its entries are loaded on construction.
    autosave:
        When ``True`` (and ``path`` is set) every :meth:`store` immediately
        rewrites the backing file.  Defaults to ``False``; call :meth:`save`.
    """

    path: Optional[str] = None
    autosave: bool = False
    stats: CacheStats = field(default_factory=CacheStats)
    _entries: Dict[str, Dict[str, Any]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.path and os.path.exists(self.path):
            self.load()

    # ------------------------------------------------------------------
    # Lookup / store
    # ------------------------------------------------------------------
    def lookup(self, key: str) -> Optional[Dict[str, Any]]:
        """Return the stored result dict for ``key`` (counting a hit or miss)."""
        entry = self._entries.get(key)
        if entry is None:
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return entry

    def peek(self, key: str) -> Optional[Dict[str, Any]]:
        """Like :meth:`lookup` but without touching the statistics."""
        return self._entries.get(key)

    def store(self, key: str, result_payload: Mapping[str, Any]) -> None:
        """Store a serialized result under ``key`` (overwriting any old entry)."""
        self._entries[key] = dict(result_payload)
        if self.autosave and self.path:
            self.save()

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def keys(self) -> Iterator[str]:
        """Iterate over the stored canonical keys."""
        return iter(self._entries)

    def clear(self) -> None:
        """Drop every entry (statistics are kept; use ``reset_stats`` too)."""
        self._entries.clear()

    def reset_stats(self) -> None:
        """Zero the hit/miss counters."""
        self.stats = CacheStats()

    # ------------------------------------------------------------------
    # On-disk persistence
    # ------------------------------------------------------------------
    def load(self) -> int:
        """(Re)load entries from :attr:`path`, merging over in-memory ones.

        Returns the number of entries loaded.  Unknown schema versions are
        rejected with :class:`ValueError` rather than silently misread.
        """
        if not self.path:
            raise ValueError("cache has no backing path")
        with open(self.path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
        schema = payload.get("schema")
        if schema != CACHE_SCHEMA_VERSION:
            raise ValueError(
                f"unsupported cache schema {schema!r} in {self.path}"
                f" (expected {CACHE_SCHEMA_VERSION})"
            )
        entries = payload.get("entries", {})
        for key, entry in entries.items():
            if not isinstance(entry, dict) or "complexity" not in entry:
                raise ValueError(f"malformed cache entry {key!r} in {self.path}")
        self._entries.update(entries)
        return len(entries)

    def save(self) -> None:
        """Write every entry to :attr:`path` as a single JSON document."""
        if not self.path:
            raise ValueError("cache has no backing path")
        directory = os.path.dirname(os.path.abspath(self.path))
        os.makedirs(directory, exist_ok=True)
        payload = {"schema": CACHE_SCHEMA_VERSION, "entries": self._entries}
        tmp_path = f"{self.path}.tmp"
        with open(tmp_path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=None, sort_keys=True)
        os.replace(tmp_path, self.path)
