"""Canonical forms of LCL problems, invariant under label renaming.

Two LCL problems that differ only by a bijective renaming of their labels have
exactly the same round complexity (renaming commutes with every definition in
the paper), so re-running the exponential-time certificate searches on every
isomorphic copy is pure waste.  This module computes, for each problem, a
*canonical form*: a relabeling of the problem onto the fixed alphabet
``"0", "1", ..."`` such that every problem in the same renaming orbit maps to
the identical canonical problem.  The canonical form's stable text key is what
the classification cache (:mod:`repro.engine.cache`) uses as its index.

The construction is the classic two-step scheme for graph-like canonical
labelings:

1. *Invariant partition.*  Each label gets a renaming-invariant signature
   (how often it parents a configuration, its child-occurrence profile, its
   self-loop count, ...).  Sorting labels by signature splits the alphabet
   into ordered groups that any canonicalizing permutation must respect.
2. *Minimization within groups.*  Among all permutations that respect the
   group order, pick the one whose relabeled configuration list is
   lexicographically smallest.  Because an isomorphism between two problems
   maps signature groups onto signature groups, both problems range over the
   same candidate set and therefore pick the same minimum.

Alphabets in practice are tiny (the paper's examples use 2–4 labels), so the
within-group search is cheap.  As a safety valve, when the number of candidate
permutations exceeds :data:`MAX_CANONICAL_PERMUTATIONS` the search is skipped
and the signature order alone fixes the relabeling; the resulting key is still
deterministic for each concrete problem (so caching stays *correct*), it may
merely fail to merge some isomorphic copies (so caching gets *weaker*).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from itertools import permutations
from math import factorial
from typing import Dict, Iterator, List, Mapping, Sequence, Tuple

from ..core.configuration import Configuration, Label
from ..core.problem import LCLProblem

MAX_CANONICAL_PERMUTATIONS = 50_000
"""Upper bound on within-group permutations tried before falling back to
signature order only."""

_IndexedConfig = Tuple[int, Tuple[int, ...]]


def _label_signature(problem: LCLProblem, label: Label) -> Tuple:
    """A renaming-invariant signature of ``label`` inside ``problem``.

    The signature only aggregates *counts* (never label identities), so any
    bijective renaming preserves it.
    """
    parent_profiles: List[Tuple[int, int, int]] = []
    child_profile: List[Tuple[int, int]] = []
    for config in problem.configurations:
        occurrences = sum(1 for child in config.children if child == label)
        if config.parent == label:
            # (distinct children, occurrences of the label itself, special?)
            parent_profiles.append(
                (len(set(config.children)), occurrences, int(config.is_special()))
            )
        if occurrences:
            child_profile.append((occurrences, int(config.parent == label)))
    return (
        len(parent_profiles),
        sum(count for count, _ in child_profile),
        tuple(sorted(parent_profiles)),
        tuple(sorted(child_profile)),
    )


def _signature_groups(problem: LCLProblem) -> List[List[Label]]:
    """Partition the alphabet into signature groups, in canonical group order."""
    by_signature: Dict[Tuple, List[Label]] = {}
    for label in problem.sorted_labels():
        by_signature.setdefault(_label_signature(problem, label), []).append(label)
    return [by_signature[signature] for signature in sorted(by_signature)]


def _group_respecting_orders(groups: Sequence[Sequence[Label]]) -> Iterator[Tuple[Label, ...]]:
    """Yield every label ordering obtained by permuting within each group."""

    def recurse(index: int, prefix: Tuple[Label, ...]) -> Iterator[Tuple[Label, ...]]:
        if index == len(groups):
            yield prefix
            return
        for ordering in permutations(groups[index]):
            yield from recurse(index + 1, prefix + ordering)

    yield from recurse(0, ())


def _indexed_configurations(
    problem: LCLProblem, index_of: Mapping[Label, int]
) -> Tuple[_IndexedConfig, ...]:
    """The configuration set under a label→index assignment, in sorted order."""
    return tuple(
        sorted(
            (
                index_of[config.parent],
                tuple(sorted(index_of[child] for child in config.children)),
            )
            for config in problem.configurations
        )
    )


@dataclass(frozen=True)
class CanonicalForm:
    """The canonical relabeling of a problem.

    Attributes
    ----------
    problem:
        The original problem.
    canonical_problem:
        The problem relabeled onto the canonical alphabet ``"0", "1", ...``.
    forward:
        Bijection original label → canonical label.
    inverse:
        Bijection canonical label → original label.
    key:
        A stable, human-readable text key uniquely identifying the canonical
        problem (equal for every problem in the same renaming orbit).
    """

    problem: LCLProblem
    canonical_problem: LCLProblem
    forward: Mapping[Label, Label]
    inverse: Mapping[Label, Label]
    key: str

    @property
    def digest(self) -> str:
        """A short hex digest of :attr:`key`, handy for filenames and logs."""
        return hashlib.sha256(self.key.encode("utf-8")).hexdigest()[:16]


def canonical_form(problem: LCLProblem) -> CanonicalForm:
    """Compute the canonical form of ``problem`` (see the module docstring)."""
    groups = _signature_groups(problem)
    candidates = 1
    for group in groups:
        candidates *= factorial(len(group))

    best_order: Tuple[Label, ...]
    if candidates == 1 or candidates > MAX_CANONICAL_PERMUTATIONS:
        best_order = tuple(label for group in groups for label in group)
    else:
        best_order = min(
            _group_respecting_orders(groups),
            key=lambda order: _indexed_configurations(
                problem, {label: idx for idx, label in enumerate(order)}
            ),
        )

    forward = {label: str(index) for index, label in enumerate(best_order)}
    inverse = {canonical: label for label, canonical in forward.items()}
    canonical_problem = LCLProblem(
        delta=problem.delta,
        labels=frozenset(forward.values()),
        configurations=frozenset(
            Configuration(
                forward[config.parent],
                tuple(forward[child] for child in config.children),
            )
            for config in problem.configurations
        ),
        name="canonical",
    )
    key = canonical_key_of(canonical_problem)
    return CanonicalForm(
        problem=problem,
        canonical_problem=canonical_problem,
        forward=forward,
        inverse=inverse,
        key=key,
    )


def canonical_key_of(canonical_problem: LCLProblem) -> str:
    """Render the stable text key of an already-canonical problem."""
    config_text = "|".join(
        f"{config.parent}:{','.join(config.children)}"
        for config in canonical_problem.sorted_configurations()
    )
    return (
        f"d={canonical_problem.delta};"
        f"k={canonical_problem.num_labels};"
        f"C={config_text}"
    )


def canonical_key(problem: LCLProblem) -> str:
    """Shortcut: the canonical cache key of ``problem``."""
    return canonical_form(problem).key
