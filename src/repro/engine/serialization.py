"""JSON-friendly serialization of problems and classification results.

The batch engine needs classification results to survive two process
boundaries: the ``multiprocessing`` workers of
:class:`repro.engine.batch.BatchClassifier` and the on-disk JSON cache of
:class:`repro.engine.cache.ClassificationCache`.  This module converts the
core value types (:class:`~repro.core.problem.LCLProblem`,
:class:`~repro.core.complexity.ClassificationResult`,
:class:`~repro.core.classifier.ClassificationArtifacts`) to and from plain
dictionaries containing only JSON primitives.

Certificate *objects* (the materialized trees of
:mod:`repro.core.certificates`) are intentionally not serialized — they can
be rebuilt from the problem on demand — but every certificate *label set*
recorded in a :class:`ClassificationResult` is preserved, so a deserialized
result carries the same witnesses as the original.

The module also provides :func:`relabel_result`, which pushes a result
through a label bijection.  This is the key operation that lets the cache
store results in canonical labels and translate them back to each caller's
original alphabet (see :mod:`repro.engine.canonical`).
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional, Tuple

from ..core.classifier import ClassificationArtifacts
from ..core.complexity import ClassificationResult, ComplexityClass
from ..core.configuration import Configuration, Label
from ..core.problem import LCLProblem

SCHEMA_VERSION = 1
"""Version tag embedded in serialized payloads (bumped on incompatible changes)."""


# ----------------------------------------------------------------------
# Problems
# ----------------------------------------------------------------------
def problem_to_dict(problem: LCLProblem) -> Dict[str, Any]:
    """Serialize a problem to a JSON-friendly dictionary."""
    return {
        "delta": problem.delta,
        "labels": problem.sorted_labels(),
        "configurations": [
            [config.parent, list(config.children)]
            for config in problem.sorted_configurations()
        ],
        "name": problem.name,
    }


def problem_from_dict(payload: Mapping[str, Any]) -> LCLProblem:
    """Rebuild a problem from :func:`problem_to_dict` output."""
    return LCLProblem.create(
        delta=payload["delta"],
        configurations=[
            (parent, tuple(children)) for parent, children in payload["configurations"]
        ],
        labels=payload["labels"],
        name=payload.get("name", ""),
    )


# ----------------------------------------------------------------------
# Configurations and label sets
# ----------------------------------------------------------------------
def _configuration_to_list(config: Optional[Configuration]) -> Optional[List[Any]]:
    if config is None:
        return None
    return [config.parent, list(config.children)]


def _configuration_from_list(payload: Optional[List[Any]]) -> Optional[Configuration]:
    if payload is None:
        return None
    parent, children = payload
    return Configuration(parent, tuple(children))


def _labels_to_list(labels: Optional[frozenset]) -> Optional[List[Label]]:
    if labels is None:
        return None
    return sorted(labels)


def _labels_from_list(payload: Optional[List[Label]]) -> Optional[frozenset]:
    if payload is None:
        return None
    return frozenset(payload)


# ----------------------------------------------------------------------
# Classification results
# ----------------------------------------------------------------------
def result_to_dict(result: ClassificationResult) -> Dict[str, Any]:
    """Serialize a classification result to a JSON-friendly dictionary."""
    return {
        "schema": SCHEMA_VERSION,
        "complexity": result.complexity.name,
        "complexity_value": result.complexity.value,
        "polynomial_exponent_bound": result.polynomial_exponent_bound,
        "zero_round_solvable": result.zero_round_solvable,
        "log_certificate_labels": _labels_to_list(result.log_certificate_labels),
        "logstar_certificate_labels": _labels_to_list(result.logstar_certificate_labels),
        "constant_certificate_labels": _labels_to_list(result.constant_certificate_labels),
        "special_configuration": _configuration_to_list(result.special_configuration),
        "pruning_sets": [sorted(labels) for labels in result.pruning_sets],
        "notes": list(result.notes),
    }


def result_from_dict(payload: Mapping[str, Any]) -> ClassificationResult:
    """Rebuild a classification result from :func:`result_to_dict` output.

    Raises :class:`ValueError` on missing or unknown fields, so corrupt cache
    entries surface as clean errors rather than ``KeyError`` tracebacks.
    """
    try:
        complexity = ComplexityClass[payload["complexity"]]
    except KeyError as error:
        raise ValueError(f"malformed classification payload: {error}") from error
    return ClassificationResult(
        complexity=complexity,
        polynomial_exponent_bound=payload.get("polynomial_exponent_bound"),
        zero_round_solvable=payload.get("zero_round_solvable", False),
        log_certificate_labels=_labels_from_list(payload.get("log_certificate_labels")),
        logstar_certificate_labels=_labels_from_list(
            payload.get("logstar_certificate_labels")
        ),
        constant_certificate_labels=_labels_from_list(
            payload.get("constant_certificate_labels")
        ),
        special_configuration=_configuration_from_list(
            payload.get("special_configuration")
        ),
        pruning_sets=tuple(
            frozenset(labels) for labels in payload.get("pruning_sets", [])
        ),
        notes=tuple(payload.get("notes", [])),
    )


def artifacts_to_dict(artifacts: ClassificationArtifacts) -> Dict[str, Any]:
    """Serialize classification artifacts (problem + result + timing).

    The materialized certificate trees are dropped; their label sets live on
    inside the result.
    """
    return {
        "schema": SCHEMA_VERSION,
        "problem": problem_to_dict(artifacts.problem),
        "result": result_to_dict(artifacts.result),
        "elapsed_seconds": artifacts.elapsed_seconds,
    }


def artifacts_from_dict(payload: Mapping[str, Any]) -> ClassificationArtifacts:
    """Rebuild (certificate-free) artifacts from :func:`artifacts_to_dict` output."""
    return ClassificationArtifacts(
        problem=problem_from_dict(payload["problem"]),
        result=result_from_dict(payload["result"]),
        elapsed_seconds=payload.get("elapsed_seconds", 0.0),
    )


# ----------------------------------------------------------------------
# Relabeling results through a bijection
# ----------------------------------------------------------------------
def relabel_result(
    result: ClassificationResult, mapping: Mapping[Label, Label]
) -> ClassificationResult:
    """Push every label occurring in ``result`` through ``mapping``.

    Labels missing from ``mapping`` are kept as-is, mirroring
    :meth:`LCLProblem.relabel`.  The complexity class, exponent bound,
    zero-round flag and notes are renaming-invariant and pass through
    unchanged; certificate label sets, pruning sets and the special
    configuration are translated.
    """

    def map_label(label: Label) -> Label:
        return mapping.get(label, label)

    def map_labels(labels: Optional[frozenset]) -> Optional[frozenset]:
        if labels is None:
            return None
        return frozenset(map_label(label) for label in labels)

    special = result.special_configuration
    if isinstance(special, Configuration):
        special = Configuration(
            map_label(special.parent),
            tuple(map_label(child) for child in special.children),
        )
    pruning: Tuple[frozenset, ...] = tuple(
        frozenset(map_label(label) for label in labels) for labels in result.pruning_sets
    )
    return ClassificationResult(
        complexity=result.complexity,
        polynomial_exponent_bound=result.polynomial_exponent_bound,
        zero_round_solvable=result.zero_round_solvable,
        log_certificate_labels=map_labels(result.log_certificate_labels),
        logstar_certificate_labels=map_labels(result.logstar_certificate_labels),
        constant_certificate_labels=map_labels(result.constant_certificate_labels),
        special_configuration=special,
        pruning_sets=pruning,
        notes=result.notes,
    )
