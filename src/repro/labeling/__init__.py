"""Labelings of rooted trees: verification and reference solvers."""

from .verifier import (
    Labeling,
    VerificationReport,
    Violation,
    assert_valid_labeling,
    is_valid_labeling,
    labeling_uses_labels,
    verify_labeling,
)
from .brute_force import (
    brute_force_solve,
    count_solutions,
    greedy_top_down_solve,
    solvable_on_tree,
)

__all__ = [
    "Labeling",
    "VerificationReport",
    "Violation",
    "assert_valid_labeling",
    "brute_force_solve",
    "count_solutions",
    "greedy_top_down_solve",
    "is_valid_labeling",
    "labeling_uses_labels",
    "solvable_on_tree",
    "verify_labeling",
]
