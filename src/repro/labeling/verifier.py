"""Verification of LCL solutions (Definition 4.2).

A *labeling* assigns a label to every node of a rooted tree.  It is a valid
solution of a problem ``Π = (δ, Σ, C)`` when every node with exactly ``δ``
children uses an allowed configuration together with its children; nodes with a
different number of children (in particular leaves) are unconstrained.

The verifier is the ground truth used by the tests to check every solver and
certificate-driven algorithm in the repository.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..core.configuration import Configuration, Label
from ..core.problem import LCLProblem
from ..trees.rooted_tree import RootedTree

Labeling = Dict[int, Label]
"""A labeling maps node identifiers to labels."""


@dataclass(frozen=True)
class Violation:
    """A single constraint violation found by the verifier."""

    node: int
    reason: str
    configuration: Optional[Configuration] = None

    def __str__(self) -> str:  # pragma: no cover - convenience
        return f"node {self.node}: {self.reason}"


@dataclass(frozen=True)
class VerificationReport:
    """The outcome of verifying a labeling against a problem."""

    valid: bool
    violations: Tuple[Violation, ...] = field(default_factory=tuple)
    checked_nodes: int = 0

    def __bool__(self) -> bool:
        return self.valid


def verify_labeling(
    problem: LCLProblem,
    tree: RootedTree,
    labeling: Mapping[int, Label],
    max_violations: int = 16,
) -> VerificationReport:
    """Verify ``labeling`` as a solution of ``problem`` on ``tree`` (Definition 4.2).

    Parameters
    ----------
    problem, tree, labeling:
        The problem, the instance, and the candidate solution.
    max_violations:
        Stop collecting violations after this many (the report is still marked
        invalid); pass a large value to collect everything.
    """
    violations: List[Violation] = []
    checked = 0
    for node in tree.nodes():
        label = labeling.get(node)
        if label is None:
            violations.append(Violation(node, "node is unlabeled"))
        elif label not in problem.labels:
            violations.append(Violation(node, f"label {label!r} is not in the alphabet"))
        if len(violations) >= max_violations:
            return VerificationReport(False, tuple(violations), checked)

    for node in tree.internal_nodes():
        children = tree.children[node]
        if len(children) != problem.delta:
            continue  # nodes with a different number of children are unconstrained
        checked += 1
        label = labeling.get(node)
        child_labels = tuple(labeling.get(child) for child in children)
        if label is None or any(child is None for child in child_labels):
            continue  # already reported as unlabeled above
        config = Configuration(label, tuple(child_labels))  # type: ignore[arg-type]
        if config not in problem.configurations:
            violations.append(
                Violation(node, "configuration not allowed", configuration=config)
            )
            if len(violations) >= max_violations:
                break
    return VerificationReport(not violations, tuple(violations), checked)


def is_valid_labeling(
    problem: LCLProblem, tree: RootedTree, labeling: Mapping[int, Label]
) -> bool:
    """Shorthand for ``verify_labeling(...).valid``."""
    return verify_labeling(problem, tree, labeling).valid


def assert_valid_labeling(
    problem: LCLProblem, tree: RootedTree, labeling: Mapping[int, Label]
) -> None:
    """Raise ``AssertionError`` with a readable message when the labeling is invalid."""
    report = verify_labeling(problem, tree, labeling)
    if not report.valid:
        details = "; ".join(str(violation) for violation in report.violations[:5])
        raise AssertionError(f"invalid labeling for {problem.name or 'problem'}: {details}")


def labeling_uses_labels(labeling: Mapping[int, Label], allowed: Sequence[Label]) -> bool:
    """Whether the labeling uses only labels from ``allowed``."""
    allowed_set = frozenset(allowed)
    return all(label in allowed_set for label in labeling.values())
