"""Reference solvers: exhaustive and greedy labelings of small trees.

These centralized solvers serve as ground truth for the distributed algorithms
and for cross-validating the classifier:

* :func:`brute_force_solve` — backtracking over all labelings (exponential, only
  for small trees),
* :func:`greedy_top_down_solve` — labels the tree top-down staying inside the
  greatest fixed point of "has a continuation below"; succeeds exactly when the
  problem is solvable,
* :func:`count_solutions` — the number of valid labelings (used by property
  tests on tiny instances).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..core.configuration import Configuration, Label
from ..core.problem import LCLProblem
from ..trees.rooted_tree import RootedTree
from .verifier import Labeling


def _constrained_nodes(problem: LCLProblem, tree: RootedTree) -> List[int]:
    """Internal nodes with exactly ``δ`` children (the constrained ones)."""
    return [
        node
        for node in tree.internal_nodes()
        if len(tree.children[node]) == problem.delta
    ]


def brute_force_solve(problem: LCLProblem, tree: RootedTree) -> Optional[Labeling]:
    """Find a valid labeling by backtracking, or return ``None`` if none exists.

    Nodes are processed in breadth-first order; when a node's configuration with
    its parent cannot be completed the search backtracks.  Intended for trees of
    at most a few dozen nodes.
    """
    order = tree.bfs_order()
    labels = problem.sorted_labels()
    labeling: Dict[int, Label] = {}
    constrained = set(_constrained_nodes(problem, tree))

    def compatible(node: int) -> bool:
        """Check the configuration of ``node``'s parent when all its children are labeled."""
        parent = tree.parent[node]
        if parent is None or parent not in constrained:
            return True
        children = tree.children[parent]
        if any(child not in labeling for child in children):
            return True
        config = Configuration(labeling[parent], tuple(labeling[child] for child in children))
        return config in problem.configurations

    def backtrack(index: int) -> bool:
        if index == len(order):
            return True
        node = order[index]
        for label in labels:
            labeling[node] = label
            if compatible(node) and backtrack(index + 1):
                return True
            del labeling[node]
        return False

    if backtrack(0):
        return dict(labeling)
    return None


def greedy_top_down_solve(problem: LCLProblem, tree: RootedTree) -> Optional[Labeling]:
    """Label the tree top-down using labels with infinite continuations.

    The root receives any label of the greatest fixed point; every constrained
    internal node then picks a configuration whose children stay inside the
    fixed point.  Unconstrained nodes (leaves, or internal nodes with a number of
    children different from ``δ``) inherit whatever label the parent's
    configuration assigned, or the smallest fixed-point label.
    """
    viable = problem.infinite_continuation_labels()
    if not viable:
        return None
    default = min(viable)
    labeling: Dict[int, Label] = {}
    for node in tree.bfs_order():
        if node not in labeling:
            labeling[node] = default
        children = tree.children[node]
        if len(children) != problem.delta:
            continue
        config = problem.continuation_of(labeling[node], viable)
        if config is None:
            return None
        for child, child_label in zip(children, config.children):
            labeling[child] = child_label
    return labeling


def count_solutions(problem: LCLProblem, tree: RootedTree, limit: int = 1_000_000) -> int:
    """Count the valid labelings of ``tree`` (up to ``limit``)."""
    order = tree.bfs_order()
    labels = problem.sorted_labels()
    labeling: Dict[int, Label] = {}
    constrained = set(_constrained_nodes(problem, tree))
    count = 0

    def compatible(node: int) -> bool:
        parent = tree.parent[node]
        if parent is None or parent not in constrained:
            return True
        children = tree.children[parent]
        if any(child not in labeling for child in children):
            return True
        config = Configuration(labeling[parent], tuple(labeling[child] for child in children))
        return config in problem.configurations

    def backtrack(index: int) -> None:
        nonlocal count
        if count >= limit:
            return
        if index == len(order):
            count += 1
            return
        node = order[index]
        for label in labels:
            labeling[node] = label
            if compatible(node):
                backtrack(index + 1)
            del labeling[node]
            if count >= limit:
                return

    backtrack(0)
    return count


def solvable_on_tree(problem: LCLProblem, tree: RootedTree) -> bool:
    """Whether the problem admits any valid labeling of ``tree``."""
    return brute_force_solve(problem, tree) is not None
