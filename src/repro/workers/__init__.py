"""Parallel execution subsystem: worker backends + single-flight scheduling.

The exponential certificate searches dominate every census; this package
decides *where* they run, *in what order*, and *for how long*, and guarantees
each distinct canonical problem is searched **at most once at a time**,
however many callers ask for it:

* :mod:`repro.workers.backends` — pluggable execution backends behind one
  ``submit() -> Future`` interface: ``inline`` (synchronous, the classic
  serial path), ``threads`` (concurrent in-process execution, the service
  default), and ``processes`` (true CPU parallelism for cold censuses),
  selected by ``--worker-backend``/``--workers`` on the CLI.  The
  deadline-aware edge is :meth:`~repro.workers.backends.WorkerBackend.submit_task`,
  which installs a :class:`~repro.core.cancellation.CancelToken` where the
  task runs and returns a :class:`~repro.workers.backends.TaskHandle` whose
  ``kill()`` hard-terminates deadline-carrying ``processes`` searches.
* :mod:`repro.workers.scheduler` — :class:`ClassificationScheduler`, the
  canonical-keyed job scheduler with single-flight deduplication, a
  priority heap (``interactive`` > ``batch`` > ``warm``, admission-limited
  to the backend's worker count), per-submission deadlines enforced by a
  monitor thread, and per-waiter cancellation (cancelling the last waiter
  cancels the search and releases its slot).  Expired/cancelled searches
  are recorded as ``timeouts``/``cancelled`` in the live stats and never
  stored in the shared :class:`~repro.engine.cache.ClassificationCache`.
  Its :meth:`warm` method pre-schedules a workload's canonical keys — the
  engine behind the service's ``warm`` operation and ``python -m repro
  client warm``.

Both :class:`~repro.engine.batch.BatchClassifier` and the classification
service route all search execution through this package; neither holds a
process-wide work lock anymore.
"""

from ..core.cancellation import (
    CancelToken,
    SearchCancelled,
    SearchInterrupted,
    SearchTimeout,
)
from .backends import (
    BACKEND_NAMES,
    DEFAULT_WORKERS,
    InlineBackend,
    ProcessBackend,
    TaskHandle,
    ThreadBackend,
    WorkerBackend,
    create_backend,
    usable_cpus,
)
from .metrics import BUCKET_BOUNDS_MS, SearchTimeStats
from .scheduler import (
    DEFAULT_PRIORITY,
    JOB_CACHE_HIT,
    JOB_SCHEDULED,
    JOB_SHARED,
    PRIORITIES,
    PRIORITY_RANK,
    ClassificationJob,
    ClassificationScheduler,
    SchedulerStats,
    execute_search,
    validate_priority,
)

__all__ = [
    "BACKEND_NAMES",
    "BUCKET_BOUNDS_MS",
    "CancelToken",
    "ClassificationJob",
    "ClassificationScheduler",
    "DEFAULT_PRIORITY",
    "DEFAULT_WORKERS",
    "InlineBackend",
    "JOB_CACHE_HIT",
    "JOB_SCHEDULED",
    "JOB_SHARED",
    "PRIORITIES",
    "PRIORITY_RANK",
    "ProcessBackend",
    "SchedulerStats",
    "SearchCancelled",
    "SearchTimeStats",
    "SearchInterrupted",
    "SearchTimeout",
    "TaskHandle",
    "ThreadBackend",
    "WorkerBackend",
    "create_backend",
    "execute_search",
    "usable_cpus",
    "validate_priority",
]
