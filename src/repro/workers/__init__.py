"""Parallel execution subsystem: worker backends + single-flight scheduling.

The exponential certificate searches dominate every census; this package
decides *where* they run and guarantees each distinct canonical problem is
searched **at most once at a time**, however many callers ask for it:

* :mod:`repro.workers.backends` — pluggable execution backends behind one
  ``submit() -> Future`` interface: ``inline`` (synchronous, the classic
  serial path), ``threads`` (concurrent in-process execution, the service
  default), and ``processes`` (true CPU parallelism for cold censuses),
  selected by ``--worker-backend``/``--workers`` on the CLI.
* :mod:`repro.workers.scheduler` — :class:`ClassificationScheduler`, the
  canonical-keyed job scheduler with single-flight deduplication: concurrent
  submissions of the same uncached key share one in-flight future, results
  land in the shared :class:`~repro.engine.cache.ClassificationCache`, and
  live counters (scheduled / deduped / cache hits / in flight / utilization)
  feed the service's ``stats`` frames.  Its :meth:`warm` method pre-schedules
  a workload's canonical keys — the engine behind the service's ``warm``
  operation and ``python -m repro client warm``.

Both :class:`~repro.engine.batch.BatchClassifier` and the classification
service route all search execution through this package; neither holds a
process-wide work lock anymore.
"""

from .backends import (
    BACKEND_NAMES,
    DEFAULT_WORKERS,
    InlineBackend,
    ProcessBackend,
    ThreadBackend,
    WorkerBackend,
    create_backend,
    usable_cpus,
)
from .scheduler import (
    JOB_CACHE_HIT,
    JOB_SCHEDULED,
    JOB_SHARED,
    ClassificationJob,
    ClassificationScheduler,
    SchedulerStats,
    execute_search,
)

__all__ = [
    "BACKEND_NAMES",
    "DEFAULT_WORKERS",
    "ClassificationJob",
    "ClassificationScheduler",
    "InlineBackend",
    "JOB_CACHE_HIT",
    "JOB_SCHEDULED",
    "JOB_SHARED",
    "ProcessBackend",
    "SchedulerStats",
    "ThreadBackend",
    "WorkerBackend",
    "create_backend",
    "execute_search",
    "usable_cpus",
]
