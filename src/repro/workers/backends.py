"""Execution backends for the parallel classification scheduler.

A :class:`WorkerBackend` turns a picklable/callable task into a
:class:`concurrent.futures.Future`.  Three implementations cover the
trade-off space of the exponential certificate searches:

* :class:`InlineBackend` — runs the task synchronously in the caller's
  thread and returns an already-resolved future.  Zero overhead, zero
  concurrency: the behavior of the pre-workers engine, and the default of
  :class:`~repro.engine.batch.BatchClassifier`.
* :class:`ThreadBackend` — a :class:`~concurrent.futures.ThreadPoolExecutor`.
  The searches are pure-Python and hold the GIL, so threads buy *concurrency*
  (many requests in flight, streaming stays live, single-flight dedup gets a
  window to merge duplicates) rather than CPU parallelism.  This is the
  service default: it removes head-of-line blocking between independent
  requests without process-spawn cost.
* :class:`ProcessBackend` — a :class:`~concurrent.futures.ProcessPoolExecutor`.
  True CPU parallelism for cold, duplicate-poor workloads; tasks and results
  cross the process boundary as plain dicts (:mod:`repro.engine.serialization`).
  When the platform cannot spawn workers (sandboxes without ``/dev/shm`` or
  fork rights), submitted tasks transparently degrade to inline execution
  instead of failing the job.

Cancellation and deadlines
--------------------------
:meth:`WorkerBackend.submit_task` is the deadline-aware edge used by the
scheduler: it takes an optional :class:`~repro.core.cancellation.CancelToken`
and returns a :class:`TaskHandle` (a future plus a best-effort ``kill()``).
Each backend maps the token onto its own execution model:

* ``inline`` and ``threads`` install the token as the executing thread's
  *cancel scope* (:func:`repro.core.cancellation.cancel_scope`); the search
  loops poll it via ``checkpoint()`` and unwind cooperatively.  ``kill()``
  can only prevent a still-queued thread task (``Future.cancel``) — a running
  one stops at its next checkpoint.
* ``processes`` runs tasks marked ``killable`` (the scheduler marks searches
  whose creating submission carries a deadline) on a **dedicated,
  hard-killable** :class:`multiprocessing.Process` instead of the shared
  pool: the child installs a cancel scope armed with the token's remaining
  budget and a shared ``multiprocessing.Event`` mirror of the cancel flag,
  and ``kill()`` simply terminates the child — the only way to reclaim a
  worker from a search that never reaches a checkpoint.  Everything else
  keeps using the warm pool (a cancel there only detaches the waiters; the
  pool worker finishes and the result is discarded).

:func:`create_backend` maps the CLI/service spelling (``--worker-backend
inline|threads|processes``, ``--workers N``) onto an instance.
"""

from __future__ import annotations

import multiprocessing
import os
import threading
import time
from concurrent.futures import BrokenExecutor, Future, ProcessPoolExecutor, ThreadPoolExecutor
from typing import Any, Callable, Optional, Tuple

from ..core.cancellation import (
    CancelToken,
    SearchCancelled,
    SearchTimeout,
    TIMEOUT,
    cancel_scope,
)

BACKEND_NAMES: Tuple[str, ...] = ("inline", "threads", "processes")
"""Valid ``--worker-backend`` spellings, in increasing order of parallelism."""


def usable_cpus() -> int:
    """CPUs this process may actually be scheduled on.

    ``sched_getaffinity`` respects cpuset/affinity masks (``taskset``,
    Kubernetes cpusets) that ``os.cpu_count()`` ignores, making it the less
    dishonest pool-sizing number on shared hosts.  CFS bandwidth quotas
    (``docker run --cpus=N``) are visible to neither call.  Falls back to
    ``cpu_count`` on platforms without affinity support.
    """
    try:
        return len(os.sched_getaffinity(0)) or 1
    except AttributeError:  # pragma: no cover - non-Linux platforms
        return os.cpu_count() or 1


DEFAULT_WORKERS = max(usable_cpus(), 1)
"""Worker count used when a pool backend is requested without ``--workers``."""


class TaskHandle:
    """A running (or finished) backend task: its future plus best-effort kill.

    ``kill()`` uses the backend-specific hard kill when one exists
    (terminating the dedicated process of a cancellable ``processes`` task —
    its watcher thread then resolves the future with the token's verdict);
    otherwise it falls back to preventing a not-yet-started task
    (``Future.cancel``).  It returns ``True`` when the task was positively
    stopped; ``False`` means the task keeps running until it observes its
    cancel token at a checkpoint (the cooperative backends) or completes.
    """

    __slots__ = ("future", "_kill")

    def __init__(
        self, future: "Future[Any]", kill: Optional[Callable[[], bool]] = None
    ) -> None:
        self.future = future
        self._kill = kill

    def kill(self) -> bool:
        if self._kill is not None:
            # The hard kill owns the future's resolution: do NOT cancel the
            # future here, or the real terminate would be skipped and the
            # watcher would race an already-cancelled future.
            return self._kill()
        return self.future.cancel()


class WorkerBackend:
    """Interface of an execution backend: submit tasks, expose capacity."""

    name: str = "abstract"

    def __init__(self, workers: int = 1) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = workers

    def submit(self, fn: Callable[..., Any], *args: Any) -> "Future[Any]":
        """Run ``fn(*args)`` on the backend; return a future for its result."""
        raise NotImplementedError

    def submit_task(
        self,
        fn: Callable[..., Any],
        *args: Any,
        token: Optional[CancelToken] = None,
        killable: bool = False,
    ) -> TaskHandle:
        """Run ``fn(*args)`` under ``token``'s cancel scope; return a handle.

        ``killable=True`` asks for hard-kill support where the backend can
        provide it (the ``processes`` backend then uses a dedicated
        terminable worker instead of its pool); cooperative backends ignore
        the hint.  The default implementation ignores the token too (backends
        that cannot propagate one still execute the task); the concrete
        backends override it to install the scope where the task runs.
        """
        return TaskHandle(self.submit(fn, *args))

    @property
    def synchronous(self) -> bool:
        """True when ``submit`` executes the task before returning.

        Callers that fan submissions out up front (the service's streaming
        path) must not do so on a synchronous backend — the fan-out itself
        would run every task back to back.
        """
        return False

    def probe(self) -> None:
        """Eagerly verify the backend can actually execute work.

        Pool backends that initialize lazily (``processes``) spawn their
        workers here, so properties like :attr:`synchronous` reflect reality
        *before* the first real task instead of after it.  A no-op for
        backends with nothing to spawn.
        """

    def close(self) -> None:
        """Release pool resources.  Safe to call twice; inline is a no-op."""

    def describe(self) -> dict:
        """JSON-friendly configuration of this backend (for stats frames)."""
        return {"backend": self.name, "workers": self.workers}

    def __enter__(self) -> "WorkerBackend":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(workers={self.workers})"


class InlineBackend(WorkerBackend):
    """Synchronous execution in the submitting thread (no pool at all)."""

    name = "inline"

    def __init__(self, workers: int = 1) -> None:
        super().__init__(workers=1)

    @property
    def synchronous(self) -> bool:
        return True

    def submit(self, fn: Callable[..., Any], *args: Any) -> "Future[Any]":
        future: "Future[Any]" = Future()
        try:
            future.set_result(fn(*args))
        except BaseException as error:  # noqa: BLE001 - future carries it
            future.set_exception(error)
        return future

    def submit_task(
        self,
        fn: Callable[..., Any],
        *args: Any,
        token: Optional[CancelToken] = None,
        killable: bool = False,
    ) -> TaskHandle:
        future: "Future[Any]" = Future()
        if token is not None:
            token.started_at = time.monotonic()
        try:
            with cancel_scope(token):
                future.set_result(fn(*args))
        except BaseException as error:  # noqa: BLE001 - future carries it
            future.set_exception(error)
        return TaskHandle(future)


def _run_in_scope(fn: Callable[..., Any], args: Tuple[Any, ...], token: Optional[CancelToken]) -> Any:
    """Execute ``fn(*args)`` with ``token`` installed on the worker thread."""
    if token is not None:
        # Stamp when the task actually starts running (queue time excluded) —
        # the tracing layer turns this into the admitted→running gap.
        token.started_at = time.monotonic()
    with cancel_scope(token):
        return fn(*args)


class ThreadBackend(WorkerBackend):
    """A thread pool: concurrent (GIL-interleaved) in-process execution."""

    name = "threads"

    def __init__(self, workers: int = DEFAULT_WORKERS) -> None:
        super().__init__(workers=workers)
        self._executor = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="repro-worker"
        )

    def submit(self, fn: Callable[..., Any], *args: Any) -> "Future[Any]":
        return self._executor.submit(fn, *args)

    def submit_task(
        self,
        fn: Callable[..., Any],
        *args: Any,
        token: Optional[CancelToken] = None,
        killable: bool = False,
    ) -> TaskHandle:
        return TaskHandle(self._executor.submit(_run_in_scope, fn, args, token))

    def close(self) -> None:
        self._executor.shutdown(wait=True)


def _killable_child(
    conn: Any,
    fn: Callable[..., Any],
    args: Tuple[Any, ...],
    budget: Optional[float],
    flag: Any,
) -> None:
    """Entry point of a dedicated killable worker process.

    Installs a cancel scope rebuilt from the parent token's *remaining*
    budget and the shared ``multiprocessing.Event`` flag, so the child both
    times itself out cooperatively and observes explicit cancellation — the
    parent's ``terminate()`` is only the backstop for searches that never
    reach a checkpoint.  The result (or the exception) is shipped back over
    ``conn``; unpicklable exceptions degrade to a ``RuntimeError`` repr.
    """
    deadline = time.monotonic() + budget if budget is not None else None
    token = CancelToken(deadline=deadline, flag=flag)
    try:
        with cancel_scope(token):
            result = fn(*args)
        payload: Tuple[str, Any] = ("ok", result)
    except BaseException as error:  # noqa: BLE001 - shipped to the parent
        payload = ("error", error)
    try:
        conn.send(payload)
    except Exception:  # noqa: BLE001 - e.g. unpicklable exception instance
        conn.send(("error", RuntimeError(repr(payload[1]))))
    finally:
        conn.close()


class ProcessBackend(WorkerBackend):
    """A process pool: true CPU parallelism for the certificate searches.

    The pool is created lazily on first submit, so merely constructing a
    classifier with ``--worker-backend processes`` costs nothing until a cold
    representative actually needs a search.  If the pool cannot be created or
    breaks (sandboxed environments), tasks fall back to inline execution and
    :attr:`degraded` is set — the job still completes, just without
    parallelism.

    Tasks submitted with a cancel token run on a dedicated
    :class:`multiprocessing.Process` instead of the pool (see
    :func:`_killable_child`): the process boundary is the one place where a
    *hard* kill is possible, and a per-search process is what lets
    ``kill()`` reclaim the worker from a search that never checkpoints.
    """

    name = "processes"

    # How often the watcher thread of a killable task polls for its result
    # and for cancellation.  Bounds the latency between `token.cancel()` and
    # the terminate() backstop.
    _POLL_SECONDS = 0.05

    def __init__(self, workers: int = DEFAULT_WORKERS) -> None:
        super().__init__(workers=workers)
        self._executor: Optional[ProcessPoolExecutor] = None
        self._executor_lock = threading.Lock()
        self._closed = False
        self.degraded = False

    @property
    def synchronous(self) -> bool:
        # A degraded pool executes submissions inline in the caller.
        return self.degraded

    def _ensure_executor(self) -> Optional[ProcessPoolExecutor]:
        with self._executor_lock:
            if self._closed:
                raise RuntimeError("cannot submit to a closed ProcessBackend")
            if self.degraded:
                return None
            if self._executor is None:
                try:
                    self._executor = ProcessPoolExecutor(max_workers=self.workers)
                except (OSError, ValueError):  # pragma: no cover - sandboxing
                    self.degraded = True
                    return None
            return self._executor

    def probe(self) -> None:
        """Spawn the pool and run one trivial task through it.

        After this returns, :attr:`degraded` (and therefore
        :attr:`synchronous`) is accurate — the service probes at startup so
        its streaming strategy matches how tasks will really execute.
        """
        self.submit(int).result(timeout=300)

    def submit(self, fn: Callable[..., Any], *args: Any) -> "Future[Any]":
        executor = self._ensure_executor()
        if executor is None:  # pragma: no cover - sandboxing
            return InlineBackend().submit(fn, *args)
        try:
            inner = executor.submit(fn, *args)
        except (RuntimeError, BrokenExecutor):  # pragma: no cover - pool died
            self.degraded = True
            return InlineBackend().submit(fn, *args)
        proxy: "Future[Any]" = Future()

        def relay(done: "Future[Any]") -> None:
            error = done.exception()
            if isinstance(error, (BrokenExecutor, OSError)):
                # The pool broke underneath the task (worker killed, spawn
                # denied): degrade to inline so the job is not lost.
                self.degraded = True  # pragma: no cover - sandboxing
                try:  # pragma: no cover
                    proxy.set_result(fn(*args))
                except BaseException as inline_error:  # noqa: BLE001
                    proxy.set_exception(inline_error)
            elif error is not None:
                proxy.set_exception(error)
            else:
                proxy.set_result(done.result())

        inner.add_done_callback(relay)
        return proxy

    def submit_task(
        self,
        fn: Callable[..., Any],
        *args: Any,
        token: Optional[CancelToken] = None,
        killable: bool = False,
    ) -> TaskHandle:
        if token is None or not killable:
            # Plain searches keep the warm pool (and its reuse).  A token
            # cannot cross into pool workers, so cancelling such a task only
            # detaches its waiters: the pool worker finishes the search and
            # the result is discarded (documented zombie).
            return TaskHandle(self.submit(fn, *args))
        with self._executor_lock:
            if self._closed:
                raise RuntimeError("cannot submit to a closed ProcessBackend")
            degraded = self.degraded
        if degraded:  # pragma: no cover - sandboxing
            return InlineBackend().submit_task(fn, *args, token=token)
        try:
            return self._spawn_killable(fn, args, token)
        except OSError:  # pragma: no cover - sandboxing
            self.degraded = True
            return InlineBackend().submit_task(fn, *args, token=token)

    def _spawn_killable(
        self, fn: Callable[..., Any], args: Tuple[Any, ...], token: CancelToken
    ) -> TaskHandle:
        """One dedicated, terminable process for one cancellable search."""
        receiver, sender = multiprocessing.Pipe(duplex=False)
        flag = multiprocessing.Event()
        if token.cancelled:
            flag.set()
        process = multiprocessing.Process(
            target=_killable_child,
            args=(sender, fn, args, token.remaining(), flag),
            daemon=True,
        )
        token.started_at = time.monotonic()  # parent-side approximation
        process.start()
        sender.close()  # the parent only reads; EOF then means "child died"
        future: "Future[Any]" = Future()

        def kill() -> bool:
            token.cancel()
            flag.set()
            if process.is_alive():
                process.terminate()
            return True

        def resolve(action: Callable[[], None]) -> None:
            # The future is normally ours alone to resolve, but guard anyway:
            # racing a stray cancellation must not crash the watcher thread.
            try:
                action()
            except Exception:  # pragma: no cover - InvalidStateError race
                pass

        def watch() -> None:
            payload: Optional[Tuple[str, Any]] = None
            while True:
                if token.cancelled and not flag.is_set():
                    flag.set()  # mirror a cancel the parent token saw first
                try:
                    if receiver.poll(self._POLL_SECONDS):
                        payload = receiver.recv()
                        break
                except (EOFError, OSError):
                    break  # child died without reporting (killed or crashed)
                if not process.is_alive() and not receiver.poll(0):
                    break
            receiver.close()
            process.join(timeout=30)
            if payload is None:
                # No result crossed the pipe: the child was terminated (or
                # crashed).  Surface the token's verdict so the scheduler
                # records the right outcome.
                if token.reason == TIMEOUT or token.expired:
                    resolve(lambda: future.set_exception(SearchTimeout()))
                elif token.cancelled:
                    resolve(lambda: future.set_exception(SearchCancelled()))
                else:
                    resolve(
                        lambda: future.set_exception(
                            RuntimeError(
                                "search worker died with exit code "
                                f"{process.exitcode}"
                            )
                        )
                    )
                return
            kind, value = payload
            if kind == "ok":
                resolve(lambda: future.set_result(value))
            else:
                resolve(lambda: future.set_exception(value))

        watcher = threading.Thread(target=watch, daemon=True, name="repro-killer")
        watcher.start()
        return TaskHandle(future, kill=kill)

    def describe(self) -> dict:
        payload = super().describe()
        payload["degraded"] = self.degraded
        return payload

    def close(self) -> None:
        with self._executor_lock:
            executor, self._executor = self._executor, None
            self._closed = True  # submits after close error out, like threads
        if executor is not None:
            executor.shutdown(wait=True)


def create_backend(name: Optional[str], workers: Optional[int] = None) -> WorkerBackend:
    """Build a backend from its CLI spelling.

    ``name=None`` means :class:`InlineBackend` — except that asking for more
    than one worker implies a pool, in which case threads are chosen (the
    cheap concurrent default).  ``workers=None`` sizes pools to the machine
    (:data:`DEFAULT_WORKERS`).
    """
    if name is None:
        name = "threads" if workers is not None and workers > 1 else "inline"
    if name not in BACKEND_NAMES:
        raise ValueError(
            f"unknown worker backend {name!r} (known: {', '.join(BACKEND_NAMES)})"
        )
    if name == "inline":
        return InlineBackend()
    pool_workers = workers if workers is not None else DEFAULT_WORKERS
    if name == "threads":
        return ThreadBackend(workers=pool_workers)
    return ProcessBackend(workers=pool_workers)
