"""Execution backends for the parallel classification scheduler.

A :class:`WorkerBackend` turns a picklable/callable task into a
:class:`concurrent.futures.Future`.  Three implementations cover the
trade-off space of the exponential certificate searches:

* :class:`InlineBackend` — runs the task synchronously in the caller's
  thread and returns an already-resolved future.  Zero overhead, zero
  concurrency: the behavior of the pre-workers engine, and the default of
  :class:`~repro.engine.batch.BatchClassifier`.
* :class:`ThreadBackend` — a :class:`~concurrent.futures.ThreadPoolExecutor`.
  The searches are pure-Python and hold the GIL, so threads buy *concurrency*
  (many requests in flight, streaming stays live, single-flight dedup gets a
  window to merge duplicates) rather than CPU parallelism.  This is the
  service default: it removes head-of-line blocking between independent
  requests without process-spawn cost.
* :class:`ProcessBackend` — a :class:`~concurrent.futures.ProcessPoolExecutor`.
  True CPU parallelism for cold, duplicate-poor workloads; tasks and results
  cross the process boundary as plain dicts (:mod:`repro.engine.serialization`).
  When the platform cannot spawn workers (sandboxes without ``/dev/shm`` or
  fork rights), submitted tasks transparently degrade to inline execution
  instead of failing the job.

:func:`create_backend` maps the CLI/service spelling (``--worker-backend
inline|threads|processes``, ``--workers N``) onto an instance.
"""

from __future__ import annotations

import os
import threading
from concurrent.futures import BrokenExecutor, Future, ProcessPoolExecutor, ThreadPoolExecutor
from typing import Any, Callable, Optional, Tuple

BACKEND_NAMES: Tuple[str, ...] = ("inline", "threads", "processes")
"""Valid ``--worker-backend`` spellings, in increasing order of parallelism."""


def usable_cpus() -> int:
    """CPUs this process may actually be scheduled on.

    ``sched_getaffinity`` respects cpuset/affinity masks (``taskset``,
    Kubernetes cpusets) that ``os.cpu_count()`` ignores, making it the less
    dishonest pool-sizing number on shared hosts.  CFS bandwidth quotas
    (``docker run --cpus=N``) are visible to neither call.  Falls back to
    ``cpu_count`` on platforms without affinity support.
    """
    try:
        return len(os.sched_getaffinity(0)) or 1
    except AttributeError:  # pragma: no cover - non-Linux platforms
        return os.cpu_count() or 1


DEFAULT_WORKERS = max(usable_cpus(), 1)
"""Worker count used when a pool backend is requested without ``--workers``."""


class WorkerBackend:
    """Interface of an execution backend: submit tasks, expose capacity."""

    name: str = "abstract"

    def __init__(self, workers: int = 1) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = workers

    def submit(self, fn: Callable[..., Any], *args: Any) -> "Future[Any]":
        """Run ``fn(*args)`` on the backend; return a future for its result."""
        raise NotImplementedError

    @property
    def synchronous(self) -> bool:
        """True when ``submit`` executes the task before returning.

        Callers that fan submissions out up front (the service's streaming
        path) must not do so on a synchronous backend — the fan-out itself
        would run every task back to back.
        """
        return False

    def probe(self) -> None:
        """Eagerly verify the backend can actually execute work.

        Pool backends that initialize lazily (``processes``) spawn their
        workers here, so properties like :attr:`synchronous` reflect reality
        *before* the first real task instead of after it.  A no-op for
        backends with nothing to spawn.
        """

    def close(self) -> None:
        """Release pool resources.  Safe to call twice; inline is a no-op."""

    def describe(self) -> dict:
        """JSON-friendly configuration of this backend (for stats frames)."""
        return {"backend": self.name, "workers": self.workers}

    def __enter__(self) -> "WorkerBackend":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(workers={self.workers})"


class InlineBackend(WorkerBackend):
    """Synchronous execution in the submitting thread (no pool at all)."""

    name = "inline"

    def __init__(self, workers: int = 1) -> None:
        super().__init__(workers=1)

    @property
    def synchronous(self) -> bool:
        return True

    def submit(self, fn: Callable[..., Any], *args: Any) -> "Future[Any]":
        future: "Future[Any]" = Future()
        try:
            future.set_result(fn(*args))
        except BaseException as error:  # noqa: BLE001 - future carries it
            future.set_exception(error)
        return future


class ThreadBackend(WorkerBackend):
    """A thread pool: concurrent (GIL-interleaved) in-process execution."""

    name = "threads"

    def __init__(self, workers: int = DEFAULT_WORKERS) -> None:
        super().__init__(workers=workers)
        self._executor = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="repro-worker"
        )

    def submit(self, fn: Callable[..., Any], *args: Any) -> "Future[Any]":
        return self._executor.submit(fn, *args)

    def close(self) -> None:
        self._executor.shutdown(wait=True)


class ProcessBackend(WorkerBackend):
    """A process pool: true CPU parallelism for the certificate searches.

    The pool is created lazily on first submit, so merely constructing a
    classifier with ``--worker-backend processes`` costs nothing until a cold
    representative actually needs a search.  If the pool cannot be created or
    breaks (sandboxed environments), tasks fall back to inline execution and
    :attr:`degraded` is set — the job still completes, just without
    parallelism.
    """

    name = "processes"

    def __init__(self, workers: int = DEFAULT_WORKERS) -> None:
        super().__init__(workers=workers)
        self._executor: Optional[ProcessPoolExecutor] = None
        self._executor_lock = threading.Lock()
        self._closed = False
        self.degraded = False

    @property
    def synchronous(self) -> bool:
        # A degraded pool executes submissions inline in the caller.
        return self.degraded

    def _ensure_executor(self) -> Optional[ProcessPoolExecutor]:
        with self._executor_lock:
            if self._closed:
                raise RuntimeError("cannot submit to a closed ProcessBackend")
            if self.degraded:
                return None
            if self._executor is None:
                try:
                    self._executor = ProcessPoolExecutor(max_workers=self.workers)
                except (OSError, ValueError):  # pragma: no cover - sandboxing
                    self.degraded = True
                    return None
            return self._executor

    def probe(self) -> None:
        """Spawn the pool and run one trivial task through it.

        After this returns, :attr:`degraded` (and therefore
        :attr:`synchronous`) is accurate — the service probes at startup so
        its streaming strategy matches how tasks will really execute.
        """
        self.submit(int).result(timeout=300)

    def submit(self, fn: Callable[..., Any], *args: Any) -> "Future[Any]":
        executor = self._ensure_executor()
        if executor is None:  # pragma: no cover - sandboxing
            return InlineBackend().submit(fn, *args)
        try:
            inner = executor.submit(fn, *args)
        except (RuntimeError, BrokenExecutor):  # pragma: no cover - pool died
            self.degraded = True
            return InlineBackend().submit(fn, *args)
        proxy: "Future[Any]" = Future()

        def relay(done: "Future[Any]") -> None:
            error = done.exception()
            if isinstance(error, (BrokenExecutor, OSError)):
                # The pool broke underneath the task (worker killed, spawn
                # denied): degrade to inline so the job is not lost.
                self.degraded = True  # pragma: no cover - sandboxing
                try:  # pragma: no cover
                    proxy.set_result(fn(*args))
                except BaseException as inline_error:  # noqa: BLE001
                    proxy.set_exception(inline_error)
            elif error is not None:
                proxy.set_exception(error)
            else:
                proxy.set_result(done.result())

        inner.add_done_callback(relay)
        return proxy

    def describe(self) -> dict:
        payload = super().describe()
        payload["degraded"] = self.degraded
        return payload

    def close(self) -> None:
        with self._executor_lock:
            executor, self._executor = self._executor, None
            self._closed = True  # submits after close error out, like threads
        if executor is not None:
            executor.shutdown(wait=True)


def create_backend(name: Optional[str], workers: Optional[int] = None) -> WorkerBackend:
    """Build a backend from its CLI spelling.

    ``name=None`` means :class:`InlineBackend` — except that asking for more
    than one worker implies a pool, in which case threads are chosen (the
    cheap concurrent default).  ``workers=None`` sizes pools to the machine
    (:data:`DEFAULT_WORKERS`).
    """
    if name is None:
        name = "threads" if workers is not None and workers > 1 else "inline"
    if name not in BACKEND_NAMES:
        raise ValueError(
            f"unknown worker backend {name!r} (known: {', '.join(BACKEND_NAMES)})"
        )
    if name == "inline":
        return InlineBackend()
    pool_workers = workers if workers is not None else DEFAULT_WORKERS
    if name == "threads":
        return ThreadBackend(workers=pool_workers)
    return ProcessBackend(workers=pool_workers)
