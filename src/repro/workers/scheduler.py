"""Single-flight job scheduler for canonical-keyed classification work.

:class:`ClassificationScheduler` is the concurrency heart of the engine: it
accepts :class:`~repro.engine.canonical.CanonicalForm` jobs, answers them
from the shared :class:`~repro.engine.cache.ClassificationCache` when
possible, and otherwise executes the certificate search on a pluggable
:class:`~repro.workers.backends.WorkerBackend` — with the guarantee that

    **at any moment, at most one search per canonical key is running.**

Concurrent submissions of the same uncached key share one in-flight future
("single flight"), so N clients hammering the same census cost exactly one
exponential search per renaming orbit, not N.  The invariant is enforced by
a single small mutex around the cache-lookup / in-flight-table decision;
the searches themselves run outside every lock, so independent keys proceed
fully concurrently (the service's old process-wide work lock is gone).

Completion flow of a scheduled job: the backend future resolves → the
canonical result payload is stored in the cache and the key leaves the
in-flight table *under the same mutex* (so a racing submit always observes
either the in-flight entry or the cache entry, never neither) → the job's
shared future resolves and every waiter proceeds.

:meth:`ClassificationScheduler.warm` is the cache-warming entry point: given
the canonical forms of an upcoming batch/census it schedules every missing
representative ahead of time, returning immediately (or after completion
with ``wait=True``) — the mechanism behind the service's ``warm`` protocol
operation.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future
from concurrent.futures import wait as futures_wait
from dataclasses import dataclass
from typing import Any, Dict, Iterable, Optional, Tuple

from ..core.classifier import classify_with_certificates
from ..engine.cache import ClassificationCache
from ..engine.canonical import CanonicalForm
from ..engine.serialization import (
    problem_from_dict,
    problem_to_dict,
    relabel_result,
    result_to_dict,
)
from .backends import InlineBackend, WorkerBackend

_SearchTask = Tuple[str, Dict[str, Any], Dict[str, str]]

JOB_CACHE_HIT = "hit"
JOB_SHARED = "shared"
JOB_SCHEDULED = "scheduled"


def execute_search(task: _SearchTask) -> Tuple[str, Dict[str, Any]]:
    """Run one full certificate search; return ``(key, canonical payload)``.

    Module-level (and dict-in/dict-out) so :class:`ProcessBackend` can pickle
    it across the process boundary.  The submitted problem is the *original*
    representative; the result is relabeled through ``forward`` into canonical
    labels before it is returned, matching what the cache stores.
    """
    key, problem_payload, forward = task
    problem = problem_from_dict(problem_payload)
    artifacts = classify_with_certificates(problem)
    payload = result_to_dict(relabel_result(artifacts.result, forward))
    payload["elapsed_seconds"] = artifacts.elapsed_seconds
    return key, payload


@dataclass
class SchedulerStats:
    """Work accounting of a :class:`ClassificationScheduler`.

    ``scheduled`` counts searches actually handed to the backend — under
    single flight this equals the number of distinct uncached canonical keys
    ever submitted.  ``deduped`` counts submissions that piggybacked on an
    in-flight search, ``cache_hits`` those answered straight from the cache
    at submit time.
    """

    scheduled: int = 0
    deduped: int = 0
    cache_hits: int = 0
    completed: int = 0
    failed: int = 0

    @property
    def submitted(self) -> int:
        """Total jobs submitted, however they were answered."""
        return self.scheduled + self.deduped + self.cache_hits

    def as_dict(self) -> Dict[str, Any]:
        """The counters as a JSON-friendly dictionary."""
        return {
            "submitted": self.submitted,
            "scheduled": self.scheduled,
            "deduped": self.deduped,
            "cache_hits": self.cache_hits,
            "completed": self.completed,
            "failed": self.failed,
        }


@dataclass(frozen=True)
class ClassificationJob:
    """A submitted job: the canonical key, a shared future, and provenance.

    ``kind`` records how the submission was answered: ``"hit"`` (cache),
    ``"shared"`` (merged into an in-flight search of the same key), or
    ``"scheduled"`` (this submission started the search).  The future
    resolves to the canonical-label result payload; callers relabel it
    through their own bijection.
    """

    key: str
    future: "Future[Dict[str, Any]]"
    kind: str

    @property
    def done(self) -> bool:
        return self.future.done()

    def result(self, timeout: Optional[float] = None) -> Dict[str, Any]:
        """Block until the payload is available (propagating search errors)."""
        return self.future.result(timeout=timeout)


class ClassificationScheduler:
    """Canonical-keyed scheduler with single-flight dedup and cache fill.

    Parameters
    ----------
    cache:
        The shared :class:`ClassificationCache` consulted before scheduling
        and filled on completion.  A fresh in-memory cache when omitted.
    backend:
        The :class:`WorkerBackend` executing searches.  Defaults to
        :class:`InlineBackend` (synchronous, zero overhead).
    task:
        The search function, ``(key, problem_dict, forward) -> (key,
        payload)``.  Overridable for tests that need controllable blocking;
        must stay picklable for process backends.
    """

    def __init__(
        self,
        cache: Optional[ClassificationCache] = None,
        backend: Optional[WorkerBackend] = None,
        task: Any = execute_search,
    ) -> None:
        self.cache = cache if cache is not None else ClassificationCache()
        self.backend = backend if backend is not None else InlineBackend()
        self.stats = SchedulerStats()
        self._task = task
        self._lock = threading.Lock()
        self._in_flight: Dict[str, "Future[Dict[str, Any]]"] = {}

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    def submit(self, form: CanonicalForm) -> ClassificationJob:
        """Submit one canonical form; dedupe against cache and in-flight work.

        Returns immediately in every case; only ``kind == "scheduled"`` jobs
        put new work on the backend.
        """
        key = form.key
        with self._lock:
            payload = self.cache.lookup(key)
            if payload is not None:
                self.stats.cache_hits += 1
                future: "Future[Dict[str, Any]]" = Future()
                future.set_result(payload)
                return ClassificationJob(key=key, future=future, kind=JOB_CACHE_HIT)
            shared = self._in_flight.get(key)
            if shared is not None:
                self.stats.deduped += 1
                return ClassificationJob(key=key, future=shared, kind=JOB_SHARED)
            proxy: "Future[Dict[str, Any]]" = Future()
            self._in_flight[key] = proxy
            self.stats.scheduled += 1
        # The search runs outside the lock: independent keys never serialize
        # on each other, and an inline backend executing synchronously here
        # cannot deadlock against the completion bookkeeping.
        task = (key, problem_to_dict(form.problem), dict(form.forward))
        try:
            backend_future = self.backend.submit(self._task, task)
        except BaseException as error:  # noqa: BLE001 - undo the reservation
            with self._lock:
                self._in_flight.pop(key, None)
                # Roll back the scheduled count too: nothing reached the
                # backend, and `scheduled` must keep meaning "searches
                # actually started" (a later retry counts itself).
                self.stats.scheduled -= 1
                self.stats.failed += 1
            proxy.set_exception(error)
            return ClassificationJob(key=key, future=proxy, kind=JOB_SCHEDULED)
        backend_future.add_done_callback(
            lambda done, key=key, proxy=proxy: self._finish(key, proxy, done)
        )
        return ClassificationJob(key=key, future=proxy, kind=JOB_SCHEDULED)

    def _finish(
        self,
        key: str,
        proxy: "Future[Dict[str, Any]]",
        backend_future: "Future[Tuple[str, Dict[str, Any]]]",
    ) -> None:
        """Store the result, then retire the in-flight entry."""
        error = backend_future.exception()
        payload: Optional[Dict[str, Any]] = None
        if error is None:
            _key, payload = backend_future.result()
            # Store *before* retiring the key, and outside the scheduler
            # lock: a racing submit then sees the entry cached or in flight
            # (briefly both), never neither — and an autosaving cache's disk
            # write cannot stall every other submission on our mutex.
            self.cache.store(key, payload)
        with self._lock:
            self._in_flight.pop(key, None)
            if error is None:
                self.stats.completed += 1
            else:
                self.stats.failed += 1
        # Waiters wake *after* the cache holds the result.
        if error is None:
            proxy.set_result(payload)
        else:
            proxy.set_exception(error)

    # ------------------------------------------------------------------
    # Cache warming
    # ------------------------------------------------------------------
    def warm(
        self, forms: Iterable[CanonicalForm], wait: bool = False
    ) -> Dict[str, Any]:
        """Pre-schedule every distinct uncached form; report what happened.

        With ``wait=True`` the call blocks until every scheduled search has
        completed (errors are swallowed into the ``failed`` count — warming
        is best-effort); otherwise it returns immediately while the backend
        fills the cache in the background.
        """
        unique: Dict[str, CanonicalForm] = {}
        for form in forms:
            unique.setdefault(form.key, form)
        jobs = [self.submit(form) for form in unique.values()]
        summary = {
            "unique_keys": len(unique),
            "already_cached": sum(1 for job in jobs if job.kind == JOB_CACHE_HIT),
            "shared": sum(1 for job in jobs if job.kind == JOB_SHARED),
            "scheduled": sum(1 for job in jobs if job.kind == JOB_SCHEDULED),
            "waited": bool(wait),
        }
        if wait:
            failed = 0
            for job in jobs:
                try:
                    job.result()
                except Exception:  # noqa: BLE001 - warming is best-effort
                    failed += 1
            summary["failed"] = failed
        return summary

    def wait_idle(self, timeout: Optional[float] = None) -> bool:
        """Block until no job is in flight; ``True`` when idle was reached.

        Work submitted while draining extends the wait (snapshot-and-wait
        loop), so ``True`` means a moment of genuine quiescence was observed.
        """
        start = time.monotonic()
        while True:
            with self._lock:
                pending = list(self._in_flight.values())
            if not pending:
                return True
            remaining: Optional[float] = None
            if timeout is not None:
                remaining = timeout - (time.monotonic() - start)
                if remaining <= 0:
                    return False
            futures_wait(pending, timeout=remaining)

    # ------------------------------------------------------------------
    # Introspection / lifecycle
    # ------------------------------------------------------------------
    @property
    def in_flight(self) -> int:
        """Number of searches currently scheduled or running."""
        with self._lock:
            return len(self._in_flight)

    def stats_payload(self) -> Dict[str, Any]:
        """Live scheduler + backend report (the ``workers`` stats section)."""
        in_flight = self.in_flight
        workers = self.backend.workers
        payload = self.backend.describe()
        payload.update(self.stats.as_dict())
        payload["in_flight"] = in_flight
        payload["utilization"] = min(1.0, in_flight / workers) if workers else 0.0
        return payload

    def close(self) -> None:
        """Shut the backend down (waiting for in-flight searches)."""
        self.backend.close()

    def __enter__(self) -> "ClassificationScheduler":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()
