"""Deadline-aware, priority-ordered single-flight scheduler for searches.

:class:`ClassificationScheduler` is the concurrency heart of the engine: it
accepts :class:`~repro.engine.canonical.CanonicalForm` jobs, answers them
from the shared :class:`~repro.engine.cache.ClassificationCache` when
possible, and otherwise executes the certificate search on a pluggable
:class:`~repro.workers.backends.WorkerBackend` — with the guarantee that

    **at any moment, at most one live search per canonical key is running.**

Concurrent submissions of the same uncached key share one in-flight *flight*
("single flight"), so N clients hammering the same census cost exactly one
exponential search per renaming orbit, not N.  On top of the PR-3 design this
scheduler adds three fairness mechanisms:

**Priority classes.**  Every submission carries one of :data:`PRIORITIES`
(``interactive`` > ``batch`` > ``warm``).  The scheduler admits at most
``backend.workers`` searches to the backend at a time and keeps the rest in
a priority heap, so an interactive ``classify`` overtakes a queued census
fan-out instead of waiting behind it.  A higher-priority duplicate submission
escalates the queued flight it joins.

**Per-submission deadlines.**  ``submit(..., deadline=seconds)`` bounds the
*total* time (queue wait + search) this submission will wait.  A dedicated
monitor thread expires waiters: the expired waiter's future resolves with
:class:`~repro.core.cancellation.SearchTimeout`, and when it was the
flight's last waiter the search itself is cancelled and its worker slot
released.  Deadlines are strictly **per waiter** — the flight's own cancel
token carries no deadline, so a deadline-less client sharing a search is
never timed out by another client's budget: the expired waiter detaches
alone and the search keeps running for whoever still wants it.

**Cancellation.**  Every job exposes :meth:`ClassificationJob.cancel`, which
detaches that one waiter (other clients sharing the search are unaffected);
cancelling the last waiter — or calling :meth:`ClassificationScheduler.cancel`
with the key — cancels the flight: its token trips (the cooperative
``inline``/``threads`` searches unwind at their next checkpoint), the backend
handle is killed (a hard ``terminate()`` for deadline-carrying ``processes``
searches), the key leaves the in-flight table so a later submission can retry
fresh, and the outcome is recorded in the scheduler statistics as
``cancelled``/``timeouts`` — **nothing is stored in the cache**, so an
aborted search never poisons future lookups.

A search whose cancellation is purely cooperative may keep a pool thread
busy until its next checkpoint (a *zombie*); its slot is released logically
at cancel time so new work dispatches immediately, and the zombie's eventual
completion is discarded.  :meth:`wait_idle` waits for zombies too, so
shutdown never races a straggler.

Completion flow of a scheduled job: the backend future resolves → the
canonical result payload is stored in the cache and the key leaves the
in-flight table (store-then-retire, so a racing submit always observes
either the in-flight entry or the cache entry, never neither) → every
waiter's future resolves.

:meth:`ClassificationScheduler.warm` is the cache-warming entry point: given
the canonical forms of an upcoming batch/census it schedules every missing
representative ahead of time (at ``warm`` priority by default), returning
immediately (or after completion with ``wait=True``).
"""

from __future__ import annotations

import heapq
import itertools
import threading
import time
from concurrent.futures import CancelledError, Future
from concurrent.futures import TimeoutError as FuturesTimeoutError
from concurrent.futures import wait as futures_wait
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

from ..core.cancellation import (
    CANCELLED,
    CancelToken,
    SearchCancelled,
    SearchInterrupted,
    SearchTimeout,
    TIMEOUT,
)
from ..core.classifier import classify_with_certificates
from ..engine.cache import ClassificationCache
from ..engine.canonical import CanonicalForm
from ..engine.serialization import (
    problem_from_dict,
    problem_to_dict,
    relabel_result,
    result_to_dict,
)
from ..obs.trace import RequestTrace, STAGE_BACKEND, STAGE_KERNEL, STAGE_SCHEDULER
from .backends import InlineBackend, TaskHandle, WorkerBackend
from .metrics import SearchTimeStats

_SearchTask = Tuple[str, Dict[str, Any], Dict[str, str]]

JOB_CACHE_HIT = "hit"
JOB_SHARED = "shared"
JOB_SCHEDULED = "scheduled"

PRIORITIES: Tuple[str, ...] = ("interactive", "batch", "warm")
"""Priority classes, most urgent first: interactive > batch > warm (census)."""

PRIORITY_RANK: Dict[str, int] = {name: rank for rank, name in enumerate(PRIORITIES)}
DEFAULT_PRIORITY = "batch"

# Flight lifecycle states.
_QUEUED = "queued"  # in the ready heap, not yet handed to the backend
_RUNNING = "running"  # dispatched to the backend, holding a worker slot
_SETTLED = "settled"  # retired: completed, failed, cancelled, or timed out


def validate_priority(priority: str) -> str:
    """Return ``priority`` if it is a known class, else raise ``ValueError``."""
    if priority not in PRIORITY_RANK:
        raise ValueError(
            f"unknown priority {priority!r} (known: {', '.join(PRIORITIES)})"
        )
    return priority


def execute_search(task: _SearchTask) -> Tuple[str, Dict[str, Any]]:
    """Run one full certificate search; return ``(key, canonical payload)``.

    Module-level (and dict-in/dict-out) so :class:`ProcessBackend` can pickle
    it across the process boundary.  The submitted problem is the *original*
    representative; the result is relabeled through ``forward`` into canonical
    labels before it is returned, matching what the cache stores.  The search
    runs under whatever cancel scope the backend installed, so a deadline or
    cancellation raises :class:`SearchInterrupted` out of this function.
    """
    key, problem_payload, forward = task
    problem = problem_from_dict(problem_payload)
    artifacts = classify_with_certificates(problem)
    payload = result_to_dict(relabel_result(artifacts.result, forward))
    payload["elapsed_seconds"] = artifacts.elapsed_seconds
    return key, payload


@dataclass
class SchedulerStats:
    """Work accounting of a :class:`ClassificationScheduler`.

    ``flights`` counts searches *created* (one per distinct uncached key
    submission), ``scheduled`` those actually handed to the backend (a flight
    cancelled while still queued never dispatches).  ``deduped`` counts
    submissions that piggybacked on an in-flight search, ``cache_hits`` those
    answered straight from the cache at submit time.  Every flight ends in
    exactly one of ``completed``/``failed``/``cancelled``/``timeouts`` —
    conservation the randomized scheduler tests assert after every run.
    """

    flights: int = 0
    scheduled: int = 0
    deduped: int = 0
    cache_hits: int = 0
    completed: int = 0
    failed: int = 0
    cancelled: int = 0
    timeouts: int = 0

    @property
    def submitted(self) -> int:
        """Total jobs submitted, however they were answered."""
        return self.flights + self.deduped + self.cache_hits

    @property
    def finished(self) -> int:
        """Flights that reached a terminal outcome."""
        return self.completed + self.failed + self.cancelled + self.timeouts

    def as_dict(self) -> Dict[str, Any]:
        """The counters as a JSON-friendly dictionary."""
        return {
            "submitted": self.submitted,
            "flights": self.flights,
            "scheduled": self.scheduled,
            "deduped": self.deduped,
            "cache_hits": self.cache_hits,
            "completed": self.completed,
            "failed": self.failed,
            "cancelled": self.cancelled,
            "timeouts": self.timeouts,
        }


class _Waiter:
    """One submission waiting on a flight: its own future and deadline.

    ``trace`` is the submission's :class:`RequestTrace` (or ``None`` — the
    overwhelmingly common case): traces belong to *submissions*, not
    flights, so every client sharing one single-flight search still gets
    its own span tree.
    """

    __slots__ = ("future", "deadline", "flight", "seq", "trace")

    def __init__(
        self,
        flight: "_Flight",
        deadline: Optional[float],
        seq: int,
        trace: Optional[RequestTrace] = None,
    ) -> None:
        self.future: "Future[Dict[str, Any]]" = Future()
        self.deadline = deadline  # absolute monotonic, or None
        self.flight = flight
        self.seq = seq
        self.trace = trace


class _Flight:
    """One single-flight search: token, waiters, slot accounting."""

    __slots__ = (
        "key",
        "task",
        "token",
        "rank",
        "seq",
        "state",
        "waiters",
        "handle",
        "slot_held",
        "outcome",
        "killable",
    )

    def __init__(
        self, key: str, task: _SearchTask, token: CancelToken, rank: int, seq: int
    ) -> None:
        self.key = key
        self.task = task
        self.token = token
        self.rank = rank
        self.seq = seq
        self.state = _QUEUED
        self.waiters: List[_Waiter] = []
        self.handle: Optional[TaskHandle] = None
        self.slot_held = False
        self.outcome: Optional[str] = None  # completed/failed/cancelled/timeout
        # Whether a hard-killing backend should run this search on a
        # dedicated terminable worker (set when the creating submission
        # carried a deadline — the case where reclaiming the worker matters).
        self.killable = False


@dataclass(frozen=True)
class ClassificationJob:
    """A submitted job: the canonical key, a private future, and provenance.

    ``kind`` records how the submission was answered: ``"hit"`` (cache),
    ``"shared"`` (merged into an in-flight search of the same key), or
    ``"scheduled"`` (this submission started the search).  The future
    resolves to the canonical-label result payload — or raises
    :class:`SearchTimeout`/:class:`SearchCancelled` when this submission's
    deadline expired or it was cancelled.  Callers relabel payloads through
    their own bijection.
    """

    key: str
    future: "Future[Dict[str, Any]]"
    kind: str
    priority: str = DEFAULT_PRIORITY
    _canceller: Optional[Callable[[], bool]] = field(
        default=None, repr=False, compare=False
    )

    @property
    def done(self) -> bool:
        return self.future.done()

    def result(self, timeout: Optional[float] = None) -> Dict[str, Any]:
        """Block until the payload is available (propagating search errors)."""
        return self.future.result(timeout=timeout)

    def cancel(self) -> bool:
        """Detach this submission from its search; ``True`` when it was live.

        Other submissions sharing the search are unaffected; cancelling the
        *last* waiter cancels the search itself and releases its worker.
        Cache hits and already-resolved jobs return ``False``.
        """
        if self._canceller is None:
            return False
        return self._canceller()


class _DeadlineMonitor:
    """A lazy daemon thread expiring waiters at their deadlines."""

    def __init__(self, expire: Callable[[_Waiter], None]) -> None:
        self._expire = expire
        self._cv = threading.Condition()
        self._heap: List[Tuple[float, int, _Waiter]] = []
        self._thread: Optional[threading.Thread] = None
        self._closed = False

    def register(self, waiter: _Waiter) -> None:
        assert waiter.deadline is not None
        with self._cv:
            if self._closed:
                return
            heapq.heappush(self._heap, (waiter.deadline, waiter.seq, waiter))
            if self._thread is None:
                self._thread = threading.Thread(
                    target=self._run, daemon=True, name="repro-deadlines"
                )
                self._thread.start()
            self._cv.notify()

    def _run(self) -> None:
        while True:
            expired: List[_Waiter] = []
            with self._cv:
                if self._closed:
                    return
                if not self._heap:
                    self._cv.wait()
                    continue
                now = time.monotonic()
                while self._heap and self._heap[0][0] <= now:
                    expired.append(heapq.heappop(self._heap)[2])
                if not expired:
                    self._cv.wait(timeout=self._heap[0][0] - now)
            for waiter in expired:
                if not waiter.future.done():
                    self._expire(waiter)

    def close(self) -> None:
        with self._cv:
            self._closed = True
            self._cv.notify_all()
        if self._thread is not None:
            self._thread.join(timeout=5)


class ClassificationScheduler:
    """Canonical-keyed scheduler: single flight, priorities, deadlines.

    Parameters
    ----------
    cache:
        The shared :class:`ClassificationCache` consulted before scheduling
        and filled on completion.  A fresh in-memory cache when omitted.
    backend:
        The :class:`WorkerBackend` executing searches.  Defaults to
        :class:`InlineBackend` (synchronous, zero overhead).  Its ``workers``
        count is the scheduler's admission limit: at most that many searches
        are handed to the backend at a time, the rest wait in the priority
        heap.
    task:
        The search function, ``(key, problem_dict, forward) -> (key,
        payload)``.  Overridable for tests that need controllable blocking;
        must stay picklable for process backends.
    """

    def __init__(
        self,
        cache: Optional[ClassificationCache] = None,
        backend: Optional[WorkerBackend] = None,
        task: Any = execute_search,
    ) -> None:
        self.cache = cache if cache is not None else ClassificationCache()
        self.backend = backend if backend is not None else InlineBackend()
        self.stats = SchedulerStats()
        # Completed-search durations, per canonical key: the histogram
        # operators read (via `stats`) to pick deadlines from data.
        self.search_times = SearchTimeStats()
        self._task = task
        self._lock = threading.Lock()
        self._in_flight: Dict[str, _Flight] = {}
        self._ready: List[Tuple[int, int, _Flight]] = []
        self._slots_used = 0
        self._unsettled: Dict[int, "Future[Any]"] = {}
        self._seq = itertools.count()
        self._pumping = False
        self._pump_requests = 0
        self._monitor = _DeadlineMonitor(self._expire_waiter)

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    def submit(
        self,
        form: CanonicalForm,
        priority: str = DEFAULT_PRIORITY,
        deadline: Optional[float] = None,
        trace: Optional[RequestTrace] = None,
    ) -> ClassificationJob:
        """Submit one canonical form; dedupe against cache and in-flight work.

        ``priority`` is one of :data:`PRIORITIES`; ``deadline`` is a budget in
        seconds covering this submission's queue wait plus search time.
        ``trace`` (when given) receives this submission's scheduler spans —
        ``queued``/``admitted``/``search``/``cache-write``/``reply`` — as the
        flight progresses; the common ``trace=None`` case costs one ``is
        None`` test per event site.  Returns immediately in every case; only
        ``kind == "scheduled"`` jobs put new work on the backend.
        """
        rank = PRIORITY_RANK[validate_priority(priority)]
        key = form.key
        deadline_at = time.monotonic() + deadline if deadline is not None else None
        new_flight: Optional[_Flight] = None
        with self._lock:
            payload = self.cache.lookup(key)
            if payload is not None:
                self.stats.cache_hits += 1
                future: "Future[Dict[str, Any]]" = Future()
                future.set_result(payload)
                if trace is not None:
                    trace.mark(
                        "reply",
                        STAGE_SCHEDULER,
                        attrs={"key": key, "from_cache": True},
                    )
                return ClassificationJob(
                    key=key, future=future, kind=JOB_CACHE_HIT, priority=priority
                )
            flight = self._in_flight.get(key)
            if flight is not None:
                self.stats.deduped += 1
                waiter = _Waiter(flight, deadline_at, next(self._seq), trace)
                flight.waiters.append(waiter)
                if flight.state == _QUEUED and rank < flight.rank:
                    # A more urgent duplicate escalates the queued search;
                    # the stale heap entry is skipped when popped.
                    flight.rank = rank
                    heapq.heappush(self._ready, (rank, flight.seq, flight))
                if trace is not None:
                    shared_attrs = {"key": key, "priority": priority, "shared": True}
                    if flight.state == _RUNNING:
                        # Joined a search already on the backend: this
                        # submission never queues, it goes straight to
                        # waiting on the running search.
                        trace.begin(
                            "search",
                            STAGE_BACKEND,
                            attrs={**shared_attrs, "backend": self.backend.name},
                        )
                    else:
                        trace.begin("queued", STAGE_SCHEDULER, attrs=shared_attrs)
                kind = JOB_SHARED
            else:
                # The token is a pure cancel flag: per-submission deadlines
                # live on the *waiters* (enforced by the monitor), never on
                # the flight, so one client's budget cannot time out a
                # deadline-less client sharing the same search.
                seq = next(self._seq)
                flight = _Flight(
                    key=key,
                    task=(key, problem_to_dict(form.problem), dict(form.forward)),
                    token=CancelToken(),
                    rank=rank,
                    seq=seq,
                )
                flight.killable = deadline is not None
                waiter = _Waiter(flight, deadline_at, seq, trace)
                flight.waiters.append(waiter)
                self._in_flight[key] = flight
                heapq.heappush(self._ready, (rank, seq, flight))
                self.stats.flights += 1
                new_flight = flight
                kind = JOB_SCHEDULED
                if trace is not None:
                    trace.begin(
                        "queued",
                        STAGE_SCHEDULER,
                        attrs={"key": key, "priority": priority},
                    )
        if waiter.deadline is not None:
            if waiter.deadline <= time.monotonic():
                # Already expired at submit time: resolve deterministically
                # instead of racing the monitor against a fast search.
                self._expire_waiter(waiter)
            else:
                self._monitor.register(waiter)
        if new_flight is not None:
            self._pump()
        return ClassificationJob(
            key=key,
            future=waiter.future,
            kind=kind,
            priority=priority,
            _canceller=lambda waiter=waiter: self._detach_waiter(
                waiter, SearchCancelled(key=key), CANCELLED
            ),
        )

    # ------------------------------------------------------------------
    # Dispatch pump (admission control + priority order)
    # ------------------------------------------------------------------
    def _pump(self) -> None:
        """Hand queued flights to the backend while worker slots are free.

        Re-entrancy safe: whoever finds the pump idle runs the drain loop;
        everyone else just records that another pass is needed.  Dispatch
        happens outside the scheduler lock, so a synchronous (inline) backend
        executing the search right here cannot deadlock the bookkeeping.
        """
        with self._lock:
            self._pump_requests += 1
            if self._pumping:
                return
            self._pumping = True
        while True:
            with self._lock:
                self._pump_requests = 0
                batch: List[_Flight] = []
                traced: List[List[RequestTrace]] = []
                while self._ready and self._slots_used < self.backend.workers:
                    _rank, _seq, flight = heapq.heappop(self._ready)
                    if flight.state != _QUEUED:
                        continue  # stale escalation entry or cancelled flight
                    flight.state = _RUNNING
                    flight.slot_held = True
                    self._slots_used += 1
                    self.stats.scheduled += 1
                    batch.append(flight)
                    # Snapshot traces in the same critical section that flips
                    # the state: a shared waiter joining after this sees
                    # _RUNNING and opens its own "search" span directly.
                    traced.append(
                        [w.trace for w in flight.waiters if w.trace is not None]
                    )
            for flight, traces in zip(batch, traced):
                for trace in traces:
                    trace.end("queued")
                    trace.mark("admitted", STAGE_SCHEDULER)
                    trace.begin(
                        "search",
                        STAGE_BACKEND,
                        attrs={
                            "backend": self.backend.name,
                            "killable": flight.killable,
                        },
                    )
                self._dispatch(flight)
            with self._lock:
                if self._pump_requests == 0:
                    self._pumping = False
                    return

    def _dispatch(self, flight: _Flight) -> None:
        try:
            handle = self.backend.submit_task(
                self._task, flight.task, token=flight.token, killable=flight.killable
            )
        except BaseException as error:  # noqa: BLE001 - undo the reservation
            with self._lock:
                if flight.slot_held:
                    flight.slot_held = False
                    self._slots_used -= 1
                flight.state = _SETTLED
                if self._in_flight.get(flight.key) is flight:
                    del self._in_flight[flight.key]
                waiters: List[_Waiter] = []
                if flight.outcome is None:
                    flight.outcome = "failed"
                    self.stats.failed += 1
                    # Nothing reached the backend: `scheduled` keeps meaning
                    # "searches actually started" (a later retry counts itself).
                    self.stats.scheduled -= 1
                    waiters, flight.waiters = flight.waiters, []
            for waiter in waiters:
                if not waiter.future.done():
                    waiter.future.set_exception(error)
            return
        flight.handle = handle
        with self._lock:
            if flight.state != _SETTLED:
                self._unsettled[flight.seq] = handle.future
        if flight.outcome is not None:
            # Cancelled in the window before the handle existed: kill now so
            # a hard-killable backend does not run the search to completion.
            handle.kill()
        handle.future.add_done_callback(
            lambda done, flight=flight: self._on_backend_done(flight, done)
        )

    def _on_backend_done(self, flight: _Flight, backend_future: "Future[Any]") -> None:
        """Store the result, retire the flight, wake waiters, refill slots."""
        try:
            error = backend_future.exception()
        except CancelledError as cancelled:  # killed while still pool-queued
            error = cancelled
        payload: Optional[Dict[str, Any]] = None
        if error is None:
            _key, payload = backend_future.result()
        waiters: List[_Waiter] = []
        with self._lock:
            self._unsettled.pop(flight.seq, None)
            if flight.slot_held:
                flight.slot_held = False
                self._slots_used -= 1
            flight.state = _SETTLED
            # Claim the terminal outcome under the lock so a racing cancel
            # cannot double-count (it observes `outcome` set and backs off).
            claimed = flight.outcome is None
            if claimed:
                if error is None:
                    flight.outcome = "completed"
                    self.stats.completed += 1
                elif isinstance(error, SearchTimeout):
                    flight.outcome = TIMEOUT
                    self.stats.timeouts += 1
                elif isinstance(error, (SearchCancelled, CancelledError)):
                    flight.outcome = CANCELLED
                    self.stats.cancelled += 1
                else:
                    flight.outcome = "failed"
                    self.stats.failed += 1
                if error is not None and self._in_flight.get(flight.key) is flight:
                    # Errors retire immediately; the success path keeps the
                    # key in flight until the cache holds the result (below).
                    del self._in_flight[flight.key]
                if error is not None:
                    waiters, flight.waiters = flight.waiters, []
            # else: a zombie completing after cancellation — its waiters were
            # already resolved and its slot already released at cancel time.
        store_span: Optional[Tuple[float, float]] = None
        if claimed and error is None:
            self.search_times.record(
                flight.key, payload.get("elapsed_seconds", 0.0)
            )
            # Store *before* retiring the key, and outside the scheduler
            # lock: a racing submit then sees the entry cached or in flight
            # (briefly both), never neither — so single flight stays exact —
            # and an autosaving cache's disk write cannot stall every other
            # submission on our mutex.
            store_start = time.monotonic()
            self.cache.store(flight.key, payload)
            store_span = (store_start, time.monotonic())
            with self._lock:
                if self._in_flight.get(flight.key) is flight:
                    del self._in_flight[flight.key]
                waiters, flight.waiters = flight.waiters, []
        if error is None:
            trace_status = "ok"
        elif isinstance(error, SearchTimeout):
            trace_status = TIMEOUT
        elif isinstance(error, (SearchCancelled, CancelledError)):
            trace_status = CANCELLED
        else:
            trace_status = "error"
        for waiter in waiters:
            if waiter.trace is not None:
                self._trace_settled(
                    waiter.trace, flight, trace_status, payload, store_span
                )
            if waiter.future.done():
                continue
            if error is None:
                waiter.future.set_result(payload)
            else:
                waiter.future.set_exception(error)
        self._pump()

    def _trace_settled(
        self,
        trace: RequestTrace,
        flight: _Flight,
        status: str,
        payload: Optional[Dict[str, Any]],
        store_span: Optional[Tuple[float, float]],
    ) -> None:
        """Emit one settled submission's kernel/search/cache-write/reply spans.

        The ``kernel`` span is derived retroactively from the payload's
        ``elapsed_seconds`` — the searches measure themselves already, so the
        pure decision-procedure time needs no new kernel plumbing.  The
        ``checkpoints`` attribute reads the flight token's poll counter (it
        stays 0 for searches that ran inside a process backend's child, whose
        token copy never crosses back).  The ``reply`` mark lands *before*
        the waiter future resolves, so a client thread racing to
        ``finish()`` the trace can never miss it.
        """
        search_end = trace.now_ms()
        if payload is not None:
            kernel_ms = float(payload.get("elapsed_seconds", 0.0)) * 1000.0
            trace.add(
                "kernel",
                STAGE_KERNEL,
                start_ms=max(0.0, search_end - kernel_ms),
                end_ms=search_end,
                parent="search",
            )
        trace.end("search", status, attrs={"checkpoints": flight.token.checkpoints})
        if store_span is not None:
            trace.add(
                "cache-write",
                STAGE_SCHEDULER,
                start_ms=trace.at_ms(store_span[0]),
                end_ms=trace.at_ms(store_span[1]),
            )
        trace.mark("reply", STAGE_SCHEDULER, attrs={"from_cache": False})

    # ------------------------------------------------------------------
    # Cancellation and deadlines
    # ------------------------------------------------------------------
    def _detach_waiter(
        self, waiter: _Waiter, error: SearchInterrupted, reason: str
    ) -> bool:
        """Resolve one waiter with ``error``; cancel the flight if it was last."""
        flight = waiter.flight
        with self._lock:
            if waiter.future.done():
                return False
            try:
                flight.waiters.remove(waiter)
            except ValueError:  # pragma: no cover - resolved concurrently
                return False
            last = flight.outcome is None and not flight.waiters
        waiter.future.set_exception(error)
        if last:
            self._cancel_flight(flight, reason)
        return True

    def _expire_waiter(self, waiter: _Waiter) -> None:
        self._detach_waiter(
            waiter, SearchTimeout(key=waiter.flight.key), TIMEOUT
        )

    def _cancel_flight(self, flight: _Flight, reason: str) -> bool:
        """Cancel a whole flight: free its key and slot, stop the search."""
        with self._lock:
            if flight.outcome is not None:
                return False
            flight.outcome = reason
            if reason == TIMEOUT:
                self.stats.timeouts += 1
            else:
                self.stats.cancelled += 1
            if self._in_flight.get(flight.key) is flight:
                del self._in_flight[flight.key]
            if flight.state == _QUEUED:
                flight.state = _SETTLED  # never dispatched; heap entry skipped
            elif flight.slot_held:
                # Logical release: new work may dispatch immediately.  The
                # physical worker frees itself at the search's next
                # checkpoint (cooperative) or via the kill below (processes).
                flight.slot_held = False
                self._slots_used -= 1
            waiters, flight.waiters = flight.waiters, []
        flight.token.cancel(reason)
        if flight.handle is not None:
            flight.handle.kill()
        error_type = SearchTimeout if reason == TIMEOUT else SearchCancelled
        for waiter in waiters:
            if not waiter.future.done():
                waiter.future.set_exception(error_type(key=flight.key))
        self._pump()
        return True

    def cancel(self, key: str, reason: str = CANCELLED) -> bool:
        """Cancel the in-flight (or queued) search for ``key``, if any.

        Resolves **every** waiter of that search with
        :class:`SearchCancelled`/:class:`SearchTimeout`; use
        :meth:`ClassificationJob.cancel` to detach a single submission
        instead.  Returns ``True`` when a live search was cancelled.
        """
        with self._lock:
            flight = self._in_flight.get(key)
        if flight is None:
            return False
        return self._cancel_flight(flight, reason)

    # ------------------------------------------------------------------
    # Cache warming
    # ------------------------------------------------------------------
    def warm(
        self,
        forms: Iterable[CanonicalForm],
        wait: bool = False,
        priority: str = "warm",
        deadline: Optional[float] = None,
        budget: Optional[float] = None,
    ) -> Dict[str, Any]:
        """Pre-schedule every distinct uncached form; report what happened.

        Warming runs at ``warm`` priority by default so it never delays
        interactive or batch work.  With ``wait=True`` the call blocks until
        every scheduled search has completed (errors are swallowed into the
        ``failed`` count, interrupted searches into ``interrupted`` — warming
        is best-effort); otherwise it returns immediately while the backend
        fills the cache in the background.

        ``budget`` makes the sweep *deadline-aware as a whole*: a wall-clock
        budget in seconds spread best-effort across every scheduled search
        (as opposed to ``deadline``, which bounds each key individually).
        When the budget expires, this caller's remaining warm submissions are
        cancelled — completed keys stay cached, a search another client is
        also waiting on keeps running for them, and the summary reports
        ``within_budget``/``interrupted`` so operators see exactly how far
        the budget got.  A budget implies waiting (the sweep must be observed
        to know when to stop it).
        """
        unique: Dict[str, CanonicalForm] = {}
        for form in forms:
            unique.setdefault(form.key, form)
        budget_ends = (
            time.monotonic() + budget if budget is not None else None
        )
        jobs = [
            self.submit(form, priority=priority, deadline=deadline)
            for form in unique.values()
        ]
        summary = {
            "unique_keys": len(unique),
            "already_cached": sum(1 for job in jobs if job.kind == JOB_CACHE_HIT),
            "shared": sum(1 for job in jobs if job.kind == JOB_SHARED),
            "scheduled": sum(1 for job in jobs if job.kind == JOB_SCHEDULED),
            "waited": bool(wait or budget is not None),
        }
        if budget is not None:
            summary["budget_seconds"] = budget
        if not summary["waited"]:
            return summary
        failed = 0
        interrupted = 0
        completed = 0
        budget_exhausted = False
        for job in jobs:
            remaining: Optional[float] = None
            if budget_ends is not None:
                remaining = max(0.0, budget_ends - time.monotonic())
            try:
                job.result(timeout=remaining)
                completed += 1
                continue
            except SearchInterrupted:
                interrupted += 1
                continue
            except FuturesTimeoutError:
                # The budget ran out while this search was still going:
                # detach (cancelling the search when we were its only
                # waiter) and fall through to collect the verdict below.
                budget_exhausted = True
                job.cancel()
            except Exception:  # noqa: BLE001 - warming is best-effort
                failed += 1
                continue
            try:
                job.result(timeout=5.0)
                completed += 1  # finished in the cancel window: still counts
            except SearchInterrupted:
                interrupted += 1
            except Exception:  # noqa: BLE001
                failed += 1
        summary["failed"] = failed
        summary["interrupted"] = interrupted
        if budget is not None:
            summary["within_budget"] = completed
            summary["budget_exhausted"] = budget_exhausted
        return summary

    def wait_idle(self, timeout: Optional[float] = None) -> bool:
        """Block until no work is queued, running, **or lingering**.

        Covers queued flights, dispatched searches, and cancelled zombies
        still unwinding on the backend, so ``True`` means a moment of genuine
        quiescence was observed.  Work submitted while draining extends the
        wait (snapshot-and-wait loop).
        """
        start = time.monotonic()
        while True:
            with self._lock:
                pending = list(self._unsettled.values())
                queued = bool(self._in_flight)
            if not pending and not queued:
                return True
            remaining: Optional[float] = None
            if timeout is not None:
                remaining = timeout - (time.monotonic() - start)
                if remaining <= 0:
                    return False
            if pending:
                futures_wait(pending, timeout=remaining)
            else:
                # Queued flights with no dispatched future yet: give the
                # pump a beat to admit them.
                time.sleep(min(0.01, remaining) if remaining else 0.01)

    # ------------------------------------------------------------------
    # Introspection / lifecycle
    # ------------------------------------------------------------------
    @property
    def in_flight(self) -> int:
        """Number of searches currently queued or running."""
        with self._lock:
            return len(self._in_flight)

    @property
    def slots_in_use(self) -> int:
        """Worker slots currently held by dispatched, non-cancelled searches."""
        with self._lock:
            return self._slots_used

    def _gauges_locked(self) -> Dict[str, int]:
        in_flight = len(self._in_flight)
        running = sum(
            1 for flight in self._in_flight.values() if flight.state == _RUNNING
        )
        return {
            "in_flight": in_flight,
            "queued": in_flight - running,
            "slots_in_use": self._slots_used,
        }

    def gauges(self) -> Dict[str, int]:
        """The live occupancy gauges, read in one lock acquisition."""
        with self._lock:
            return self._gauges_locked()

    def stats_payload(self) -> Dict[str, Any]:
        """Live scheduler + backend report (the ``workers`` stats section).

        Counters and gauges are read under a **single** lock acquisition —
        every mutation of :attr:`stats` happens inside the same lock — so a
        snapshot can never observe the conservation invariants
        (``finished == completed + failed + cancelled + timeouts``,
        ``submitted == flights + deduped + cache_hits``) mid-update, no
        matter how hard concurrent completions hammer the scheduler.
        """
        with self._lock:
            counters = self.stats.as_dict()
            gauges = self._gauges_locked()
        workers = self.backend.workers
        payload = self.backend.describe()
        payload.update(counters)
        payload.update(gauges)
        slots = gauges["slots_in_use"]
        payload["utilization"] = min(1.0, slots / workers) if workers else 0.0
        payload["priorities"] = list(PRIORITIES)
        payload["search_times"] = self.search_times.as_dict()
        return payload

    def close(self) -> None:
        """Stop the deadline monitor and shut the backend down."""
        self._monitor.close()
        self.backend.close()

    def __enter__(self) -> "ClassificationScheduler":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()
