"""Search-time metrics: the data operators pick deadlines from.

The scheduler records the wall-clock duration of every *completed*
certificate search into a :class:`SearchTimeStats` — a fixed-bucket
histogram (log-spaced milliseconds, Prometheus-style ``le`` upper bounds)
plus exact min/mean/max and a bounded leaderboard of the slowest canonical
keys.  The whole thing serializes into the ``search_times`` section of the
scheduler's stats payload, which the service ``stats`` frame and
``ClassificationSession.stats()`` surface verbatim.

Why a histogram and not raw samples: the stats frame is shipped on every
``stats`` request and must stay O(1) in the number of searches ever run.
Quantiles (:meth:`SearchTimeStats.quantile_ms`) are therefore *bucket upper
bounds* — a conservative over-estimate, which is exactly the right bias for
choosing a deadline ("99% of searches finished within this budget").

Interrupted searches are deliberately **not** recorded: a search killed at
its deadline says nothing about how long it would have taken, and folding
censored observations into the histogram would drag every quantile toward
whatever deadlines clients happened to use.  The scheduler's ``timeouts``/
``cancelled`` counters carry that signal instead.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, List, Optional, Tuple

BUCKET_BOUNDS_MS: Tuple[float, ...] = (
    1.0,
    2.0,
    5.0,
    10.0,
    20.0,
    50.0,
    100.0,
    200.0,
    500.0,
    1_000.0,
    2_000.0,
    5_000.0,
    10_000.0,
    30_000.0,
    60_000.0,
    float("inf"),
)
"""Histogram bucket upper bounds in milliseconds (cumulative ``le`` style)."""

DEFAULT_SLOWEST_KEPT = 10
"""How many of the slowest canonical keys the leaderboard retains."""


class SearchTimeStats:
    """Thread-safe histogram + leaderboard of completed search durations."""

    def __init__(self, slowest_kept: int = DEFAULT_SLOWEST_KEPT) -> None:
        self._lock = threading.Lock()
        self._counts = [0] * len(BUCKET_BOUNDS_MS)
        self._count = 0
        self._total_ms = 0.0
        self._min_ms: Optional[float] = None
        self._max_ms = 0.0
        self._slowest_kept = slowest_kept
        # Ascending by duration; the head is the cheapest entry to displace.
        self._slowest: List[Tuple[float, str]] = []

    def record(self, key: str, elapsed_seconds: float) -> None:
        """Record one completed search of ``key`` taking ``elapsed_seconds``."""
        ms = max(0.0, float(elapsed_seconds) * 1000.0)
        with self._lock:
            self._count += 1
            self._total_ms += ms
            self._min_ms = ms if self._min_ms is None else min(self._min_ms, ms)
            self._max_ms = max(self._max_ms, ms)
            for index, bound in enumerate(BUCKET_BOUNDS_MS):
                if ms <= bound:
                    self._counts[index] += 1
                    break
            if self._slowest_kept:
                if len(self._slowest) < self._slowest_kept:
                    self._slowest.append((ms, key))
                    self._slowest.sort()
                elif ms > self._slowest[0][0]:
                    self._slowest[0] = (ms, key)
                    self._slowest.sort()

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    def quantile_ms(self, q: float) -> Optional[float]:
        """The bucket upper bound covering the ``q`` quantile (None when empty).

        Conservative by construction: at least a ``q`` fraction of recorded
        searches finished within the returned number of milliseconds, so it
        can be used directly as a data-driven deadline.
        """
        if not 0.0 < q <= 1.0:
            raise ValueError("quantile must be in (0, 1]")
        with self._lock:
            if not self._count:
                return None
            threshold = q * self._count
            cumulative = 0
            for index, bound in enumerate(BUCKET_BOUNDS_MS):
                cumulative += self._counts[index]
                if cumulative >= threshold:
                    # The open-ended bucket has no finite bound to promise;
                    # the observed maximum is the honest answer there.
                    return self._max_ms if bound == float("inf") else bound
            return self._max_ms  # pragma: no cover - cumulative covers count

    def export(self) -> Dict[str, Any]:
        """The raw histogram for metrics exposition, in one lock acquisition.

        Unlike :meth:`as_dict` (which drops empty buckets for compact stats
        frames), this returns **every** bucket as ``[le_ms, count]`` pairs
        (``le_ms`` is ``None`` for the open-ended bucket) plus the exact sum
        and count — the shape :mod:`repro.obs.metrics` renders as a
        Prometheus histogram.
        """
        with self._lock:
            return {
                "buckets": [
                    [None if bound == float("inf") else bound, count]
                    for bound, count in zip(BUCKET_BOUNDS_MS, self._counts)
                ],
                "sum_ms": self._total_ms,
                "count": self._count,
            }

    def as_dict(self) -> Dict[str, Any]:
        """The ``search_times`` stats section (JSON-friendly, O(buckets))."""
        with self._lock:
            count = self._count
            payload: Dict[str, Any] = {
                "count": count,
                "total_ms": self._total_ms,
                "mean_ms": (self._total_ms / count) if count else 0.0,
                "min_ms": self._min_ms if self._min_ms is not None else 0.0,
                "max_ms": self._max_ms,
                "buckets": [
                    {
                        "le_ms": None if bound == float("inf") else bound,
                        "count": bucket_count,
                    }
                    for bound, bucket_count in zip(BUCKET_BOUNDS_MS, self._counts)
                    if bucket_count
                ],
                "slowest": [
                    {"key": key, "ms": ms}
                    for ms, key in sorted(self._slowest, reverse=True)
                ],
            }
        for name, q in (("p50_ms", 0.5), ("p90_ms", 0.9), ("p99_ms", 0.99)):
            payload[name] = self.quantile_ms(q) if count else None
        return payload


__all__ = ["BUCKET_BOUNDS_MS", "DEFAULT_SLOWEST_KEPT", "SearchTimeStats"]
