"""Request tracing: one span tree per classification request.

Every classify/submit entering a :class:`~repro.api.ClassificationSession`
(or the classification service) can carry a :class:`RequestTrace` — a
request id plus a list of timestamped spans recording where the time went:

``request``
    The root span (stage ``session``): opened when the request enters the
    front door, closed when its outcome is known.
``queued``
    Stage ``scheduler``: from scheduler submission to backend admission —
    the time spent waiting in the priority heap behind other searches.
``admitted``
    Stage ``scheduler``: a zero-length mark at the moment the scheduler
    hands the flight to the worker backend.
``search``
    Stage ``backend``: from dispatch to the backend future resolving.  Its
    attributes carry the backend name and the number of cancellation
    checkpoints the search polled (read off the flight's
    :class:`~repro.core.cancellation.CancelToken` — the kernel needs no new
    plumbing).
``kernel``
    Stage ``kernel``, child of ``search``: the pure decision-procedure time,
    derived from the result payload's ``elapsed_seconds`` (the backend span
    minus the kernel span is scheduling/serialization overhead).
``cache-write``
    Stage ``scheduler``: persisting the fresh canonical payload.
``reply``
    Stage ``scheduler``: resolving this submission's future.

Spans a request never reached stay absent; spans still open when the
request reaches a terminal outcome are closed by :meth:`RequestTrace.finish`
with that outcome as their status — so every finished trace is a *closed*
span tree for ``ok``, ``timeout``, ``cancelled`` and ``error`` alike, with
no per-failure-path bookkeeping in the scheduler.

The :class:`Tracer` owns the retention policy: a bounded in-memory ring of
finished traces (indexed by request id), top-K slow-request exemplars over a
threshold (attached to ``stats``), and an optional JSONL event log — one
``repro.trace/1`` document per line — enabled with ``REPRO_TRACE=path``.
Tracing is **disabled by default**: a disabled tracer's :meth:`Tracer.start`
returns ``None`` and every call site guards on that, so the warm hot path
pays one attribute read (the ``BENCH_obs.json`` gate pins the total
disabled-path overhead under 5%).
"""

from __future__ import annotations

import json
import os
import threading
import time
from collections import deque
from typing import Any, Deque, Dict, List, Optional

TRACE_SCHEMA = "repro.trace/1"
"""Schema identifier of every emitted trace document (JSONL log, ``trace`` op)."""

TRACE_ENV = "REPRO_TRACE"
"""Environment switch: unset/empty = disabled, ``1``/``true``/``on``/``mem`` =
in-memory only, anything else = path of the JSONL event log (implies enabled)."""

TRACE_SLOW_MS_ENV = "REPRO_TRACE_SLOW_MS"
TRACE_RING_ENV = "REPRO_TRACE_RING"

DEFAULT_RING_SIZE = 256
"""Finished traces retained in memory (and addressable by request id)."""

DEFAULT_SLOW_THRESHOLD_MS = 1_000.0
"""Requests slower than this are retained as slow exemplars."""

DEFAULT_SLOW_KEPT = 5
"""How many of the slowest over-threshold traces the exemplar list retains."""

STAGE_SESSION = "session"
STAGE_SCHEDULER = "scheduler"
STAGE_BACKEND = "backend"
STAGE_KERNEL = "kernel"
STAGES = (STAGE_SESSION, STAGE_SCHEDULER, STAGE_BACKEND, STAGE_KERNEL)
"""The four layers a request crosses, in order."""

ROOT_SPAN = "request"

_pid_counter = None
_pid_counter_lock = threading.Lock()


def new_request_id() -> str:
    """A process-unique request id (``req-<pid hex>-<n>``), cheap to mint."""
    global _pid_counter
    with _pid_counter_lock:
        if _pid_counter is None:
            import itertools

            _pid_counter = itertools.count(1)
        n = next(_pid_counter)
    return f"req-{os.getpid():x}-{n}"


class Span:
    """One timed interval inside a request, relative to the trace origin."""

    __slots__ = ("name", "stage", "parent", "start_ms", "end_ms", "status", "attrs")

    def __init__(
        self,
        name: str,
        stage: str,
        parent: Optional[str],
        start_ms: float,
        attrs: Optional[Dict[str, Any]] = None,
    ) -> None:
        self.name = name
        self.stage = stage
        self.parent = parent
        self.start_ms = start_ms
        self.end_ms: Optional[float] = None
        self.status: Optional[str] = None
        self.attrs = attrs

    def as_dict(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "name": self.name,
            "stage": self.stage,
            "parent": self.parent,
            "start_ms": self.start_ms,
            "end_ms": self.end_ms,
            "duration_ms": (
                self.end_ms - self.start_ms if self.end_ms is not None else None
            ),
            "status": self.status,
        }
        if self.attrs:
            payload["attrs"] = self.attrs
        return payload


class RequestTrace:
    """The live span tree of one request, thread-safe and idempotent.

    All methods are no-ops after :meth:`finish`, and :meth:`end` on a span
    that was never begun is a no-op too — scheduler code paths can therefore
    emit events without coordinating over who got there first.  Timestamps
    are milliseconds relative to the trace origin (`time.monotonic` based).
    """

    __slots__ = (
        "request_id",
        "op",
        "started_unix",
        "_origin",
        "_spans",
        "_open",
        "_lock",
        "_tracer",
        "outcome",
        "duration_ms",
    )

    def __init__(self, request_id: str, op: str, tracer: "Tracer") -> None:
        self.request_id = request_id
        self.op = op
        self.started_unix = time.time()
        self._origin = time.monotonic()
        self._spans: List[Span] = []
        self._open: Dict[str, Span] = {}
        self._lock = threading.Lock()
        self._tracer = tracer
        self.outcome: Optional[str] = None
        self.duration_ms: float = 0.0
        root = Span(ROOT_SPAN, STAGE_SESSION, None, 0.0)
        self._spans.append(root)
        self._open[ROOT_SPAN] = root

    def now_ms(self) -> float:
        """Milliseconds since the trace origin (for hand-measured spans)."""
        return (time.monotonic() - self._origin) * 1000.0

    def at_ms(self, monotonic_time: float) -> float:
        """Trace-relative milliseconds of an absolute ``time.monotonic`` stamp.

        Lets callers measure an interval once with two ``time.monotonic()``
        reads and then record it into several traces (every waiter sharing a
        flight) without re-measuring per trace.
        """
        return (monotonic_time - self._origin) * 1000.0

    def begin(
        self,
        name: str,
        stage: str,
        parent: str = ROOT_SPAN,
        attrs: Optional[Dict[str, Any]] = None,
    ) -> None:
        """Open a span now (replacing any same-named span still open)."""
        at = self.now_ms()
        with self._lock:
            if self.outcome is not None:
                return
            span = Span(name, stage, parent, at, attrs)
            self._spans.append(span)
            self._open[name] = span

    def end(
        self,
        name: str,
        status: str = "ok",
        attrs: Optional[Dict[str, Any]] = None,
    ) -> None:
        """Close an open span with ``status`` (no-op when not open)."""
        at = self.now_ms()
        with self._lock:
            if self.outcome is not None:
                return
            span = self._open.pop(name, None)
            if span is None:
                return
            span.end_ms = at
            span.status = status
            if attrs:
                span.attrs = {**(span.attrs or {}), **attrs}

    def mark(
        self,
        name: str,
        stage: str,
        parent: str = ROOT_SPAN,
        attrs: Optional[Dict[str, Any]] = None,
    ) -> None:
        """Record a zero-length span at the current instant."""
        at = self.now_ms()
        self.add(name, stage, at, at, parent=parent, attrs=attrs)

    def add(
        self,
        name: str,
        stage: str,
        start_ms: float,
        end_ms: float,
        parent: str = ROOT_SPAN,
        status: str = "ok",
        attrs: Optional[Dict[str, Any]] = None,
    ) -> None:
        """Record an already-measured (closed) span retroactively."""
        with self._lock:
            if self.outcome is not None:
                return
            span = Span(name, stage, parent, start_ms, attrs)
            span.end_ms = end_ms
            span.status = status
            self._spans.append(span)

    def finish(self, outcome: str) -> None:
        """Seal the trace: close every still-open span with ``outcome``.

        Idempotent — the first terminal outcome wins; later calls (e.g. a
        zombie search completing after a cancel already finished the trace)
        are discarded.  Hands the sealed trace to the tracer for retention
        and logging.
        """
        at = self.now_ms()
        with self._lock:
            if self.outcome is not None:
                return
            self.outcome = outcome
            self.duration_ms = at
            for span in self._open.values():
                span.end_ms = at
                span.status = outcome
            self._open.clear()
        self._tracer._finished(self)

    def as_dict(self) -> Dict[str, Any]:
        """The ``repro.trace/1`` document of this trace (JSON-friendly)."""
        with self._lock:
            return {
                "schema": TRACE_SCHEMA,
                "request_id": self.request_id,
                "op": self.op,
                "started_unix": self.started_unix,
                "outcome": self.outcome,
                "duration_ms": self.duration_ms,
                "spans": [span.as_dict() for span in self._spans],
            }


class Tracer:
    """Retention and emission policy for finished :class:`RequestTrace` trees.

    Disabled by default: :meth:`start` then returns ``None`` and nothing is
    recorded anywhere.  When enabled, finished traces land in a bounded ring
    (addressable via :meth:`get`), slow ones additionally in the top-K
    exemplar list surfaced by :meth:`as_dict` (the ``trace`` stats section),
    and — when a log path is configured — as one JSON line each.
    """

    def __init__(
        self,
        enabled: bool = False,
        log_path: Optional[str] = None,
        ring_size: int = DEFAULT_RING_SIZE,
        slow_threshold_ms: float = DEFAULT_SLOW_THRESHOLD_MS,
        slow_kept: int = DEFAULT_SLOW_KEPT,
    ) -> None:
        self.enabled = bool(enabled or log_path)
        self.log_path = log_path
        self.ring_size = max(1, int(ring_size))
        self.slow_threshold_ms = float(slow_threshold_ms)
        self.slow_kept = max(0, int(slow_kept))
        self._lock = threading.Lock()
        self._ring: Deque[RequestTrace] = deque()
        self._by_id: Dict[str, RequestTrace] = {}
        # Ascending by duration; the head is the cheapest exemplar to evict.
        self._slow: List[RequestTrace] = []
        self._finished_count = 0
        self._outcomes: Dict[str, int] = {}
        self._log_file: Optional[Any] = None
        self._log_failed = False

    @classmethod
    def from_env(cls, environ: Optional[Dict[str, str]] = None) -> "Tracer":
        """Build a tracer from ``REPRO_TRACE`` (and tuning) env variables."""
        env = environ if environ is not None else os.environ
        raw = (env.get(TRACE_ENV) or "").strip()
        enabled = bool(raw)
        log_path: Optional[str] = None
        if raw and raw.lower() not in ("1", "true", "on", "mem", "memory"):
            log_path = raw
        kwargs: Dict[str, Any] = {}
        slow = env.get(TRACE_SLOW_MS_ENV)
        if slow:
            try:
                kwargs["slow_threshold_ms"] = float(slow)
            except ValueError:
                pass
        ring = env.get(TRACE_RING_ENV)
        if ring:
            try:
                kwargs["ring_size"] = int(ring)
            except ValueError:
                pass
        return cls(enabled=enabled, log_path=log_path, **kwargs)

    # ------------------------------------------------------------------
    # Trace lifecycle
    # ------------------------------------------------------------------
    def start(
        self, op: str, request_id: Optional[str] = None
    ) -> Optional[RequestTrace]:
        """Open a trace for one request; ``None`` when tracing is disabled."""
        if not self.enabled:
            return None
        return RequestTrace(request_id or new_request_id(), op, self)

    def _finished(self, trace: RequestTrace) -> None:
        """Retain (and log) one sealed trace.  Called by ``finish`` only."""
        with self._lock:
            self._finished_count += 1
            outcome = trace.outcome or "unknown"
            self._outcomes[outcome] = self._outcomes.get(outcome, 0) + 1
            self._ring.append(trace)
            self._by_id[trace.request_id] = trace
            while len(self._ring) > self.ring_size:
                evicted = self._ring.popleft()
                if self._by_id.get(evicted.request_id) is evicted:
                    del self._by_id[evicted.request_id]
            if self.slow_kept and trace.duration_ms >= self.slow_threshold_ms:
                if len(self._slow) < self.slow_kept:
                    self._slow.append(trace)
                    self._slow.sort(key=lambda t: t.duration_ms)
                elif trace.duration_ms > self._slow[0].duration_ms:
                    self._slow[0] = trace
                    self._slow.sort(key=lambda t: t.duration_ms)
        if self.log_path and not self._log_failed:
            self._log(trace)

    def _log(self, trace: RequestTrace) -> None:
        try:
            with self._lock:
                if self._log_file is None:
                    self._log_file = open(  # noqa: SIM115 - held for appends
                        self.log_path, "a", encoding="utf-8"
                    )
                self._log_file.write(
                    json.dumps(trace.as_dict(), separators=(",", ":")) + "\n"
                )
                self._log_file.flush()
        except OSError:
            # A vanished log target must never take requests down with it.
            self._log_failed = True

    # ------------------------------------------------------------------
    # Retrieval / stats
    # ------------------------------------------------------------------
    def get(self, request_id: str) -> Optional[Dict[str, Any]]:
        """The finished trace document for ``request_id`` (ring-bounded)."""
        with self._lock:
            trace = self._by_id.get(request_id)
        return trace.as_dict() if trace is not None else None

    @property
    def finished(self) -> int:
        with self._lock:
            return self._finished_count

    def outcome_counts(self) -> Dict[str, int]:
        with self._lock:
            return dict(self._outcomes)

    def as_dict(self) -> Dict[str, Any]:
        """The ``trace`` stats section: config, tallies, slow exemplars."""
        with self._lock:
            slow = [t for t in reversed(self._slow)]
            payload: Dict[str, Any] = {
                "enabled": self.enabled,
                "log_path": self.log_path,
                "ring_size": self.ring_size,
                "retained": len(self._ring),
                "finished": self._finished_count,
                "outcomes": dict(self._outcomes),
                "slow_threshold_ms": self.slow_threshold_ms,
            }
        payload["slow"] = [trace.as_dict() for trace in slow]
        return payload

    def close(self) -> None:
        """Close the JSONL log file, if one was opened."""
        with self._lock:
            if self._log_file is not None:
                try:
                    self._log_file.close()
                except OSError:  # pragma: no cover - best-effort teardown
                    pass
                self._log_file = None


DISABLED_TRACER = Tracer(enabled=False)
"""A shared no-op tracer for obs-off configurations (start() returns None)."""


__all__ = [
    "DEFAULT_RING_SIZE",
    "DEFAULT_SLOW_KEPT",
    "DEFAULT_SLOW_THRESHOLD_MS",
    "DISABLED_TRACER",
    "ROOT_SPAN",
    "RequestTrace",
    "STAGES",
    "STAGE_BACKEND",
    "STAGE_KERNEL",
    "STAGE_SCHEDULER",
    "STAGE_SESSION",
    "Span",
    "TRACE_ENV",
    "TRACE_SCHEMA",
    "Tracer",
    "new_request_id",
]
