"""The one registry builder both the local session and the service use.

Local-vs-remote metrics parity is an acceptance criterion of the
observability layer: ``ClassificationSession.metrics()`` must expose
field-identical family names and types whether the engine runs in-process
or behind ``tcp://``.  Rather than testing two hand-maintained registries
into agreement, there is exactly one builder — :func:`build_registry` — fed
by the same ingredients on both sides: a
:class:`~repro.engine.batch.BatchClassifier` (which owns the scheduler,
cache, and search-time histogram), a :class:`~repro.obs.trace.Tracer`, and
the front door's request counter and start time.  The parity test then
pins what construction already guarantees.

Metric catalog (all prefixed ``repro_``; durations in milliseconds, the
repo's histogram idiom):

===================================== ========= =================================
``repro_service_requests_total``      counter   requests served by the front door
``repro_service_uptime_seconds``      gauge     seconds since the front door opened
``repro_cache_hits_total``            counter   cache lookups answered
``repro_cache_misses_total``          counter   cache lookups missed
``repro_cache_evictions_total``       counter   LRU evictions
``repro_cache_expirations_total``     counter   entries dropped past their TTL
``repro_cache_flushes_total``         counter   write-behind flushes/snapshots
``repro_cache_flushed_entries_total`` counter   entries written by those flushes
``repro_cache_entries``               gauge     entries currently cached
``repro_cache_max_entries``           gauge     LRU budget (NaN when unbounded)
``repro_cache_dirty_entries``         gauge     keys awaiting a write-behind flush
``repro_cache_backend_info``          gauge     1, labeled by durable ``backend``
``repro_batch_submitted_total``       counter   problems submitted to the engine
``repro_batch_full_searches_total``   counter   full decision procedures run
``repro_scheduler_flights_total``     counter   flights by terminal ``outcome``
``repro_scheduler_submissions_total`` counter   submissions by ``kind``
``repro_scheduler_in_flight``         gauge     searches queued or running
``repro_scheduler_queued``            gauge     searches waiting in the heap
``repro_scheduler_slots_in_use``      gauge     worker slots currently held
``repro_scheduler_workers``           gauge     admission limit (pool size)
``repro_search_duration_ms``          histogram completed search durations
``repro_trace_finished_total``        counter   finished traces by ``outcome``
``repro_trace_enabled``               gauge     1 when request tracing is on
===================================== ========= =================================
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING, Any, Callable, Dict, List

from .metrics import COUNTER, GAUGE, HISTOGRAM, MetricsRegistry
from .trace import Tracer

if TYPE_CHECKING:  # import-light: the scheduler itself imports repro.obs
    from ..engine.batch import BatchClassifier


def _scheduler_outcomes(classifier: BatchClassifier) -> List[Dict[str, Any]]:
    stats = classifier.scheduler.stats
    return [
        {"labels": {"outcome": "completed"}, "value": stats.completed},
        {"labels": {"outcome": "failed"}, "value": stats.failed},
        {"labels": {"outcome": "cancelled"}, "value": stats.cancelled},
        {"labels": {"outcome": "timeout"}, "value": stats.timeouts},
    ]


def _scheduler_submissions(classifier: BatchClassifier) -> List[Dict[str, Any]]:
    stats = classifier.scheduler.stats
    return [
        {"labels": {"kind": "scheduled"}, "value": stats.flights},
        {"labels": {"kind": "shared"}, "value": stats.deduped},
        {"labels": {"kind": "hit"}, "value": stats.cache_hits},
    ]


def _search_histogram(classifier: BatchClassifier) -> List[Dict[str, Any]]:
    export = classifier.scheduler.search_times.export()
    return [
        {
            "labels": {},
            "buckets": export["buckets"],
            "sum": export["sum_ms"],
            "count": export["count"],
        }
    ]


def _trace_outcomes(tracer: Tracer) -> List[Dict[str, Any]]:
    counts = tracer.outcome_counts()
    # Stable family shape: the four terminal outcomes always appear, extras
    # (defensive) append after them.
    samples = [
        {"labels": {"outcome": outcome}, "value": counts.pop(outcome, 0)}
        for outcome in ("ok", "timeout", "cancelled", "error")
    ]
    samples.extend(
        {"labels": {"outcome": outcome}, "value": value}
        for outcome, value in sorted(counts.items())
    )
    return samples


def build_registry(
    classifier: BatchClassifier,
    tracer: Tracer,
    requests_served: Callable[[], int],
    started_at: float,
) -> MetricsRegistry:
    """One registry over a classifier + tracer + front-door counters.

    ``requests_served`` is a callable (the counter lives on the session
    driver or the service); ``started_at`` is the front door's
    ``time.monotonic()`` birth timestamp.  Every collector reads live state
    at snapshot time — nothing is pushed on the request path.
    """
    registry = MetricsRegistry()
    scheduler = classifier.scheduler
    cache = classifier.cache

    registry.counter(
        "repro_service_requests_total",
        "Requests served by this session or service front door.",
        requests_served,
    )
    registry.gauge(
        "repro_service_uptime_seconds",
        "Seconds since this session or service opened.",
        lambda: time.monotonic() - started_at,
    )
    registry.counter(
        "repro_cache_hits_total",
        "Classification cache lookups answered from the cache.",
        lambda: cache.stats.hits,
    )
    registry.counter(
        "repro_cache_misses_total",
        "Classification cache lookups that missed.",
        lambda: cache.stats.misses,
    )
    registry.counter(
        "repro_cache_evictions_total",
        "Entries evicted by the cache's LRU budget.",
        lambda: cache.stats.evictions,
    )
    registry.counter(
        "repro_cache_expirations_total",
        "Entries dropped because they outlived the cache TTL.",
        lambda: cache.stats.expirations,
    )
    registry.counter(
        "repro_cache_flushes_total",
        "Write-behind flushes and full snapshots persisted to the backend.",
        lambda: cache.stats.flushes,
    )
    registry.counter(
        "repro_cache_flushed_entries_total",
        "Entries written by write-behind flushes and full snapshots.",
        lambda: cache.stats.flushed_entries,
    )
    registry.gauge(
        "repro_cache_entries",
        "Entries currently held by the classification cache.",
        lambda: len(cache),
    )
    registry.gauge(
        "repro_cache_max_entries",
        "The cache's LRU budget (NaN when unbounded).",
        lambda: cache.max_entries,
    )
    registry.gauge(
        "repro_cache_dirty_entries",
        "Keys (upserts + deletions) awaiting a write-behind flush.",
        lambda: cache.pending_dirty,
    )
    registry.register(
        "repro_cache_backend_info",
        GAUGE,
        "The cache's durable backend, as a constant info gauge.",
        lambda: [{"labels": {"backend": cache.backend_name}, "value": 1}],
    )
    registry.counter(
        "repro_batch_submitted_total",
        "Problems submitted to the batch engine.",
        lambda: classifier.stats.submitted,
    )
    registry.counter(
        "repro_batch_full_searches_total",
        "Full decision procedures actually run (the non-amortized work).",
        lambda: classifier.stats.full_searches,
    )
    registry.register(
        "repro_scheduler_flights_total",
        COUNTER,
        "Scheduler flights that reached each terminal outcome.",
        lambda: _scheduler_outcomes(classifier),
    )
    registry.register(
        "repro_scheduler_submissions_total",
        COUNTER,
        "Scheduler submissions by how they were answered "
        "(scheduled / shared / hit).",
        lambda: _scheduler_submissions(classifier),
    )
    registry.gauge(
        "repro_scheduler_in_flight",
        "Searches currently queued or running.",
        lambda: scheduler.in_flight,
    )
    registry.gauge(
        "repro_scheduler_queued",
        "Searches waiting in the priority heap (admitted ones excluded).",
        lambda: scheduler.gauges()["queued"],
    )
    registry.gauge(
        "repro_scheduler_slots_in_use",
        "Worker slots currently held by dispatched searches.",
        lambda: scheduler.slots_in_use,
    )
    registry.gauge(
        "repro_scheduler_workers",
        "The scheduler's admission limit (worker pool size).",
        lambda: scheduler.backend.workers,
    )
    registry.register(
        "repro_search_duration_ms",
        HISTOGRAM,
        "Completed certificate-search durations in milliseconds.",
        lambda: _search_histogram(classifier),
    )
    registry.register(
        "repro_trace_finished_total",
        COUNTER,
        "Finished request traces by terminal outcome.",
        lambda: _trace_outcomes(tracer),
    )
    registry.register(
        "repro_trace_enabled",
        GAUGE,
        "Whether request tracing is enabled (1) or disabled (0).",
        lambda: [{"labels": {}, "value": int(tracer.enabled)}],
    )
    return registry


__all__ = ["build_registry"]
