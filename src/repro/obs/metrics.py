"""One metrics registry over every existing counter, with text exposition.

The engine already counts everything that matters — cache hits
(:class:`~repro.engine.cache.CacheStats`), scheduler flight outcomes
(:class:`~repro.workers.scheduler.SchedulerStats`), search durations
(:class:`~repro.workers.metrics.SearchTimeStats`), service request tallies —
but each behind its own ad-hoc stats dict.  This module unifies them behind
a *pull-based* :class:`MetricsRegistry`: collectors are registered once and
read the live objects only when a snapshot is requested, so the request hot
path pays nothing for the registry existing.

A snapshot is the ``repro.metrics/1`` document::

    {"schema": "repro.metrics/1",
     "families": [{"name": ..., "type": "counter"|"gauge"|"histogram",
                   "help": ..., "samples": [...]}, ...]}

Counter/gauge samples are ``{"labels": {...}, "value": n}``; histogram
samples carry ``{"labels", "buckets": [[le_ms, count], ...], "sum", "count"}``
with **non-cumulative** per-bucket counts (the renderer accumulates).
:func:`render_prometheus` turns a snapshot into Prometheus text exposition
format — ``# HELP``/``# TYPE`` lines, ``_total`` counter names, cumulative
``_bucket{le=...}`` series, escaped label values.  Both the local session
and the remote service render *the same snapshot shape through the same
function*, which is what makes local-vs-remote metrics parity structural
rather than tested-by-luck (the parity test pins it anyway).
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Dict, List, Mapping, Tuple

METRICS_SCHEMA = "repro.metrics/1"
"""Schema identifier carried by every metrics snapshot."""

COUNTER = "counter"
GAUGE = "gauge"
HISTOGRAM = "histogram"
METRIC_TYPES = (COUNTER, GAUGE, HISTOGRAM)

_Collect = Callable[[], List[Dict[str, Any]]]


def escape_label_value(value: str) -> str:
    """Escape a label value per the Prometheus text format (\\\\, \\", \\n)."""
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _format_value(value: Any) -> str:
    if value is None:
        return "NaN"
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, float):
        if value == float("inf"):
            return "+Inf"
        if value == float("-inf"):
            return "-Inf"
        return repr(value)
    return str(value)


def _format_labels(labels: Mapping[str, Any]) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{key}="{escape_label_value(value)}"' for key, value in sorted(labels.items())
    )
    return "{" + inner + "}"


class MetricsRegistry:
    """Named metric families backed by live collector callables.

    ``register(name, type, help, collect)`` attaches a zero-argument callable
    returning that family's current samples; :meth:`snapshot` invokes every
    collector and assembles the ``repro.metrics/1`` document with families
    sorted by name (stable output, diffable exposition).
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._families: Dict[str, Tuple[str, str, _Collect]] = {}

    def register(
        self, name: str, metric_type: str, help_text: str, collect: _Collect
    ) -> None:
        if metric_type not in METRIC_TYPES:
            raise ValueError(
                f"unknown metric type {metric_type!r} (known: {', '.join(METRIC_TYPES)})"
            )
        if metric_type == COUNTER and not name.endswith("_total"):
            raise ValueError(f"counter {name!r} must end in '_total'")
        with self._lock:
            if name in self._families:
                raise ValueError(f"metric {name!r} already registered")
            self._families[name] = (metric_type, help_text, collect)

    def counter(self, name: str, help_text: str, value: Callable[[], Any]) -> None:
        """Register a single unlabeled counter reading ``value()``."""
        self.register(
            name, COUNTER, help_text, lambda: [{"labels": {}, "value": value()}]
        )

    def gauge(self, name: str, help_text: str, value: Callable[[], Any]) -> None:
        """Register a single unlabeled gauge reading ``value()``."""
        self.register(
            name, GAUGE, help_text, lambda: [{"labels": {}, "value": value()}]
        )

    def snapshot(self) -> Dict[str, Any]:
        """The ``repro.metrics/1`` document of every family, collected now."""
        with self._lock:
            families = sorted(self._families.items())
        payload: List[Dict[str, Any]] = []
        for name, (metric_type, help_text, collect) in families:
            payload.append(
                {
                    "name": name,
                    "type": metric_type,
                    "help": help_text,
                    "samples": collect(),
                }
            )
        return {"schema": METRICS_SCHEMA, "families": payload}


def render_prometheus(snapshot: Mapping[str, Any]) -> str:
    """Render one metrics snapshot as Prometheus text exposition format.

    Histograms expose cumulative ``<name>_bucket{le="..."}`` series (the
    snapshot's per-bucket counts are accumulated here), a closing
    ``le="+Inf"`` bucket equal to ``_count``, and ``_sum``/``_count``
    series.  Counters keep their registered ``_total`` names.
    """
    lines: List[str] = []
    for family in snapshot.get("families", []):
        name = family["name"]
        metric_type = family["type"]
        lines.append(f"# HELP {name} {family['help']}")
        lines.append(f"# TYPE {name} {metric_type}")
        for sample in family["samples"]:
            labels = sample.get("labels", {})
            if metric_type == HISTOGRAM:
                cumulative = 0
                for le, count in sample.get("buckets", []):
                    if le is None:
                        # The open-ended bucket is the closing +Inf series
                        # below (always equal to _count); emitting it here
                        # too would duplicate the le="+Inf" line.
                        continue
                    cumulative += count
                    bucket_labels = dict(labels)
                    bucket_labels["le"] = _format_value(float(le))
                    lines.append(
                        f"{name}_bucket{_format_labels(bucket_labels)} {cumulative}"
                    )
                total = sample.get("count", cumulative)
                inf_labels = dict(labels)
                inf_labels["le"] = "+Inf"
                lines.append(f"{name}_bucket{_format_labels(inf_labels)} {total}")
                lines.append(
                    f"{name}_sum{_format_labels(labels)} "
                    f"{_format_value(sample.get('sum', 0.0))}"
                )
                lines.append(f"{name}_count{_format_labels(labels)} {total}")
            else:
                lines.append(
                    f"{name}{_format_labels(labels)} "
                    f"{_format_value(sample.get('value'))}"
                )
    return "\n".join(lines) + "\n"


def metric_names_and_types(snapshot: Mapping[str, Any]) -> List[Tuple[str, str]]:
    """The ``(name, type)`` pairs of a snapshot — the parity-test fingerprint."""
    return [
        (family["name"], family["type"]) for family in snapshot.get("families", [])
    ]


__all__ = [
    "COUNTER",
    "GAUGE",
    "HISTOGRAM",
    "METRICS_SCHEMA",
    "METRIC_TYPES",
    "MetricsRegistry",
    "escape_label_value",
    "metric_names_and_types",
    "render_prometheus",
]
