"""Observability: request tracing and unified Prometheus-style metrics.

Two cooperating pieces (see ``docs/observability.md``):

* :mod:`repro.obs.trace` — per-request span trees (``repro.trace/1``)
  propagated session → scheduler → backend → kernel, with a bounded
  in-memory ring, slow-request exemplars, and an optional JSONL event log
  switched on by ``REPRO_TRACE``.  Disabled by default; the disabled path's
  overhead on the warm classify hot path is pinned by ``BENCH_obs.json``.
* :mod:`repro.obs.metrics` — one pull-based registry unifying the cache,
  batch, scheduler, search-time and service counters (``repro.metrics/1``)
  with Prometheus text exposition, surfaced by
  ``ClassificationSession.metrics()``, the protocol-v3 ``metrics``
  operation, and the ``repro metrics`` CLI.

:mod:`repro.obs.collectors` holds the single registry builder both the
local session and the remote service use — metrics parity by construction.
"""

from .collectors import build_registry
from .metrics import (
    METRICS_SCHEMA,
    MetricsRegistry,
    metric_names_and_types,
    render_prometheus,
)
from .trace import (
    DISABLED_TRACER,
    STAGES,
    TRACE_ENV,
    TRACE_SCHEMA,
    RequestTrace,
    Span,
    Tracer,
    new_request_id,
)

__all__ = [
    "DISABLED_TRACER",
    "METRICS_SCHEMA",
    "MetricsRegistry",
    "RequestTrace",
    "STAGES",
    "Span",
    "TRACE_ENV",
    "TRACE_SCHEMA",
    "Tracer",
    "build_registry",
    "metric_names_and_types",
    "new_request_id",
    "render_prometheus",
]
