"""Generators for full ``δ``-ary rooted trees.

The problems of the paper are defined on *full* ``δ``-ary trees: every node has
exactly ``δ`` or zero children (Section 4.1).  This module provides the standard
instance families used by the tests and benchmarks:

* complete (perfectly balanced) trees,
* hairy paths (Definition 4.11) — the hard instances for global problems,
* random full trees grown by repeatedly expanding random leaves,
* "as balanced as possible" trees of a prescribed size (used in the proofs of
  Lemmas 6.4 and 6.7).
"""

from __future__ import annotations

import random
from typing import List, Optional

from .rooted_tree import RootedTree, TreeBuilder, TreeError


def complete_tree(delta: int, depth: int) -> RootedTree:
    """The complete ``δ``-ary tree of the given depth (depth 0 is a single node)."""
    if delta < 1:
        raise TreeError("delta must be at least 1")
    if depth < 0:
        raise TreeError("depth must be non-negative")
    builder = TreeBuilder()
    root = builder.add_root()
    frontier = [root]
    for _ in range(depth):
        next_frontier: List[int] = []
        for node in frontier:
            next_frontier.extend(builder.add_children(node, delta))
        frontier = next_frontier
    return builder.build(metadata={"kind": "complete", "delta": delta, "depth": depth})


def hairy_path(delta: int, length: int) -> RootedTree:
    """A hairy path (Definition 4.11): a path of ``length`` internal nodes, each with ``δ`` children.

    The path continues through the first child of every node; the remaining
    ``δ - 1`` children are leaves, and the final path node's children are all
    leaves.  Hairy paths are the hard instances for global problems such as
    2-coloring.
    """
    if delta < 1:
        raise TreeError("delta must be at least 1")
    if length < 1:
        raise TreeError("length must be at least 1")
    builder = TreeBuilder()
    current = builder.add_root()
    for _ in range(length):
        children = builder.add_children(current, delta)
        current = children[0]
    return builder.build(metadata={"kind": "hairy-path", "delta": delta, "length": length})


def random_full_tree(
    delta: int,
    num_internal: int,
    seed: Optional[int] = None,
    rng: Optional[random.Random] = None,
) -> RootedTree:
    """A random full ``δ``-ary tree with ``num_internal`` internal nodes.

    Starting from a single root, ``num_internal`` times a uniformly random leaf
    is expanded into an internal node with ``δ`` children.  The resulting tree
    has ``num_internal * δ + 1`` nodes.
    """
    if delta < 1:
        raise TreeError("delta must be at least 1")
    if num_internal < 0:
        raise TreeError("num_internal must be non-negative")
    generator = rng if rng is not None else random.Random(seed)
    builder = TreeBuilder()
    root = builder.add_root()
    leaves = [root]
    for _ in range(num_internal):
        index = generator.randrange(len(leaves))
        node = leaves.pop(index)
        leaves.extend(builder.add_children(node, delta))
    return builder.build(
        metadata={"kind": "random-full", "delta": delta, "num_internal": num_internal}
    )


def balanced_tree_with_size(delta: int, num_nodes: int) -> RootedTree:
    """A full ``δ``-ary tree with exactly ``num_nodes`` nodes that is "as balanced as possible".

    The node count must be of the form ``m * δ + 1``; internal nodes are expanded
    in breadth-first order, which yields the balanced shape used in the proofs of
    Section 6.
    """
    if num_nodes < 1 or (num_nodes - 1) % delta != 0:
        raise TreeError(
            f"a full {delta}-ary tree has m*{delta}+1 nodes; {num_nodes} is not of this form"
        )
    num_internal = (num_nodes - 1) // delta
    builder = TreeBuilder()
    root = builder.add_root()
    frontier = [root]
    created = 0
    index = 0
    pending: List[int] = [root]
    while created < num_internal:
        node = pending[index]
        index += 1
        children = builder.add_children(node, delta)
        pending.extend(children)
        created += 1
    del frontier
    return builder.build(metadata={"kind": "balanced", "delta": delta, "num_nodes": num_nodes})


def path_tree(length: int) -> RootedTree:
    """A directed path with ``length + 1`` nodes (a full 1-ary tree)."""
    return complete_tree(1, length)


def nearest_full_tree_size(delta: int, target: int) -> int:
    """The smallest valid full-``δ``-ary node count that is at least ``target``."""
    if target <= 1:
        return 1
    num_internal = (target - 2) // delta + 1
    return num_internal * delta + 1
