"""Rooted-tree substrate: tree structures, generators and lower-bound constructions."""

from .rooted_tree import RootedTree, TreeBuilder, TreeError
from .generators import (
    balanced_tree_with_size,
    complete_tree,
    hairy_path,
    nearest_full_tree_size,
    path_tree,
    random_full_tree,
)
from .lower_bound import (
    BipolarTree,
    concatenated_lower_bound_tree,
    extend_bipolar,
    lower_bound_tree,
    lower_bound_tree_size,
)

__all__ = [
    "BipolarTree",
    "RootedTree",
    "TreeBuilder",
    "TreeError",
    "balanced_tree_with_size",
    "complete_tree",
    "concatenated_lower_bound_tree",
    "extend_bipolar",
    "hairy_path",
    "lower_bound_tree",
    "lower_bound_tree_size",
    "nearest_full_tree_size",
    "path_tree",
    "random_full_tree",
]
