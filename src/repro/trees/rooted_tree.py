"""Rooted trees: the input instances of LCL problems.

Trees are stored in a flat, array-based representation: nodes are integers
``0 .. n-1``, each node stores its parent (``None`` for the root) and the list of
its children.  The representation is cheap to traverse and convenient both for
the distributed simulator (ports = child indices) and for the combinatorial
constructions of the paper (Section 5.4).

Edges are conceptually oriented from child to parent, matching the paper's
convention.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple


class TreeError(ValueError):
    """Raised when a tree is malformed or an operation is not applicable."""


@dataclass
class RootedTree:
    """A rooted tree over nodes ``0 .. n-1``.

    Attributes
    ----------
    parent:
        ``parent[v]`` is the parent of ``v`` or ``None`` for the root.
    children:
        ``children[v]`` is the list of children of ``v`` (the order defines the
        port numbering used by the distributed algorithms).
    metadata:
        Optional per-tree annotations (e.g. the layer numbers of the lower-bound
        constructions).
    """

    parent: List[Optional[int]]
    children: List[List[int]]
    metadata: Dict[str, object] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @staticmethod
    def from_parent_list(parents: Sequence[Optional[int]]) -> "RootedTree":
        """Build a tree from a parent array (exactly one ``None`` entry, the root)."""
        n = len(parents)
        children: List[List[int]] = [[] for _ in range(n)]
        roots = [v for v, p in enumerate(parents) if p is None]
        if len(roots) != 1:
            raise TreeError(f"expected exactly one root, found {len(roots)}")
        for v, p in enumerate(parents):
            if p is None:
                continue
            if not 0 <= p < n:
                raise TreeError(f"parent of node {v} is out of range: {p}")
            children[p].append(v)
        tree = RootedTree(parent=list(parents), children=children)
        tree.validate()
        return tree

    def validate(self) -> None:
        """Check that the structure is a single tree rooted at :attr:`root`."""
        n = self.num_nodes
        seen: Set[int] = set()
        stack = [self.root]
        while stack:
            node = stack.pop()
            if node in seen:
                raise TreeError("tree contains a cycle")
            seen.add(node)
            stack.extend(self.children[node])
        if len(seen) != n:
            raise TreeError("tree is not connected")

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        """The number of nodes ``n``."""
        return len(self.parent)

    def __len__(self) -> int:
        return self.num_nodes

    @property
    def root(self) -> int:
        """The root node (the unique node without a parent)."""
        for node, parent in enumerate(self.parent):
            if parent is None:
                return node
        raise TreeError("tree has no root")

    def nodes(self) -> range:
        """All node identifiers."""
        return range(self.num_nodes)

    def is_leaf(self, node: int) -> bool:
        """Whether ``node`` has no children."""
        return not self.children[node]

    def is_internal(self, node: int) -> bool:
        """Whether ``node`` has at least one child."""
        return bool(self.children[node])

    def leaves(self) -> List[int]:
        """All leaves."""
        return [node for node in self.nodes() if self.is_leaf(node)]

    def internal_nodes(self) -> List[int]:
        """All internal nodes."""
        return [node for node in self.nodes() if self.is_internal(node)]

    def degree(self, node: int) -> int:
        """Degree in the underlying undirected tree."""
        return len(self.children[node]) + (0 if self.parent[node] is None else 1)

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------
    def is_full_delta_ary(self, delta: int) -> bool:
        """Whether every node has exactly ``delta`` or zero children."""
        return all(
            len(self.children[node]) in (0, delta) for node in self.nodes()
        )

    def depths(self) -> List[int]:
        """Depth of every node (root has depth 0)."""
        depth = [0] * self.num_nodes
        for node in self.bfs_order():
            parent = self.parent[node]
            if parent is not None:
                depth[node] = depth[parent] + 1
        return depth

    def height(self) -> int:
        """The height of the tree (length of the longest root-to-leaf path)."""
        return max(self.depths()) if self.num_nodes else 0

    def subtree_sizes(self) -> List[int]:
        """Number of nodes in the subtree rooted at every node."""
        sizes = [1] * self.num_nodes
        for node in reversed(self.bfs_order()):
            parent = self.parent[node]
            if parent is not None:
                sizes[parent] += sizes[node]
        return sizes

    def bfs_order(self) -> List[int]:
        """Nodes in breadth-first order starting at the root."""
        order: List[int] = [self.root]
        index = 0
        while index < len(order):
            node = order[index]
            index += 1
            order.extend(self.children[node])
        return order

    def topological_bottom_up(self) -> List[int]:
        """Nodes ordered so that every node appears after all of its children."""
        return list(reversed(self.bfs_order()))

    def ancestors(self, node: int, limit: Optional[int] = None) -> List[int]:
        """The ancestors of ``node`` from parent upwards (at most ``limit`` of them)."""
        result: List[int] = []
        current = self.parent[node]
        while current is not None and (limit is None or len(result) < limit):
            result.append(current)
            current = self.parent[current]
        return result

    def path_to_root(self, node: int) -> List[int]:
        """The node itself followed by all its ancestors up to the root."""
        return [node] + self.ancestors(node)

    def distance(self, first: int, second: int) -> int:
        """Distance between two nodes in the undirected tree."""
        depth = self.depths()
        a, b = first, second
        while depth[a] > depth[b]:
            a = self.parent[a]  # type: ignore[assignment]
        while depth[b] > depth[a]:
            b = self.parent[b]  # type: ignore[assignment]
        while a != b:
            a = self.parent[a]  # type: ignore[assignment]
            b = self.parent[b]  # type: ignore[assignment]
        lca_depth = depth[a]
        return (depth[first] - lca_depth) + (depth[second] - lca_depth)

    def descendants(self, node: int) -> List[int]:
        """All strict descendants of ``node``."""
        result: List[int] = []
        stack = list(self.children[node])
        while stack:
            current = stack.pop()
            result.append(current)
            stack.extend(self.children[current])
        return result

    def nodes_within_distance_below(self, node: int, distance: int) -> List[int]:
        """Descendants of ``node`` within the given distance (excluding ``node``)."""
        result: List[int] = []
        frontier = list(self.children[node])
        depth = 1
        while frontier and depth <= distance:
            result.extend(frontier)
            next_frontier: List[int] = []
            for current in frontier:
                next_frontier.extend(self.children[current])
            frontier = next_frontier
            depth += 1
        return result

    def port_of(self, node: int) -> int:
        """The index of ``node`` among its siblings (0 for the root)."""
        parent = self.parent[node]
        if parent is None:
            return 0
        return self.children[parent].index(node)

    # ------------------------------------------------------------------
    # Identifier assignment
    # ------------------------------------------------------------------
    def default_identifiers(self, seed: Optional[int] = None) -> List[int]:
        """Unique ``O(log n)``-bit identifiers for the nodes.

        With ``seed=None`` the identity assignment is used; otherwise a
        pseudo-random permutation of ``1 .. poly(n)`` is drawn, matching the
        LOCAL-model assumption that identifiers come from a polynomial range.
        """
        import random

        n = self.num_nodes
        if seed is None:
            return [node + 1 for node in self.nodes()]
        rng = random.Random(seed)
        universe = rng.sample(range(1, max(2, n * n) + 1), n)
        return list(universe)

    # ------------------------------------------------------------------
    # Misc
    # ------------------------------------------------------------------
    def summary(self) -> str:
        """One-line description of the tree."""
        return (
            f"RootedTree(n={self.num_nodes}, height={self.height()}, "
            f"leaves={len(self.leaves())})"
        )

    def __repr__(self) -> str:  # pragma: no cover - convenience
        return self.summary()


class TreeBuilder:
    """Incremental construction of rooted trees.

    The builder keeps parent/children arrays in sync and hands out node
    identifiers in creation order; it is used by the generators and by the
    lower-bound constructions.
    """

    def __init__(self) -> None:
        self._parent: List[Optional[int]] = []
        self._children: List[List[int]] = []

    def add_root(self) -> int:
        """Add a root node (only valid once)."""
        if self._parent:
            raise TreeError("builder already has a root")
        return self._add(None)

    def add_child(self, parent: int) -> int:
        """Add a child of ``parent`` and return its identifier."""
        if not 0 <= parent < len(self._parent):
            raise TreeError(f"unknown parent {parent}")
        return self._add(parent)

    def add_children(self, parent: int, count: int) -> List[int]:
        """Add ``count`` children of ``parent``."""
        return [self.add_child(parent) for _ in range(count)]

    def _add(self, parent: Optional[int]) -> int:
        node = len(self._parent)
        self._parent.append(parent)
        self._children.append([])
        if parent is not None:
            self._children[parent].append(node)
        return node

    @property
    def num_nodes(self) -> int:
        """Number of nodes added so far."""
        return len(self._parent)

    def build(self, metadata: Optional[Dict[str, object]] = None) -> RootedTree:
        """Finalize and return the tree."""
        tree = RootedTree(
            parent=list(self._parent),
            children=[list(children) for children in self._children],
            metadata=dict(metadata or {}),
        )
        tree.validate()
        return tree
