"""Lower-bound tree constructions of Section 5.4.

The ``Ω(n^{1/k})`` lower bound (Theorem 5.2) is proved on a family of *bipolar
trees* built recursively with the ``⊕_x`` operation:

* ``T^x_0`` is a single node,
* ``T^x_i = ⊕_x T^x_{i-1}``: an ``x``-node core path whose every node receives
  ``δ - 1`` copies of ``T^x_{i-1}`` as additional children; the core path nodes
  form layer ``i``.

``T^x_{i←j}`` concatenates ``T^x_i`` and ``T^x_j`` through a *middle edge*.  The
total size of ``T^x_k`` is ``Θ(x^k)``, so distinguishing the two endpoints of a
layer-``k`` path requires ``Ω(n^{1/k})`` rounds.

These constructions are exercised by the benchmarks (size/diameter scaling) and
used as hard instances for the polynomial-class solvers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from .rooted_tree import RootedTree, TreeBuilder, TreeError


@dataclass(frozen=True)
class BipolarTree:
    """A bipolar tree: a rooted tree with two distinguished poles ``s`` (the root) and ``t``.

    Attributes
    ----------
    tree:
        The underlying rooted tree (rooted at ``s``).
    source:
        The pole ``s`` (always the root).
    sink:
        The pole ``t`` (the far end of the core path).
    layer:
        The layer number of every node (layer 0 = the leaves of the recursion).
    """

    tree: RootedTree
    source: int
    sink: int
    layer: Tuple[int, ...]

    @property
    def num_nodes(self) -> int:
        """Number of nodes of the underlying tree."""
        return self.tree.num_nodes

    def core_path(self) -> List[int]:
        """The nodes of the core path from ``s`` to ``t``."""
        path = [self.sink]
        while path[-1] != self.source:
            parent = self.tree.parent[path[-1]]
            if parent is None:
                raise TreeError("sink is not a descendant of the source")
            path.append(parent)
        path.reverse()
        return path

    def nodes_in_layer(self, layer: int) -> List[int]:
        """All nodes of the given layer."""
        return [node for node in self.tree.nodes() if self.layer[node] == layer]


def _attach_copy(
    builder: TreeBuilder,
    layers: List[int],
    parent: int,
    template: BipolarTree,
) -> None:
    """Attach a copy of ``template`` as a child of ``parent`` inside ``builder``."""
    mapping: Dict[int, int] = {}
    order = template.tree.bfs_order()
    for node in order:
        template_parent = template.tree.parent[node]
        if template_parent is None:
            new_node = builder.add_child(parent)
        else:
            new_node = builder.add_child(mapping[template_parent])
        mapping[node] = new_node
        while len(layers) <= new_node:
            layers.append(0)
        layers[new_node] = template.layer[node]


def bipolar_base() -> BipolarTree:
    """``T^x_0``: a single layer-0 node."""
    builder = TreeBuilder()
    root = builder.add_root()
    tree = builder.build(metadata={"kind": "T^x_0"})
    return BipolarTree(tree=tree, source=root, sink=root, layer=(0,))


def extend_bipolar(template: BipolarTree, x: int, delta: int, layer: int) -> BipolarTree:
    """The ``⊕_x`` operation applied to ``template`` (core path of ``x`` nodes, layer ``layer``)."""
    if x < 1:
        raise TreeError("the core path must contain at least one node")
    if delta < 1:
        raise TreeError("delta must be at least 1")
    builder = TreeBuilder()
    layers: List[int] = []
    core: List[int] = []
    previous: Optional[int] = None
    for _ in range(x):
        node = builder.add_root() if previous is None else builder.add_child(previous)
        while len(layers) <= node:
            layers.append(0)
        layers[node] = layer
        core.append(node)
        previous = node
    for node in core:
        for _ in range(delta - 1):
            _attach_copy(builder, layers, node, template)
    tree = builder.build(metadata={"kind": f"bipolar layer {layer}", "x": x, "delta": delta})
    return BipolarTree(tree=tree, source=core[0], sink=core[-1], layer=tuple(layers))


def lower_bound_tree(x: int, k: int, delta: int = 2) -> BipolarTree:
    """The bipolar tree ``T^x_k`` of Section 5.4 (layers 0..k)."""
    if k < 0:
        raise TreeError("k must be non-negative")
    current = bipolar_base()
    for layer in range(1, k + 1):
        current = extend_bipolar(current, x, delta, layer)
    return current


def concatenated_lower_bound_tree(x: int, i: int, j: int, delta: int = 2) -> BipolarTree:
    """The concatenated bipolar tree ``T^x_{i←j}`` with its middle edge.

    The tree ``T^x_j`` is hung below the sink of ``T^x_i``; the middle edge is the
    edge between the sink of the first part and the source of the second part.
    The poles of the result are the source of the first part and the sink of the
    second part.  The middle-edge endpoints are recorded in the tree metadata.
    """
    first = lower_bound_tree(x, i, delta)
    second = lower_bound_tree(x, j, delta)
    builder = TreeBuilder()
    layers: List[int] = []

    mapping_first: Dict[int, int] = {}
    for node in first.tree.bfs_order():
        parent = first.tree.parent[node]
        new_node = builder.add_root() if parent is None else builder.add_child(mapping_first[parent])
        mapping_first[node] = new_node
        while len(layers) <= new_node:
            layers.append(0)
        layers[new_node] = first.layer[node]

    mapping_second: Dict[int, int] = {}
    for node in second.tree.bfs_order():
        parent = second.tree.parent[node]
        if parent is None:
            new_node = builder.add_child(mapping_first[first.sink])
        else:
            new_node = builder.add_child(mapping_second[parent])
        mapping_second[node] = new_node
        while len(layers) <= new_node:
            layers.append(0)
        layers[new_node] = second.layer[node]

    tree = builder.build(
        metadata={
            "kind": f"T^{x}_{i}<-{j}",
            "middle_edge": (mapping_first[first.sink], mapping_second[second.source]),
            "x": x,
            "delta": delta,
        }
    )
    return BipolarTree(
        tree=tree,
        source=mapping_first[first.source],
        sink=mapping_second[second.sink],
        layer=tuple(layers),
    )


def lower_bound_tree_size(x: int, k: int, delta: int = 2) -> int:
    """Closed-form node count of ``T^x_k`` (used to check the ``Θ(x^k)`` growth)."""
    size = 1
    for _ in range(k):
        size = x + x * (delta - 1) * size
    return size
