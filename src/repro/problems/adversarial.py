"""Adversarially expensive problems: small descriptions, huge searches.

The decision procedure is exponential in the worst case, but random draws and
the paper's samples all classify in milliseconds — which makes it hard to
exercise the parts of the system that exist precisely *because* searches can
explode: per-key deadlines, cancellation, priority scheduling, and the
starvation scenarios the scheduler must survive.

:func:`hard_problem` builds a tunable family that reliably hits the
exponential label-subset sweep of Algorithm 4.  It combines

* the *branch 2-coloring* core (Section 1.4) — classified ``Θ(log n)``, so
  Algorithm 2 finds a log certificate and the classifier proceeds to the
  exponential ``O(log* n)`` search, which must then fail for **every**
  candidate label subset before the class is decided — with
* ``pairs`` disjoint decoy 2-cycles ``aᵢ : bᵢ bᵢ`` / ``bᵢ : aᵢ aᵢ``.  Each
  decoy label has an infinite continuation (the two labels alternate down any
  branch), so all of them enter Algorithm 4's candidate universe, doubling
  the number of subsets to sweep per pair — yet no subset ever yields a
  certificate: a 2-cycle only derives singleton root sets, and the decoys
  also prune away in Algorithm 2 (period-2 paths are inflexible), leaving
  the ``Θ(log n)`` core as the final answer.

The classification time therefore grows as ``Ω(2^{2·pairs})`` while the
problem description stays linear in ``pairs``.  Measured on one core of a
2025-vintage container: ``pairs=5`` ≈ 1.4 s, ``pairs=6`` ≈ 9 s, ``pairs=7``
≈ 47 s, ``pairs=8`` > 60 s.  Pick the smallest size that dwarfs the deadline
under test so the outcome does not depend on machine speed.
"""

from __future__ import annotations

import string

from ..core.problem import LCLProblem
from .catalog import branch_two_coloring

HARD_COMPLEXITY_NOTE = "Theta(log n)"
"""The true class of every :func:`hard_problem` instance (the core's class)."""


def hard_problem(pairs: int = 6) -> LCLProblem:
    """Branch 2-coloring plus ``pairs`` decoy 2-cycles (``Θ(log n)``, slow).

    ``pairs`` may be 0 (just the core) up to 13 (the decoy alphabet is drawn
    from the 26 lowercase letters).  See the module docstring for why the
    search time doubles per pair while the answer never changes.
    """
    if not 0 <= pairs <= 13:
        raise ValueError(f"pairs must be between 0 and 13, got {pairs}")
    core = branch_two_coloring(delta=2)
    configurations = [(c.parent, c.children) for c in core.configurations]
    letters = string.ascii_lowercase
    for index in range(pairs):
        first, second = letters[2 * index], letters[2 * index + 1]
        configurations.append((first, (second, second)))
        configurations.append((second, (first, first)))
    return LCLProblem.create(
        delta=2,
        configurations=configurations,
        name=f"adversarial-{pairs}-pairs",
    )
