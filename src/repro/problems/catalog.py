"""Catalog of LCL problems on rooted regular trees.

All sample problems of the paper are provided here, together with their known
complexity classes (used as golden values by the test-suite and benchmarks):

* proper ``c``-coloring (Section 1.2) — ``Θ(log* n)`` for ``c >= 3``,
  ``Θ(n)`` for ``c = 2``;
* maximal independent set (Section 1.3) — ``O(1)``;
* branch 2-coloring (Section 1.4) — ``Θ(log n)``;
* the combined problem ``Π_0`` of Figure 2 — ``Θ(log n)``;
* the polynomial family ``Π_k`` of Section 8 — ``Θ(n^{1/k})``;
* assorted trivial / unsolvable problems used as edge cases.
"""

from __future__ import annotations

from itertools import combinations_with_replacement
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..core.complexity import ComplexityClass
from ..core.configuration import Configuration, Label
from ..core.problem import LCLProblem


def _multisets(labels: Sequence[Label], size: int) -> Iterable[Tuple[Label, ...]]:
    """All multisets (as sorted tuples) of the given size over ``labels``."""
    return combinations_with_replacement(sorted(labels), size)


# ----------------------------------------------------------------------
# Coloring problems
# ----------------------------------------------------------------------
def coloring(num_colors: int, delta: int = 2) -> LCLProblem:
    """Proper vertex coloring with ``num_colors`` colors on rooted ``δ``-ary trees.

    A node's color must differ from all its children's colors (which, together
    with the parent constraint applied at the parent, encodes proper coloring of
    the tree).  For ``num_colors >= 3`` the complexity is ``Θ(log* n)``
    (Section 1.2); for ``num_colors = 2`` it is ``Θ(n)``.
    """
    if num_colors < 1:
        raise ValueError("need at least one color")
    labels = [str(index) for index in range(1, num_colors + 1)]
    configurations: List[Tuple[Label, Tuple[Label, ...]]] = []
    for parent in labels:
        others = [label for label in labels if label != parent]
        for children in _multisets(others, delta):
            configurations.append((parent, children))
    return LCLProblem.create(
        delta=delta,
        configurations=configurations,
        labels=labels,
        name=f"{num_colors}-coloring (delta={delta})",
    )


def two_coloring(delta: int = 2) -> LCLProblem:
    """Proper 2-coloring (Section 1.2, equation (2)) — a global problem, ``Θ(n)``."""
    return coloring(2, delta=delta).with_name(f"2-coloring (delta={delta})")


def three_coloring(delta: int = 2) -> LCLProblem:
    """Proper 3-coloring (Section 1.2, equation (1)) — ``Θ(log* n)``."""
    return coloring(3, delta=delta).with_name(f"3-coloring (delta={delta})")


# ----------------------------------------------------------------------
# Maximal independent set (Section 1.3)
# ----------------------------------------------------------------------
def maximal_independent_set(delta: int = 2) -> LCLProblem:
    """Maximal independent set encoded with labels ``{1, a, b}`` (Section 1.3).

    ``1`` marks nodes in the independent set, ``a`` marks nodes whose parent is
    in the set, ``b`` marks nodes with a child in the set.  For ``δ = 2`` the
    configurations are exactly equation (3) of the paper; the natural
    generalization is used for larger ``δ``.  The complexity is ``O(1)``.
    """
    configurations: List[Tuple[Label, Tuple[Label, ...]]] = []
    # A node in the set: children are not in the set (labels a or b).
    for children in _multisets(["a", "b"], delta):
        configurations.append(("1", children))
    # A node with label a (parent in the set): no child in the set, and no child
    # may rely on this node being in the set, so all children are labeled b.
    configurations.append(("a", tuple(["b"] * delta)))
    # A node with label b: at least one child in the set, the rest either in the
    # set or b themselves.
    for children in _multisets(["1", "b"], delta):
        if "1" in children:
            configurations.append(("b", children))
    return LCLProblem.create(
        delta=delta,
        configurations=configurations,
        labels=["1", "a", "b"],
        name=f"maximal independent set (delta={delta})",
    )


# ----------------------------------------------------------------------
# Log-class problems
# ----------------------------------------------------------------------
def branch_two_coloring(delta: int = 2) -> LCLProblem:
    """Branch 2-coloring (Section 1.4, equation (5)) — ``Θ(log n)``.

    ``1 : 1 2`` and ``2 : 1 1``: below every node labeled ``1`` there is both a
    monochromatic branch and a properly 2-colored branch.
    """
    if delta < 2:
        raise ValueError("branch 2-coloring needs delta >= 2")
    configurations = [
        ("1", tuple(["1"] * (delta - 1) + ["2"])),
        ("2", tuple(["1"] * delta)),
    ]
    return LCLProblem.create(
        delta=delta,
        configurations=configurations,
        labels=["1", "2"],
        name=f"branch 2-coloring (delta={delta})",
    )


def figure2_combined_problem() -> LCLProblem:
    """The problem ``Π_0`` of Figure 2: branch 2-coloring combined with 2-coloring.

    Labels ``{1, 2}`` implement branch 2-coloring and labels ``{a, b}`` implement
    proper 2-coloring; the labels ``a, b`` are pruned by Algorithm 2 and the
    complexity is ``Θ(log n)``.
    """
    configurations = [
        ("a", ("b", "b")),
        ("b", ("a", "a")),
        ("1", ("1", "2")),
        ("2", ("1", "1")),
    ]
    return LCLProblem.create(
        delta=2,
        configurations=configurations,
        labels=["1", "2", "a", "b"],
        name="figure-2 combined problem",
    )


# ----------------------------------------------------------------------
# Polynomial family (Section 8)
# ----------------------------------------------------------------------
def pi_k(k: int) -> LCLProblem:
    """The problem ``Π_k`` of Section 8 with complexity ``Θ(n^{1/k})`` (``δ = 2``).

    The alphabet is ``{a_1, b_1, x_1, ..., x_{k-1}, a_k, b_k}``; ``Π_k`` combines
    ``k`` proper 2-coloring problems through the one-sided separator labels
    ``x_i``.
    """
    if k < 1:
        raise ValueError("k must be at least 1")
    delta = 2
    labels: List[Label] = []
    for index in range(1, k + 1):
        labels.extend([f"a{index}", f"b{index}"])
        if index < k:
            labels.append(f"x{index}")
    configurations: List[Tuple[Label, Tuple[Label, ...]]] = []

    def lower_labels(index: int) -> List[Label]:
        lower: List[Label] = []
        for j in range(1, index):
            lower.extend([f"a{j}", f"b{j}", f"x{j}"])
        return lower

    for index in range(1, k + 1):
        allowed_a = lower_labels(index) + [f"b{index}"]
        allowed_b = lower_labels(index) + [f"a{index}"]
        for children in _multisets(allowed_a, delta):
            configurations.append((f"a{index}", children))
        for children in _multisets(allowed_b, delta):
            configurations.append((f"b{index}", children))
    for index in range(1, k):
        restricted = lower_labels(index) + [f"a{index}", f"b{index}"]
        for first in sorted(labels):
            for second in restricted:
                configurations.append((f"x{index}", tuple(sorted((first, second)))))
    return LCLProblem.create(
        delta=delta,
        configurations=configurations,
        labels=labels,
        name=f"Pi_{k} (Section 8)",
    )


# ----------------------------------------------------------------------
# Edge cases
# ----------------------------------------------------------------------
def trivial_problem(delta: int = 2) -> LCLProblem:
    """A single label, always allowed — solvable with zero rounds."""
    return LCLProblem.create(
        delta=delta,
        configurations=[("1", tuple(["1"] * delta))],
        labels=["1"],
        name=f"trivial problem (delta={delta})",
    )


def unconstrained_problem(num_labels: int = 2, delta: int = 2) -> LCLProblem:
    """Every configuration over ``num_labels`` labels is allowed — zero rounds."""
    labels = [str(index) for index in range(1, num_labels + 1)]
    configurations = [
        (parent, children) for parent in labels for children in _multisets(labels, delta)
    ]
    return LCLProblem.create(
        delta=delta,
        configurations=configurations,
        labels=labels,
        name=f"unconstrained problem ({num_labels} labels, delta={delta})",
    )


def unsolvable_problem(delta: int = 2) -> LCLProblem:
    """A problem with no valid labeling of deep complete trees.

    The only configuration is ``1 : 2 ... 2`` and label ``2`` has no continuation
    below, so complete trees of depth at least two cannot be labeled.
    """
    return LCLProblem.create(
        delta=delta,
        configurations=[("1", tuple(["2"] * delta))],
        labels=["1", "2"],
        name=f"unsolvable problem (delta={delta})",
    )


def hierarchical_two_and_half_coloring() -> LCLProblem:
    """A Θ(n^{1/2}) style problem: ``Π_2`` of Section 8 under its historical name."""
    return pi_k(2).with_name("2.5-coloring style problem (Pi_2)")


# ----------------------------------------------------------------------
# Catalog with golden complexities
# ----------------------------------------------------------------------
def catalog() -> Dict[str, Tuple[LCLProblem, ComplexityClass]]:
    """All named sample problems together with their known complexity classes."""
    entries: Dict[str, Tuple[LCLProblem, ComplexityClass]] = {
        "trivial": (trivial_problem(), ComplexityClass.CONSTANT),
        "unconstrained": (unconstrained_problem(), ComplexityClass.CONSTANT),
        "mis": (maximal_independent_set(), ComplexityClass.CONSTANT),
        "3-coloring": (three_coloring(), ComplexityClass.LOGSTAR),
        "4-coloring": (coloring(4), ComplexityClass.LOGSTAR),
        "branch-2-coloring": (branch_two_coloring(), ComplexityClass.LOG),
        "figure-2-combined": (figure2_combined_problem(), ComplexityClass.LOG),
        "2-coloring": (two_coloring(), ComplexityClass.POLYNOMIAL),
        "pi-1": (pi_k(1), ComplexityClass.POLYNOMIAL),
        "pi-2": (pi_k(2), ComplexityClass.POLYNOMIAL),
        "pi-3": (pi_k(3), ComplexityClass.POLYNOMIAL),
        "unsolvable": (unsolvable_problem(), ComplexityClass.UNSOLVABLE),
    }
    return entries


def sample_problems() -> List[LCLProblem]:
    """The sample problems of the paper's introduction, in presentation order."""
    return [
        three_coloring(),
        two_coloring(),
        maximal_independent_set(),
        branch_two_coloring(),
    ]
