"""Problem catalog and random problem generators."""

from .adversarial import hard_problem
from .pools import distinct_forms, seeded_problems
from .catalog import (
    branch_two_coloring,
    catalog,
    coloring,
    figure2_combined_problem,
    hierarchical_two_and_half_coloring,
    maximal_independent_set,
    pi_k,
    sample_problems,
    three_coloring,
    trivial_problem,
    two_coloring,
    unconstrained_problem,
    unsolvable_problem,
)
from .random_problems import (
    all_possible_configurations,
    all_problems_with,
    num_possible_configurations,
    random_problem,
    random_problem_stream,
)

__all__ = [
    "all_possible_configurations",
    "all_problems_with",
    "branch_two_coloring",
    "catalog",
    "coloring",
    "figure2_combined_problem",
    "hard_problem",
    "hierarchical_two_and_half_coloring",
    "maximal_independent_set",
    "num_possible_configurations",
    "pi_k",
    "distinct_forms",
    "random_problem",
    "random_problem_stream",
    "sample_problems",
    "seeded_problems",
    "three_coloring",
    "trivial_problem",
    "two_coloring",
    "unconstrained_problem",
    "unsolvable_problem",
]
