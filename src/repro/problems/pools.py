"""Seeded problem pools: the one source of reproducible workload keys.

Three consumers draw from this module and must stay in lockstep:

* the **load-generation harness** (:mod:`repro.loadgen`) builds its
  Zipf-sampled key universe from :func:`distinct_forms`,
* the **scheduler fuzz harness** (``tests/test_scheduler_fuzz.py``)
  interleaves operations over the same pools, and
* the **endpoint parity suites** (``tests/test_api.py``,
  ``tests/test_loadgen_parity.py``) push the same pools through every
  endpoint kind.

Keeping the generation here — seeds consumed in deterministic order, no
wall-clock or machine dependence — guarantees that "seed 7" names the same
canonical-key distribution in a unit test, a fuzz run, and a committed
benchmark trajectory file.  ``tests/problem_pools.py`` re-exports this
module for the test suites.
"""

from __future__ import annotations

from typing import List, Optional

from ..engine.canonical import CanonicalForm, canonical_form
from .random_problems import random_problem


def distinct_forms(
    count: int,
    labels: int = 3,
    density: float = 0.3,
    start: int = 0,
    name_prefix: Optional[str] = None,
) -> List[CanonicalForm]:
    """``count`` canonical forms with pairwise-distinct keys (deterministic).

    Seeds are consumed in order starting at ``start``, skipping draws whose
    orbit was already produced, so the pool is stable across runs and
    machines.  With ``name_prefix`` each accepted problem is named
    ``"<prefix><index>"`` (the name never affects the canonical key, so the
    pool's key sequence is identical with or without it).
    """
    forms: List[CanonicalForm] = []
    seen, seed = set(), start
    while len(forms) < count:
        name = f"{name_prefix}{len(forms)}" if name_prefix is not None else ""
        form = canonical_form(
            random_problem(labels, density=density, seed=seed, name=name)
        )
        if form.key not in seen:
            seen.add(form.key)
            forms.append(form)
        seed += 1
    return forms


def seeded_problems(count, labels=2, density=0.5, seed=0):
    """A plain seeded problem list (duplicates allowed), census-style draws.

    Matches the ``seed + index`` scheme of the census generators, so a pool
    built here equals the problems a census with the same parameters
    classifies.
    """
    return [
        random_problem(labels, density=density, seed=seed + index)
        for index in range(count)
    ]


__all__ = ["distinct_forms", "seeded_problems"]
