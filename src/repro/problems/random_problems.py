"""Random LCL problems, used for the census benchmark and property-based tests.

Random problems are drawn by including every possible configuration over a given
alphabet independently with a fixed probability.  Small alphabets already produce
problems in all four complexity classes, which makes the random census a useful
smoke test of the classifier (cf. the paper's remark that the classifier is fast
on problems of interest).
"""

from __future__ import annotations

import random
from itertools import combinations_with_replacement
from typing import Iterator, List, Optional, Sequence, Tuple

from ..core.configuration import Label
from ..core.problem import LCLProblem


def all_possible_configurations(labels: Sequence[Label], delta: int) -> List[Tuple[Label, Tuple[Label, ...]]]:
    """Every configuration over ``labels`` with ``delta`` children (children unordered)."""
    result: List[Tuple[Label, Tuple[Label, ...]]] = []
    for parent in sorted(labels):
        for children in combinations_with_replacement(sorted(labels), delta):
            result.append((parent, children))
    return result


def num_possible_configurations(num_labels: int, delta: int) -> int:
    """The number of distinct configurations over ``num_labels`` labels."""
    from math import comb

    return num_labels * comb(num_labels + delta - 1, delta)


def random_problem(
    num_labels: int,
    delta: int = 2,
    density: float = 0.5,
    seed: Optional[int] = None,
    rng: Optional[random.Random] = None,
    name: str = "",
) -> LCLProblem:
    """Draw a random problem: each possible configuration is kept with probability ``density``."""
    if not 0.0 <= density <= 1.0:
        raise ValueError("density must be in [0, 1]")
    generator = rng if rng is not None else random.Random(seed)
    labels = [str(index) for index in range(1, num_labels + 1)]
    kept = [
        config
        for config in all_possible_configurations(labels, delta)
        if generator.random() < density
    ]
    return LCLProblem.create(
        delta=delta,
        configurations=kept,
        labels=labels,
        name=name or f"random({num_labels} labels, delta={delta}, density={density})",
    )


def random_problem_stream(
    num_labels: int,
    delta: int = 2,
    density: float = 0.5,
    seed: int = 0,
) -> Iterator[LCLProblem]:
    """An endless, reproducible stream of random problems."""
    rng = random.Random(seed)
    index = 0
    while True:
        index += 1
        yield random_problem(
            num_labels,
            delta=delta,
            density=density,
            rng=rng,
            name=f"random-{num_labels}-{delta}-{index}",
        )


def all_problems_with(num_labels: int, delta: int = 2) -> Iterator[LCLProblem]:
    """Enumerate *every* problem over the given alphabet (exponentially many).

    Only feasible for very small alphabets; used to exhaustively check the
    classifier against brute force on tiny problem spaces.
    """
    universe = all_possible_configurations(
        [str(index) for index in range(1, num_labels + 1)], delta
    )
    total = 1 << len(universe)
    for mask in range(total):
        configs = [config for bit, config in enumerate(universe) if mask & (1 << bit)]
        yield LCLProblem.create(
            delta=delta,
            configurations=configs,
            labels=[str(index) for index in range(1, num_labels + 1)],
            name=f"enumerated-{num_labels}-{delta}-{mask}",
        )
