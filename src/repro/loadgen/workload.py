"""Workload models: seeded, reproducible synthetic traffic.

A :class:`WorkloadSpec` describes *traffic*, not execution: which problems
arrive, when, at what priority, and under which deadline.  :meth:`plan`
expands the spec into a concrete list of :class:`Request` objects — the
**request stream** — using nothing but the spec's seed, so two plans of the
same spec are identical on any machine, any day.  The driver then replays
the stream against a session; the report pins the stream's identity with a
SHA-256 digest so a committed benchmark names exactly the traffic it
measured.

The model has three independent axes:

**Keys.**  Problems are drawn from a pool of ``pool_size`` problems with
pairwise-distinct canonical keys (:func:`repro.problems.pools.distinct_forms`
— the same pools the fuzz and parity suites use).  Ranks are sampled from a
Zipf distribution with exponent ``zipf_s`` (``0`` = uniform): real traffic
is duplicate-heavy, and skew is precisely what exercises the single-flight
scheduler's dedup and the cache.  With probability ``adversarial_rate`` a
request instead carries :func:`repro.problems.adversarial.hard_problem`
(``adversarial_pairs`` decoy pairs) under ``adversarial_deadline`` — the
exponential-search poison pill that drives timeout/cancellation paths.

**Arrivals.**  ``arrival`` is ``"poisson"`` (exponential inter-arrival gaps
at ``rate`` req/s — open-system traffic), ``"uniform"`` (a fixed
``1/rate`` cadence), or ``"burst"`` (the whole rate budget delivered as
back-to-back bursts of ``burst_size`` every ``burst_size/rate`` seconds —
the worst case for admission control).  Arrivals cover ``duration`` seconds
of traffic; the plan always contains at least one request.

**Classes.**  Each request draws a priority from ``mix`` (weights over
``interactive``/``batch``/``warm``) and inherits that class's deadline from
``deadlines`` (``None`` = no budget), mirroring how a gateway would map
client tiers onto the scheduler's priority heap.
"""

from __future__ import annotations

import hashlib
import random
from bisect import bisect_left
from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Mapping, Optional, Tuple

from ..core.problem import LCLProblem
from ..problems.adversarial import hard_problem
from ..problems.pools import distinct_forms
from ..workers.scheduler import PRIORITIES

ARRIVALS = ("poisson", "uniform", "burst")
"""Supported arrival processes."""

DEFAULT_MIX: Mapping[str, float] = {"interactive": 0.5, "batch": 0.3, "warm": 0.2}
"""Default priority mix: interactive-heavy, like a serving front door."""


@dataclass(frozen=True)
class Request:
    """One planned arrival of the request stream.

    ``offset`` is the scheduled arrival time in seconds from stream start
    (the open-loop driver paces to it; the closed-loop driver only keeps its
    order).  ``key`` is the canonical key of the submitted problem — the
    stream's identity and the unit of dedup attribution.
    """

    index: int
    offset: float
    problem: LCLProblem
    key: str
    priority: str
    deadline: Optional[float]
    adversarial: bool = False

    def stream_line(self) -> str:
        """The digest line of this request (everything reproducible)."""
        deadline = "-" if self.deadline is None else f"{self.deadline:.6f}"
        return f"{self.index}|{self.key}|{self.priority}|{deadline}"


@dataclass(frozen=True)
class WorkloadSpec:
    """A named, seeded traffic model (see the module docstring)."""

    name: str = "zipf"
    seed: int = 0
    duration: float = 10.0
    rate: float = 40.0
    pool_size: int = 25
    pool_labels: int = 3
    pool_density: float = 0.3
    zipf_s: float = 1.1
    arrival: str = "poisson"
    burst_size: int = 20
    mix: Mapping[str, float] = field(default_factory=lambda: dict(DEFAULT_MIX))
    deadlines: Mapping[str, Optional[float]] = field(default_factory=dict)
    adversarial_rate: float = 0.0
    # Sized so the poison pill stays minutes-long under the bitmask kernel:
    # the point is blowing `adversarial_deadline`, never completing.
    adversarial_pairs: int = 12
    adversarial_deadline: Optional[float] = 0.25

    def __post_init__(self) -> None:
        if self.duration <= 0:
            raise ValueError("duration must be positive seconds")
        if self.rate <= 0:
            raise ValueError("rate must be positive requests/second")
        if self.pool_size < 1:
            raise ValueError("pool_size must be >= 1")
        if self.zipf_s < 0:
            raise ValueError("zipf_s must be >= 0")
        if self.arrival not in ARRIVALS:
            raise ValueError(
                f"unknown arrival process {self.arrival!r} "
                f"(known: {', '.join(ARRIVALS)})"
            )
        if self.burst_size < 1:
            raise ValueError("burst_size must be >= 1")
        if not 0.0 <= self.adversarial_rate <= 1.0:
            raise ValueError("adversarial_rate must be in [0, 1]")
        if not self.mix:
            raise ValueError("mix must weight at least one priority class")
        for priority, weight in self.mix.items():
            if priority not in PRIORITIES:
                raise ValueError(
                    f"unknown priority {priority!r} in mix "
                    f"(known: {', '.join(PRIORITIES)})"
                )
            if weight < 0:
                raise ValueError(f"mix weight for {priority!r} must be >= 0")
        if sum(self.mix.values()) <= 0:
            raise ValueError("mix weights must sum to a positive number")
        for priority in self.deadlines:
            if priority not in PRIORITIES:
                raise ValueError(
                    f"unknown priority {priority!r} in deadlines "
                    f"(known: {', '.join(PRIORITIES)})"
                )

    # ------------------------------------------------------------------
    # Plan expansion (pure function of the spec)
    # ------------------------------------------------------------------
    def pool(self) -> List[Tuple[str, LCLProblem]]:
        """The ``(canonical key, problem)`` pool, rank 0 most popular."""
        forms = distinct_forms(
            self.pool_size,
            labels=self.pool_labels,
            density=self.pool_density,
            name_prefix="pool-",
        )
        return [(form.key, form.problem) for form in forms]

    def _arrival_offsets(self, rng: random.Random) -> List[float]:
        offsets: List[float] = []
        if self.arrival == "poisson":
            clock = rng.expovariate(self.rate)
            while clock <= self.duration:
                offsets.append(clock)
                clock += rng.expovariate(self.rate)
        elif self.arrival == "uniform":
            gap = 1.0 / self.rate
            clock = gap
            while clock <= self.duration:
                offsets.append(clock)
                clock += gap
        else:  # burst
            interval = self.burst_size / self.rate
            start = 0.0
            while start <= self.duration:
                offsets.extend(start for _ in range(self.burst_size))
                start += interval
        if not offsets:
            offsets.append(min(self.duration, 1.0 / self.rate))
        return offsets

    def _zipf_cdf(self) -> List[float]:
        weights = [1.0 / (rank + 1) ** self.zipf_s for rank in range(self.pool_size)]
        total = sum(weights)
        cumulative, acc = [], 0.0
        for weight in weights:
            acc += weight / total
            cumulative.append(acc)
        cumulative[-1] = 1.0
        return cumulative

    def _priority_cdf(self) -> List[Tuple[float, str]]:
        total = sum(self.mix.values())
        cumulative, acc = [], 0.0
        for priority in PRIORITIES:  # fixed order: dict order must not matter
            weight = self.mix.get(priority, 0.0)
            if weight <= 0:
                continue
            acc += weight / total
            cumulative.append((acc, priority))
        cumulative[-1] = (1.0, cumulative[-1][1])
        return cumulative

    def plan(self) -> List[Request]:
        """Expand the spec into its deterministic request stream."""
        rng = random.Random(self.seed)
        pool = self.pool()
        zipf_cdf = self._zipf_cdf()
        priority_cdf = self._priority_cdf()
        hard: Optional[Tuple[str, LCLProblem]] = None
        requests: List[Request] = []
        for index, offset in enumerate(self._arrival_offsets(rng)):
            adversarial = (
                self.adversarial_rate > 0 and rng.random() < self.adversarial_rate
            )
            if adversarial:
                if hard is None:
                    problem = hard_problem(self.adversarial_pairs)
                    hard = (f"adversarial:{problem.name}", problem)
                key, problem = hard
                priority = "interactive"
                deadline = self.adversarial_deadline
            else:
                rank = bisect_left(zipf_cdf, rng.random())
                key, problem = pool[min(rank, len(pool) - 1)]
                roll = rng.random()
                priority = next(p for bound, p in priority_cdf if roll <= bound)
                deadline = self.deadlines.get(priority)
            requests.append(
                Request(
                    index=index,
                    offset=offset,
                    problem=problem,
                    key=key,
                    priority=priority,
                    deadline=deadline,
                    adversarial=adversarial,
                )
            )
        return requests

    # ------------------------------------------------------------------
    # Identity and serialization
    # ------------------------------------------------------------------
    def describe(self) -> Dict[str, Any]:
        """The spec as a JSON-friendly echo (the report's ``workload`` section)."""
        return {
            "name": self.name,
            "seed": self.seed,
            "duration": self.duration,
            "rate": self.rate,
            "pool_size": self.pool_size,
            "pool_labels": self.pool_labels,
            "pool_density": self.pool_density,
            "zipf_s": self.zipf_s,
            "arrival": self.arrival,
            "burst_size": self.burst_size,
            "mix": dict(self.mix),
            "deadlines": dict(self.deadlines),
            "adversarial_rate": self.adversarial_rate,
            "adversarial_pairs": self.adversarial_pairs,
            "adversarial_deadline": self.adversarial_deadline,
        }


def stream_digest(plan: List[Request]) -> str:
    """SHA-256 over the stream's reproducible identity (keys, order, classes).

    Two runs of the same spec produce the same digest on any machine; the
    reproducibility tests and the committed ``BENCH_loadgen.json`` both pin
    this value.
    """
    hasher = hashlib.sha256()
    for request in plan:
        hasher.update(request.stream_line().encode())
        hasher.update(b"\n")
    return hasher.hexdigest()


# ----------------------------------------------------------------------
# Named workload registry (the CLI's --workload choices)
# ----------------------------------------------------------------------
def _zipf(seed: int, duration: float) -> WorkloadSpec:
    return WorkloadSpec(name="zipf", seed=seed, duration=duration)


def _uniform(seed: int, duration: float) -> WorkloadSpec:
    return WorkloadSpec(
        name="uniform", seed=seed, duration=duration, zipf_s=0.0, arrival="uniform"
    )


def _burst(seed: int, duration: float) -> WorkloadSpec:
    return WorkloadSpec(name="burst", seed=seed, duration=duration, arrival="burst")


def _adversarial(seed: int, duration: float) -> WorkloadSpec:
    return WorkloadSpec(
        name="adversarial",
        seed=seed,
        duration=duration,
        adversarial_rate=0.04,
        deadlines={"interactive": 5.0},
    )


WORKLOADS = {
    "zipf": _zipf,
    "uniform": _uniform,
    "burst": _burst,
    "adversarial": _adversarial,
}
"""Named traffic models: ``zipf`` (skewed keys, Poisson arrivals — the
default), ``uniform`` (no skew, fixed cadence — the dedup lower bound),
``burst`` (back-to-back arrival bursts — admission-control stress), and
``adversarial`` (zipf plus deadline-bounded poison-pill searches)."""


def build_workload(
    name: str, seed: int, duration: float, **overrides: Any
) -> WorkloadSpec:
    """Instantiate a named workload, then apply field overrides.

    Overrides with value ``None`` are ignored, so CLI flags that were not
    passed fall through to the model's own defaults.
    """
    try:
        factory = WORKLOADS[name]
    except KeyError:
        raise ValueError(
            f"unknown workload {name!r} (known: {', '.join(sorted(WORKLOADS))})"
        ) from None
    spec = factory(seed, duration)
    cleaned = {key: value for key, value in overrides.items() if value is not None}
    return replace(spec, **cleaned) if cleaned else spec


__all__ = [
    "ARRIVALS",
    "DEFAULT_MIX",
    "Request",
    "WORKLOADS",
    "WorkloadSpec",
    "build_workload",
    "stream_digest",
]
