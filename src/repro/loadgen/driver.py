"""The load driver: replay a request stream against live sessions.

:class:`LoadDriver` takes the planned stream of a
:class:`~repro.loadgen.workload.WorkloadSpec` and drives it through one or
more open :class:`~repro.api.ClassificationSession` objects, holding many
in-flight :meth:`~repro.api.ClassificationSession.submit` requests
concurrently and recording, per request, what the session reported: latency,
terminal outcome (``ok``/``timeout``/``cancelled``/``error``), and cache-hit
attribution.  Two loop disciplines:

**Open loop** (default) — requests are issued at their planned arrival
offsets regardless of completions, like real clients who do not wait for
each other.  Latency then includes any queueing the engine builds up, which
is the number an SLO is actually about.  A ``max_in_flight`` gate bounds the
waiter threads: when the engine falls that far behind, the dispatcher
stalls (and reports how often) rather than growing without bound.

**Closed loop** — ``concurrency`` workers each issue the next request as
soon as their previous one resolves.  Arrival offsets are ignored (only
stream order is kept); throughput is then engine-bound, which makes this
the mode for "how fast can it go" measurements.

Requests are spread round-robin across the given sessions (``--connections``
in the CLI): a single ``tcp://`` session serializes frames on one
connection, so driving a service hard requires several.  The driver never
interprets results — it only records; scoring belongs to
:mod:`repro.loadgen.report` and :mod:`repro.loadgen.slo`.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence

from ..api.errors import SessionError
from ..api.session import ClassificationSession
from .workload import Request

MODES = ("open", "closed")
"""Loop disciplines: ``open`` (paced arrivals) and ``closed`` (concurrency)."""

DEFAULT_MAX_IN_FLIGHT = 256
"""Open-loop backpressure gate: the most submissions outstanding at once."""


@dataclass
class RequestRecord:
    """What actually happened to one planned request."""

    index: int
    key: str
    priority: str
    deadline: Optional[float]
    offset: float
    adversarial: bool
    session_index: int = 0
    started_at: float = 0.0  # seconds from run start, when submit() was called
    latency_ms: float = 0.0
    outcome: str = "error"
    from_cache: bool = False
    error_code: Optional[str] = None
    # The tracing/wire request id the session assigned this submission
    # (None with observability off).  Lets a report's slow exemplars be
    # looked up as full span trees via `session.trace(request_id)`.
    request_id: Optional[Any] = None

    def as_dict(self) -> Dict[str, Any]:
        return {
            "index": self.index,
            "key": self.key,
            "priority": self.priority,
            "deadline": self.deadline,
            "offset": self.offset,
            "adversarial": self.adversarial,
            "session_index": self.session_index,
            "started_at": self.started_at,
            "latency_ms": self.latency_ms,
            "outcome": self.outcome,
            "from_cache": self.from_cache,
            "error_code": self.error_code,
            "request_id": self.request_id,
        }


@dataclass
class RunResult:
    """Everything a run produced: records, wall clock, and stats snapshots."""

    records: List[RequestRecord]
    wall_seconds: float
    mode: str
    concurrency: int
    sessions: int
    backpressure_stalls: int
    stats: List[Dict[str, Any]]


class LoadDriver:
    """Replays a planned request stream against open sessions.

    Parameters
    ----------
    sessions:
        Open sessions to spread requests across (round-robin by request
        index).  The driver does not own them — callers close them.
    mode:
        ``"open"`` (paced to arrival offsets) or ``"closed"``
        (``concurrency``-bounded, as fast as completions allow).
    concurrency:
        Closed-loop worker count.
    max_in_flight:
        Open-loop cap on outstanding submissions (backpressure gate).
    """

    def __init__(
        self,
        sessions: Sequence[ClassificationSession],
        mode: str = "open",
        concurrency: int = 8,
        max_in_flight: int = DEFAULT_MAX_IN_FLIGHT,
    ) -> None:
        if not sessions:
            raise ValueError("the driver needs at least one open session")
        if mode not in MODES:
            raise ValueError(f"unknown mode {mode!r} (known: {', '.join(MODES)})")
        if concurrency < 1:
            raise ValueError("concurrency must be >= 1")
        if max_in_flight < 1:
            raise ValueError("max_in_flight must be >= 1")
        self.sessions = list(sessions)
        self.mode = mode
        self.concurrency = concurrency
        self.max_in_flight = max_in_flight
        self._stalls = 0

    # ------------------------------------------------------------------
    # One request, measured
    # ------------------------------------------------------------------
    def _execute(
        self, request: Request, record: RequestRecord, run_start: float
    ) -> None:
        session = self.sessions[request.index % len(self.sessions)]
        record.session_index = request.index % len(self.sessions)
        started = time.perf_counter()
        record.started_at = started - run_start
        try:
            pending = session.submit(
                request.problem,
                priority=request.priority,
                deadline=request.deadline,
            )
            record.request_id = pending.request_id
            outcome = pending.result()
            record.outcome = outcome.outcome
            record.from_cache = outcome.from_cache
            record.error_code = outcome.error_code
        except SessionError as error:
            record.outcome = "error"
            record.error_code = error.code
        record.latency_ms = (time.perf_counter() - started) * 1000.0

    # ------------------------------------------------------------------
    # Loop disciplines
    # ------------------------------------------------------------------
    def _run_closed(self, plan: Sequence[Request], run_start: float) -> List[RequestRecord]:
        records = [self._record_for(request) for request in plan]
        cursor = {"next": 0}
        lock = threading.Lock()

        def worker() -> None:
            while True:
                with lock:
                    position = cursor["next"]
                    if position >= len(plan):
                        return
                    cursor["next"] = position + 1
                self._execute(plan[position], records[position], run_start)

        threads = [
            threading.Thread(target=worker, daemon=True, name=f"repro-loadgen-{i}")
            for i in range(min(self.concurrency, len(plan)))
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        return records

    def _run_open(self, plan: Sequence[Request], run_start: float) -> List[RequestRecord]:
        records = [self._record_for(request) for request in plan]
        gate = threading.Semaphore(self.max_in_flight)
        waiters: List[threading.Thread] = []

        def waiter(request: Request, record: RequestRecord) -> None:
            try:
                self._execute(request, record, run_start)
            finally:
                gate.release()

        for request, record in zip(plan, records):
            now = time.perf_counter() - run_start
            if request.offset > now:
                time.sleep(request.offset - now)
            if not gate.acquire(blocking=False):
                # The engine is max_in_flight behind the arrival process:
                # stall the dispatcher (recorded) instead of growing forever.
                self._stalls += 1
                gate.acquire()
            thread = threading.Thread(
                target=waiter,
                args=(request, record),
                daemon=True,
                name=f"repro-loadgen-wait-{request.index}",
            )
            waiters.append(thread)
            thread.start()
        for thread in waiters:
            thread.join()
        return records

    def _record_for(self, request: Request) -> RequestRecord:
        return RequestRecord(
            index=request.index,
            key=request.key,
            priority=request.priority,
            deadline=request.deadline,
            offset=request.offset,
            adversarial=request.adversarial,
        )

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------
    def run(self, plan: Sequence[Request]) -> RunResult:
        """Replay ``plan`` to completion; return records and stats snapshots."""
        self._stalls = 0
        run_start = time.perf_counter()
        if self.mode == "closed":
            records = self._run_closed(plan, run_start)
        else:
            records = self._run_open(plan, run_start)
        wall = time.perf_counter() - run_start
        stats: List[Dict[str, Any]] = []
        for session in self.sessions:
            try:
                stats.append(session.stats())
            except SessionError:  # pragma: no cover - stats are best-effort
                stats.append({})
        return RunResult(
            records=records,
            wall_seconds=wall,
            mode=self.mode,
            concurrency=self.concurrency,
            sessions=len(self.sessions),
            backpressure_stalls=self._stalls,
            stats=stats,
        )


__all__ = [
    "DEFAULT_MAX_IN_FLIGHT",
    "LoadDriver",
    "MODES",
    "RequestRecord",
    "RunResult",
]
