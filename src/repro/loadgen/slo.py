"""Declarative SLO specs: latency-percentile guarantees as data.

An :class:`SLOSpec` is a flat JSON object mapping objective names to
thresholds.  :meth:`evaluate` scores a finished loadgen report against it
and returns the list of violations (empty = the run met its SLOs), which is
what turns a load run from an eyeballed chart into a pass/fail gate — the
CLI exits nonzero on any violation, so CI can assert latency guarantees the
same way it asserts unit tests.

Objective names, all optional:

``p50_ms`` / ``p90_ms`` / ``p99_ms``
    Latency ceilings (milliseconds) over **all** requests.
``p50_<class>_ms`` / ``p90_<class>_ms`` / ``p99_<class>_ms``
    The same ceilings per priority class (``interactive``/``batch``/
    ``warm``), e.g. ``p99_interactive_ms`` — the spec's flagship objective.
    A class objective with no requests of that class in the stream is a
    violation (the spec promised a guarantee the run never measured).
``max_timeout_rate`` / ``max_cancelled_rate`` / ``max_error_rate``
    Outcome-share ceilings in ``[0, 1]`` over all requests.
``max_deadline_miss_rate``
    Ceiling on the share of deadline-carrying requests that timed out.
``min_throughput_rps``
    Floor on completed requests per wall-clock second.
``min_cache_hit_rate``
    Floor on the cache-hit share of ``ok`` requests.
``min_dedup_ratio``
    Floor on the duplicate share of the stream that the engine could
    amortize (``1 - unique_keys/requests``) — a property of the *workload*,
    asserted so a benchmark cannot silently drift to an easier stream.

Unknown names raise :class:`ValueError` — a typo'd objective must never
silently pass, exactly like the endpoint parser treats query parameters.
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional

from ..workers.scheduler import PRIORITIES

_PERCENTILE_RE = re.compile(
    r"^p(?P<q>50|90|99)(?:_(?P<cls>[a-z]+))?_ms$"
)

_RATE_KEYS = (
    "max_timeout_rate",
    "max_cancelled_rate",
    "max_error_rate",
    "max_deadline_miss_rate",
    "min_cache_hit_rate",
    "min_dedup_ratio",
)
_FLOOR_KEYS = ("min_throughput_rps",)


@dataclass(frozen=True)
class SLOSpec:
    """A validated SLO spec: percentile ceilings, rate bounds, floors."""

    objectives: Mapping[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for name, value in self.objectives.items():
            match = _PERCENTILE_RE.match(name)
            if match:
                cls = match.group("cls")
                if cls is not None and cls != "all" and cls not in PRIORITIES:
                    raise ValueError(
                        f"unknown priority class in SLO objective {name!r} "
                        f"(known: all, {', '.join(PRIORITIES)})"
                    )
            elif name not in _RATE_KEYS + _FLOOR_KEYS:
                raise ValueError(
                    f"unknown SLO objective {name!r} (known: pNN[_class]_ms, "
                    f"{', '.join(_RATE_KEYS + _FLOOR_KEYS)})"
                )
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                raise ValueError(f"SLO objective {name!r} must be a number")
            if value < 0:
                raise ValueError(f"SLO objective {name!r} must be >= 0")
            if name in _RATE_KEYS and value > 1:
                raise ValueError(f"SLO objective {name!r} is a rate in [0, 1]")

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "SLOSpec":
        if not isinstance(payload, Mapping):
            raise ValueError("an SLO spec must be a JSON object")
        return cls(objectives=dict(payload))

    @classmethod
    def from_file(cls, path: str) -> "SLOSpec":
        with open(path, "r", encoding="utf-8") as handle:
            try:
                payload = json.load(handle)
            except json.JSONDecodeError as error:
                raise ValueError(f"bad SLO spec {path!r}: {error}") from error
        return cls.from_dict(payload)

    def as_dict(self) -> Dict[str, float]:
        return dict(self.objectives)

    # ------------------------------------------------------------------
    # Scoring
    # ------------------------------------------------------------------
    def evaluate(self, report: Mapping[str, Any]) -> List[str]:
        """Score a loadgen report; return human-readable violations.

        ``report`` is the JSON document :func:`repro.loadgen.report.build_report`
        emits (see ``docs/loadgen.md`` for the schema).
        """
        violations: List[str] = []
        for name, threshold in self.objectives.items():
            observed, ceiling = self._observe(name, report)
            if observed is None:
                violations.append(
                    f"{name} <= {threshold:g}: no observations in this run"
                )
            elif ceiling and observed > threshold:
                violations.append(f"{name}: {observed:g} > {threshold:g}")
            elif not ceiling and observed < threshold:
                violations.append(f"{name}: {observed:g} < {threshold:g}")
        return violations

    def _observe(
        self, name: str, report: Mapping[str, Any]
    ) -> "tuple[Optional[float], bool]":
        """The report value an objective scores, and whether it is a ceiling."""
        match = _PERCENTILE_RE.match(name)
        if match:
            cls = match.group("cls") or "all"
            section = report.get("latency_ms", {}).get(cls)
            if not section or not section.get("count"):
                return None, True
            return section.get(f"p{match.group('q')}"), True
        if name == "max_timeout_rate":
            return report["outcomes"]["timeout_rate"], True
        if name == "max_cancelled_rate":
            return report["outcomes"]["cancelled_rate"], True
        if name == "max_error_rate":
            return report["outcomes"]["error_rate"], True
        if name == "max_deadline_miss_rate":
            deadlines = report.get("deadlines", {})
            if not deadlines.get("with_deadline"):
                return None, True
            return deadlines["miss_rate"], True
        if name == "min_throughput_rps":
            return report["run"]["throughput_rps"], False
        if name == "min_cache_hit_rate":
            cache = report.get("cache", {})
            if not cache.get("ok_requests"):
                return None, False
            return cache["hit_rate"], False
        if name == "min_dedup_ratio":
            return report["dedup"]["dedup_ratio"], False
        raise AssertionError(f"unvalidated SLO objective {name!r}")  # pragma: no cover


__all__ = ["SLOSpec"]
