"""The SLO report: one JSON document per load run, plus a human summary.

:func:`build_report` folds a finished :class:`~repro.loadgen.driver.RunResult`
into the ``repro.loadgen/1`` schema (documented in ``docs/loadgen.md``):
stream identity (count, unique keys, SHA-256 digest), outcome tallies,
exact latency percentiles per priority class, throughput, dedup ratio,
cache-hit and deadline-miss rates, the sessions' stats snapshots, and — when
a spec was given — the SLO verdict.  The committed ``BENCH_loadgen.json``
trajectory file is exactly this document, so every consumer (CI gates,
re-anchor reviews, dashboards) reads one shape.

Percentiles here are **exact** (nearest-rank over the recorded samples),
unlike the scheduler's O(1) bucket histograms: a load run holds every
sample anyway, and an SLO verdict should not inherit bucket rounding.
"""

from __future__ import annotations

import math
from typing import Any, Dict, List, Optional, Sequence

from .driver import RequestRecord, RunResult
from .slo import SLOSpec
from .workload import Request, WorkloadSpec, stream_digest

SCHEMA = "repro.loadgen/1"
"""Schema identifier carried by every report (bump on breaking changes)."""

LATENCY_CLASSES = ("all", "interactive", "batch", "warm")
"""The per-class latency sections every report carries."""


def _percentile(sorted_ms: Sequence[float], q: float) -> float:
    """Nearest-rank percentile of an ascending sample list (non-empty)."""
    rank = max(1, math.ceil(q * len(sorted_ms)))
    return sorted_ms[rank - 1]


def _latency_section(records: List[RequestRecord]) -> Dict[str, Any]:
    if not records:
        return {"count": 0}
    ordered = sorted(record.latency_ms for record in records)
    # The worst request travels *identified*: its request id (when the
    # session ran with observability on) is directly feedable to
    # `repro client trace` / `session.trace()` to pull the span tree
    # behind the class's max latency.
    worst = max(records, key=lambda record: record.latency_ms)
    return {
        "count": len(ordered),
        "mean": sum(ordered) / len(ordered),
        "min": ordered[0],
        "p50": _percentile(ordered, 0.50),
        "p90": _percentile(ordered, 0.90),
        "p99": _percentile(ordered, 0.99),
        "max": ordered[-1],
        "slowest": {
            "request_id": worst.request_id,
            "index": worst.index,
            "key": worst.key,
            "latency_ms": worst.latency_ms,
            "session_index": worst.session_index,
            "outcome": worst.outcome,
        },
    }


def build_report(
    endpoint: str,
    spec: WorkloadSpec,
    plan: Sequence[Request],
    result: RunResult,
    slo: Optional[SLOSpec] = None,
) -> Dict[str, Any]:
    """Fold one finished run into the ``repro.loadgen/1`` report document."""
    records = result.records
    total = len(records)
    tallies = {"ok": 0, "timeout": 0, "cancelled": 0, "error": 0}
    for record in records:
        tallies[record.outcome] = tallies.get(record.outcome, 0) + 1
    ok = tallies["ok"]
    hits = sum(1 for r in records if r.outcome == "ok" and r.from_cache)
    with_deadline = [r for r in records if r.deadline is not None]
    missed = sum(1 for r in with_deadline if r.outcome == "timeout")
    unique_keys = len({request.key for request in plan})
    latency: Dict[str, Any] = {"all": _latency_section(list(records))}
    for cls in LATENCY_CLASSES[1:]:
        latency[cls] = _latency_section(
            [r for r in records if r.priority == cls]
        )
    error_codes: Dict[str, int] = {}
    for record in records:
        if record.outcome == "error" and record.error_code:
            error_codes[record.error_code] = error_codes.get(record.error_code, 0) + 1
    report: Dict[str, Any] = {
        "schema": SCHEMA,
        "endpoint": endpoint,
        "workload": spec.describe(),
        "stream": {
            "requests": len(plan),
            "unique_keys": unique_keys,
            "adversarial": sum(1 for request in plan if request.adversarial),
            "digest": stream_digest(list(plan)),
        },
        "run": {
            "mode": result.mode,
            "concurrency": result.concurrency,
            "connections": result.sessions,
            "wall_seconds": result.wall_seconds,
            "throughput_rps": (
                total / result.wall_seconds if result.wall_seconds > 0 else 0.0
            ),
            "backpressure_stalls": result.backpressure_stalls,
        },
        "outcomes": {
            **tallies,
            "timeout_rate": tallies["timeout"] / total if total else 0.0,
            "cancelled_rate": tallies["cancelled"] / total if total else 0.0,
            "error_rate": tallies["error"] / total if total else 0.0,
            "error_codes": error_codes,
        },
        "cache": {
            "ok_requests": ok,
            "hits": hits,
            "hit_rate": hits / ok if ok else 0.0,
        },
        "dedup": {
            "unique_keys": unique_keys,
            "duplicate_requests": len(plan) - unique_keys,
            "dedup_ratio": (len(plan) - unique_keys) / len(plan) if plan else 0.0,
        },
        "deadlines": {
            "with_deadline": len(with_deadline),
            "missed": missed,
            "miss_rate": missed / len(with_deadline) if with_deadline else 0.0,
        },
        "latency_ms": latency,
        "stats": result.stats,
    }
    if slo is not None:
        violations = slo.evaluate(report)
        report["slo"] = {
            "spec": slo.as_dict(),
            "violations": violations,
            "passed": not violations,
        }
    return report


# ----------------------------------------------------------------------
# Human summary
# ----------------------------------------------------------------------
def summarize_report(report: Dict[str, Any]) -> str:
    """The terminal rendering of a report (one screen, scannable)."""
    workload = report["workload"]
    stream = report["stream"]
    run = report["run"]
    outcomes = report["outcomes"]
    lines = [
        f"loadgen: {workload['name']} workload, seed {workload['seed']}, "
        f"{workload['duration']:g}s of traffic at {workload['rate']:g} req/s "
        f"-> {report['endpoint']}",
        f"stream:  {stream['requests']} request(s), {stream['unique_keys']} "
        f"unique orbit(s) (dedup ratio {report['dedup']['dedup_ratio']:.0%}), "
        f"{stream['adversarial']} adversarial; digest {stream['digest'][:12]}",
        f"run:     {run['mode']} loop, {run['connections']} connection(s), "
        f"{run['wall_seconds']:.2f}s wall, "
        f"{run['throughput_rps']:.1f} req/s completed"
        + (
            f", {run['backpressure_stalls']} backpressure stall(s)"
            if run["backpressure_stalls"]
            else ""
        ),
        f"outcome: {outcomes['ok']} ok, {outcomes['timeout']} timeout, "
        f"{outcomes['cancelled']} cancelled, {outcomes['error']} error; "
        f"cache hit rate {report['cache']['hit_rate']:.0%}",
    ]
    deadlines = report["deadlines"]
    if deadlines["with_deadline"]:
        lines.append(
            f"deadlines: {deadlines['missed']}/{deadlines['with_deadline']} "
            f"missed ({deadlines['miss_rate']:.1%})"
        )
    for cls in LATENCY_CLASSES:
        section = report["latency_ms"][cls]
        if not section["count"]:
            continue
        slowest = section.get("slowest") or {}
        traced = (
            f" [slowest: request {slowest['request_id']}]"
            if slowest.get("request_id") is not None
            else ""
        )
        lines.append(
            f"latency[{cls}]: p50 {section['p50']:.1f} ms, "
            f"p90 {section['p90']:.1f} ms, p99 {section['p99']:.1f} ms, "
            f"max {section['max']:.1f} ms ({section['count']} sample(s))"
            + traced
        )
    slo = report.get("slo")
    if slo is not None:
        if slo["passed"]:
            lines.append(f"SLO: PASS ({len(slo['spec'])} objective(s))")
        else:
            lines.append(f"SLO: FAIL ({len(slo['violations'])} violation(s))")
            lines.extend(f"  - {violation}" for violation in slo["violations"])
    return "\n".join(lines)


__all__ = ["LATENCY_CLASSES", "SCHEMA", "build_report", "summarize_report"]
