"""Load generation and SLO verification for classification sessions.

This package turns "serves heavy traffic" from a slogan into a measured,
asserted property.  It has three layers, used in order:

1. :mod:`~repro.loadgen.workload` — seeded traffic models
   (:class:`WorkloadSpec`): Zipf-skewed duplicate-heavy key draws from the
   shared problem pools, Poisson/uniform/burst arrival processes, mixed
   interactive/batch/warm priorities with per-class deadlines, and
   adversarial poison-pill injection.  ``plan()`` expands a spec into a
   deterministic request stream whose SHA-256 digest names the traffic.
2. :mod:`~repro.loadgen.driver` — :class:`LoadDriver` replays a stream
   against one or more open :class:`~repro.api.ClassificationSession`
   objects (any endpoint: ``local://inline|threads|processes``, ``tcp://``),
   open- or closed-loop, recording per-request latency, outcome, and
   cache-hit attribution.
3. :mod:`~repro.loadgen.report` / :mod:`~repro.loadgen.slo` — the run folds
   into one ``repro.loadgen/1`` JSON report (percentiles per priority
   class, throughput, dedup ratio, deadline-miss rate, stats snapshots);
   an :class:`SLOSpec` scores it and returns violations, which the CLI
   turns into a nonzero exit.

The CLI front end is ``python -m repro loadgen <endpoint> --workload zipf
--duration 10 --seed 7 [--slo spec.json]``; the committed
``BENCH_loadgen.json`` is one of these reports.  See ``docs/loadgen.md``.
"""

from .driver import LoadDriver, RequestRecord, RunResult
from .report import SCHEMA, build_report, summarize_report
from .slo import SLOSpec
from .workload import (
    ARRIVALS,
    WORKLOADS,
    Request,
    WorkloadSpec,
    build_workload,
    stream_digest,
)

__all__ = [
    "ARRIVALS",
    "LoadDriver",
    "Request",
    "RequestRecord",
    "RunResult",
    "SCHEMA",
    "SLOSpec",
    "WORKLOADS",
    "WorkloadSpec",
    "build_report",
    "build_workload",
    "stream_digest",
    "summarize_report",
]
